// Repository-scale chunk selection: flat vs hierarchical policies as the
// chunk count grows to production scale.
//
// The paper evaluates hundreds of chunks, where an O(num_chunks) scan per
// pick is noise next to 50 ms of inference. The ROADMAP's city-scale
// repositories have 10^5..10^7 chunks, where a flat Thompson pick costs
// milliseconds — comparable to the inference it is supposed to be saving.
// The hierarchical policies pick in O(num_chunks / G + G) by scoring the
// stats arena's group aggregates first; this bench quantifies the gap:
//
//   * pick throughput (picks/sec) at 10k / 100k / 1M chunks for flat
//     Thompson, hierarchical Thompson, and hierarchical Thompson through
//     the single-pass PickBatch (batch 64). Gated in CI: hier_thompson
//     must deliver >= 10x the flat pick throughput at 1M chunks.
//   * end-to-end wall-clock time-to-k on a 20k-chunk skewed synthetic
//     repository (the regime where the pick loop, not the simulated
//     detector, dominates), flat vs hierarchical.
//
// Pick throughput is wall-clock (hardware-dependent); the >= 10x gate has
// two orders of magnitude of headroom at 1M chunks (measured ~500x), so
// it is robust to slow CI machines.
//
// Emits BENCH_scale.json. Flags: --time-box-ms (200), --limit-k (30),
//        --seed (1), --skip-e2e, --out (BENCH_scale.json).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/availability_index.h"
#include "core/engine.h"
#include "core/policy.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"

namespace exsample {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Realistic mid-query statistics: a sparse subset of chunks has evidence,
/// everything is still available.
core::ChunkStats SeededStats(int32_t num_chunks, uint64_t seed) {
  core::ChunkStats stats(num_chunks);
  Rng rng(seed);
  // ~1% of chunks visited, a few samples each.
  const int32_t stride = num_chunks >= 100 ? 100 : 1;
  for (int32_t j = 0; j < num_chunks; j += stride) {
    const int visits = 1 + static_cast<int>(rng.NextBounded(4));
    for (int v = 0; v < visits; ++v) {
      stats.Update(j, rng.NextBernoulli(0.2) ? 1 : 0, 0);
    }
  }
  return stats;
}

struct Throughput {
  double picks_per_sec = 0.0;
  int64_t picks = 0;
};

/// Runs picks until the time box fills (at least 5 picks), returns rate.
Throughput MeasurePicks(core::ChunkPolicy* policy,
                        const core::ChunkStats& stats,
                        const core::AvailabilityIndex& avail,
                        int32_t batch_size, double time_box_seconds,
                        uint64_t seed) {
  Rng rng(seed);
  Throughput t;
  const double start = NowSeconds();
  double elapsed = 0.0;
  while (t.picks < 5 || elapsed < time_box_seconds) {
    if (batch_size <= 1) {
      policy->Pick(stats, avail, &rng);
      t.picks += 1;
    } else {
      t.picks +=
          static_cast<int64_t>(policy->PickBatch(stats, avail, batch_size,
                                                 &rng)
                                   .size());
    }
    elapsed = NowSeconds() - start;
  }
  t.picks_per_sec = static_cast<double>(t.picks) / elapsed;
  return t;
}

/// Skewed dataset with `num_chunks` chunks: the e2e regime where the pick
/// loop dominates the simulated per-frame work.
data::Dataset ManyChunkDataset(int64_t total_frames, int64_t chunk_frames,
                               uint64_t seed) {
  data::DatasetSpec spec;
  spec.name = "many_chunks";
  spec.num_videos = 1;
  spec.frames_per_video = total_frames;
  spec.chunk_frames = chunk_frames;
  data::ClassSpec c;
  c.class_id = 0;
  c.name = "obj";
  c.num_instances = 300;
  c.mean_duration_frames = 120.0;
  c.placement = data::Placement::kNormal;
  c.stddev_fraction = 0.05;
  spec.classes.push_back(c);
  return data::GenerateDataset(spec, seed);
}

/// Wall-clock seconds for one engine run to k results.
double WallSecondsToK(const data::Dataset& ds, core::PolicyKind policy,
                      int64_t limit_k, uint64_t seed) {
  detect::SimulatedDetector detector(&ds.ground_truth, 0,
                                     detect::PerfectDetectorConfig(),
                                     seed + 1);
  track::OracleDiscriminator discriminator;
  core::EngineConfig cfg;
  cfg.strategy = core::Strategy::kExSample;
  cfg.policy = policy;
  core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &discriminator,
                           cfg, seed);
  core::QuerySpec spec;
  spec.class_id = 0;
  spec.result_limit = limit_k;
  const double start = NowSeconds();
  core::QueryResult result = engine.Run(spec);
  const double wall = NowSeconds() - start;
  if (static_cast<int64_t>(result.results.size()) < limit_k) {
    std::fprintf(stderr, "warning: only %zu/%lld results found\n",
                 result.results.size(), static_cast<long long>(limit_k));
  }
  return wall;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t time_box_ms = flags.GetInt("time-box-ms", 200);
  const int64_t limit_k = flags.GetInt("limit-k", 30);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool skip_e2e = flags.GetBool("skip-e2e");
  const std::string out_path = flags.GetString("out", "BENCH_scale.json");
  flags.FailOnUnknown();
  if (time_box_ms < 10 || limit_k < 1) {
    std::fprintf(stderr,
                 "error: need --time-box-ms >= 10, --limit-k >= 1\n");
    return 2;
  }
  const double time_box = static_cast<double>(time_box_ms) / 1000.0;

  Json doc = Json::Object();
  doc.Set("bench", "scale").Set("time_box_ms", time_box_ms);

  // --- pick throughput across chunk counts
  std::printf("=== pick throughput: flat vs hierarchical Thompson ===\n\n");
  const int32_t kSizes[] = {10000, 100000, 1000000};
  double gated_speedup = 0.0;
  Json sizes = Json::Array();
  for (int32_t m : kSizes) {
    core::ChunkStats stats = SeededStats(m, seed);
    core::AvailabilityIndex avail(m);

    core::ThompsonPolicy flat;
    core::HierThompsonPolicy hier;
    const Throughput flat_t =
        MeasurePicks(&flat, stats, avail, 1, time_box, seed + 11);
    const Throughput hier_t =
        MeasurePicks(&hier, stats, avail, 1, time_box, seed + 12);
    const Throughput hier_batch_t =
        MeasurePicks(&hier, stats, avail, 64, time_box, seed + 13);
    const double speedup =
        flat_t.picks_per_sec > 0.0
            ? hier_t.picks_per_sec / flat_t.picks_per_sec
            : 0.0;
    if (m == 1000000) gated_speedup = speedup;

    Table t({"variant", "picks/sec", "vs flat"});
    t.AddRow({"thompson (flat)",
              Table::Int(static_cast<int64_t>(flat_t.picks_per_sec)),
              Table::Ratio(1.0)});
    t.AddRow({"hier_thompson",
              Table::Int(static_cast<int64_t>(hier_t.picks_per_sec)),
              Table::Ratio(speedup)});
    t.AddRow({"hier_thompson batch=64",
              Table::Int(static_cast<int64_t>(hier_batch_t.picks_per_sec)),
              Table::Ratio(hier_batch_t.picks_per_sec /
                           flat_t.picks_per_sec)});
    std::printf("--- %d chunks (group size %d)\n%s\n", m,
                avail.group_size(), t.ToString().c_str());

    sizes.Append(
        Json::Object()
            .Set("chunks", static_cast<int64_t>(m))
            .Set("group_size", static_cast<int64_t>(avail.group_size()))
            .Set("flat_picks_per_sec", flat_t.picks_per_sec)
            .Set("hier_picks_per_sec", hier_t.picks_per_sec)
            .Set("hier_batched_picks_per_sec", hier_batch_t.picks_per_sec)
            .Set("speedup_hier_vs_flat", speedup));
  }
  doc.Set("pick_throughput", std::move(sizes));

  // --- end-to-end time-to-k at 20k chunks
  if (!skip_e2e) {
    std::printf("=== end-to-end wall-clock time to k=%lld results, "
                "20k chunks ===\n\n",
                static_cast<long long>(limit_k));
    data::Dataset ds = ManyChunkDataset(200000, 10, seed);
    const double flat_wall =
        WallSecondsToK(ds, core::PolicyKind::kThompson, limit_k, seed + 21);
    const double hier_wall = WallSecondsToK(
        ds, core::PolicyKind::kHierThompson, limit_k, seed + 21);
    const double e2e_speedup = hier_wall > 0.0 ? flat_wall / hier_wall : 0.0;
    Table t({"variant", "wall seconds to k", "vs flat"});
    t.AddRow({"thompson (flat)", Table::Num(flat_wall, 3),
              Table::Ratio(1.0)});
    t.AddRow({"hier_thompson", Table::Num(hier_wall, 3),
              Table::Ratio(e2e_speedup)});
    std::printf("%s\n", t.ToString().c_str());
    doc.Set("e2e_20k_chunks",
            Json::Object()
                .Set("chunks", static_cast<int64_t>(ds.chunks.size()))
                .Set("limit_k", limit_k)
                .Set("flat_wall_seconds", flat_wall)
                .Set("hier_wall_seconds", hier_wall)
                .Set("speedup_hier_vs_flat", e2e_speedup));
  }

  // CI gate: at 1M chunks the hierarchical pick must be at least 10x the
  // flat pick throughput (measured headroom is ~40x that).
  const bool gate_pass = gated_speedup >= 10.0;
  doc.Set("speedup_hier_1m_chunks", gated_speedup)
      .Set("gate_threshold", 10.0)
      .Set("gate_pass", gate_pass);
  std::printf("1M-chunk hier pick speedup: %s (gate >= 10x: %s)\n",
              Table::Ratio(gated_speedup).c_str(),
              gate_pass ? "pass" : "FAIL");

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
