// Table I reproduction: time for the scanning component of a proxy-based
// approach vs the time ExSample takes to reach 10% / 50% / 90% of all
// distinct instances, for every dataset x class query.
//
// Time accounting follows §V-B: the proxy scan runs at 100 frames/second
// (bound by sequential I/O + decode) and ExSample's sampling loop at 20
// frames/second (bound by the detector), so
//   scan time      = total_frames / 100
//   exsample t(r)  = median samples to recall r / 20.
//
// Flags: --scale (default 0.08 of paper-scale data; 1.0 = full),
//        --trials (3), --seed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "detect/cost_model.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const double scale = flags.GetDouble("scale", full ? 1.0 : 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  flags.FailOnUnknown();

  detect::ThroughputModel throughput;
  std::printf("=== Table I: proxy scan time vs ExSample recall times ===\n");
  std::printf("scale=%.3g trials=%d (scan %g fps, sample+detect %g fps)\n\n",
              scale, trials, throughput.scan_score_fps,
              throughput.sample_detect_fps);

  Table t({"dataset", "scan", "category", "N", "10%", "50%", "90%",
           "90% < scan"});
  int beats_scan = 0, total_queries = 0;
  for (const auto& preset : data::PresetNames()) {
    auto ds = data::MakePreset(preset, scale, seed);
    const double scan_seconds =
        throughput.ScanSeconds(ds.repo.total_frames());
    for (const auto& cls : ds.classes) {
      const int64_t n_instances =
          ds.ground_truth.NumInstances(cls.class_id);
      if (n_instances < 2) continue;
      auto trajectories =
          bench::RunTrials(ds, cls.class_id, core::Strategy::kExSample,
                           ds.repo.total_frames(), trials, seed * 100);
      std::vector<std::string> row{preset, Table::Duration(scan_seconds),
                                   cls.name, Table::Int(n_instances)};
      double t90 = -1.0;
      for (double recall : {0.1, 0.5, 0.9}) {
        int64_t target = bench::RecallTarget(n_instances, recall);
        int64_t samples = sim::MedianSamplesToReach(trajectories, target);
        if (samples < 0) {
          row.push_back("-");
        } else {
          double seconds = throughput.SampleSeconds(samples);
          row.push_back(Table::Duration(seconds));
          if (recall == 0.9) t90 = seconds;
        }
      }
      ++total_queries;
      const bool ok = t90 >= 0.0 && t90 < scan_seconds;
      if (ok) ++beats_scan;
      row.push_back(ok ? "yes" : "NO");
      t.AddRow(std::move(row));
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("\n%d / %d queries reach 90%% recall before the proxy scan "
              "completes.\n",
              beats_scan, total_queries);
  std::printf(
      "Expected shape (paper Table I): for every query it is cheaper to\n"
      "reach 90%% of instances by sampling than to scan-and-score the\n"
      "dataset, and 10%%/50%% are reached orders of magnitude sooner.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
