// Ablation: detector-noise robustness. The paper treats the detector as a
// black box; this ablation quantifies how ExSample's statistics degrade as
// that box gets worse: per-frame miss rate (flickering detections), false
// positives (hallucinated objects polluting N1 and the result set), and
// their effect on savings over random.
//
// Flags: --scale (0.08), --trials (3), --seed.

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "sim/savings.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

core::Trajectory NoisyTrial(const data::Dataset& ds, detect::ClassId cid,
                            core::Strategy strategy,
                            const detect::DetectorConfig& det_cfg,
                            uint64_t seed) {
  detect::SimulatedDetector detector(&ds.ground_truth, cid, det_cfg,
                                     seed * 97 + 5);
  track::OracleDiscriminator disc;
  core::EngineConfig cfg;
  cfg.strategy = strategy;
  core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc, cfg, seed);
  core::QuerySpec spec;
  spec.class_id = cid;
  spec.max_samples = ds.repo.total_frames();
  return engine.Run(spec).true_instances;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 47));
  flags.FailOnUnknown();

  std::printf("=== Ablation: detector noise robustness ===\n");
  std::printf("scale=%.3g trials=%d (night_street/person)\n\n", scale,
              trials);

  auto ds = data::MakePreset("night_street", scale, seed);
  const auto* cls = ds.FindClass("person");
  const int64_t n = ds.ground_truth.NumInstances(cls->class_id);
  const int64_t target = (n + 1) / 2;

  std::printf("--- miss-rate sweep (false_positive_rate = 0) ---\n");
  {
    Table t({"miss rate", "ex frames to 50%", "rnd frames to 50%",
             "savings"});
    for (double miss : {0.0, 0.1, 0.3, 0.5}) {
      detect::DetectorConfig det_cfg = detect::PerfectDetectorConfig();
      det_cfg.miss_rate = miss;
      std::vector<core::Trajectory> ex, rnd;
      for (int tr = 0; tr < trials; ++tr) {
        ex.push_back(NoisyTrial(ds, cls->class_id,
                                core::Strategy::kExSample, det_cfg,
                                700 + static_cast<uint64_t>(tr)));
        rnd.push_back(NoisyTrial(ds, cls->class_id, core::Strategy::kRandom,
                                 det_cfg, 800 + static_cast<uint64_t>(tr)));
      }
      int64_t ex_s = sim::MedianSamplesToReach(ex, target);
      int64_t rnd_s = sim::MedianSamplesToReach(rnd, target);
      double sv = sim::SavingsAtCount(ex, rnd, target);
      t.AddRow({Table::Num(miss, 2), ex_s < 0 ? "-" : Table::Int(ex_s),
                rnd_s < 0 ? "-" : Table::Int(rnd_s),
                sv > 0 ? Table::Ratio(sv) : "-"});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("(expected: both samplers slow down roughly as 1/(1-miss);\n"
                " the savings ratio is preserved — misses shrink effective\n"
                " durations uniformly)\n\n");
  }

  std::printf("--- false-positive sweep (miss_rate = 0) ---\n");
  {
    Table t({"FP / frame", "frames to 50% true recall",
             "reported results at that point", "pollution"});
    for (double fp : {0.0, 0.05, 0.2, 0.5}) {
      detect::DetectorConfig det_cfg = detect::PerfectDetectorConfig();
      det_cfg.false_positive_rate = fp;
      std::vector<core::Trajectory> ex;
      std::vector<double> pollution;
      int64_t reported_at = 0;
      for (int tr = 0; tr < trials; ++tr) {
        detect::SimulatedDetector detector(&ds.ground_truth, cls->class_id,
                                           det_cfg, 900 + tr);
        track::OracleDiscriminator disc;
        core::EngineConfig cfg;
        core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc, cfg,
                                 900 + static_cast<uint64_t>(tr));
        core::QuerySpec spec;
        spec.class_id = cls->class_id;
        spec.max_samples = ds.repo.total_frames();
        auto result = engine.Run(spec);
        ex.push_back(result.true_instances);
        int64_t frames = result.true_instances.SamplesToReach(target);
        if (frames > 0) {
          int64_t reported = result.reported.CountAt(frames);
          reported_at = reported;
          pollution.push_back(static_cast<double>(reported - target) /
                              static_cast<double>(reported));
        }
      }
      int64_t ex_s = sim::MedianSamplesToReach(ex, target);
      t.AddRow({Table::Num(fp, 2),
                ex_s < 0 ? std::string("-") : Table::Int(ex_s),
                Table::Int(reported_at),
                pollution.empty()
                    ? std::string("-")
                    : Table::Num(Percentile(pollution, 0.5), 2)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("(expected: false positives inflate the reported count and\n"
                " keep N1 artificially high, costing extra frames — the\n"
                " price of a hallucinating detector, not of the sampler)\n");
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
