// Micro-benchmarks (google-benchmark) for the hot paths of the sampling
// loop: gamma draws, Thompson chunk choice as a function of M, within-chunk
// samplers, the discriminator, and a full engine step. These quantify the
// paper's premise that sampler overhead is negligible next to the detector
// (tens of microseconds vs ~50 ms of inference per frame).

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/policy.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"
#include "util/distributions.h"
#include "video/frame_sampler.h"

namespace exsample {
namespace {

void BM_SampleGamma(benchmark::State& state) {
  Rng rng(1);
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGamma(&rng, alpha, 100.0));
  }
}
BENCHMARK(BM_SampleGamma)->Arg(1)->Arg(10)->Arg(500);  // alpha 0.1, 1, 50

void BM_ThompsonPick(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  core::ChunkStats stats(m);
  Rng seed_rng(2);
  for (int32_t j = 0; j < m; ++j) {
    for (int k = 0; k < 5; ++k) {
      stats.Update(j, seed_rng.NextBernoulli(0.3) ? 1 : 0, 0);
    }
  }
  core::ThompsonPolicy policy;
  core::AvailabilityIndex available(m);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Pick(stats, available, &rng));
  }
}
BENCHMARK(BM_ThompsonPick)->Arg(16)->Arg(128)->Arg(1024);

void BM_HierThompsonPick(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  core::ChunkStats stats(m);
  Rng seed_rng(2);
  for (int32_t j = 0; j < m; j += 7) {
    stats.Update(j, seed_rng.NextBernoulli(0.3) ? 1 : 0, 0);
  }
  core::HierThompsonPolicy policy;
  core::AvailabilityIndex available(m);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Pick(stats, available, &rng));
  }
}
BENCHMARK(BM_HierThompsonPick)->Arg(1024)->Arg(100000)->Arg(1000000);

void BM_BayesUcbPick(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  core::ChunkStats stats(m);
  for (int32_t j = 0; j < m; ++j) stats.Update(j, j % 3 == 0 ? 1 : 0, 0);
  core::BayesUcbPolicy policy;
  core::AvailabilityIndex available(m);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Pick(stats, available, &rng));
  }
}
BENCHMARK(BM_BayesUcbPick)->Arg(16)->Arg(128);

void BM_UniformFrameSampler(benchmark::State& state) {
  Rng rng(5);
  video::UniformFrameSampler sampler(
      video::FrameRangeSet::Single(0, 1 << 24));
  for (auto _ : state) {
    if (sampler.exhausted()) {
      state.PauseTiming();
      sampler = video::UniformFrameSampler(
          video::FrameRangeSet::Single(0, 1 << 24));
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(sampler.Next(&rng));
  }
}
BENCHMARK(BM_UniformFrameSampler);

void BM_RandomPlusFrameSampler(benchmark::State& state) {
  Rng rng(6);
  video::RandomPlusFrameSampler sampler(
      video::FrameRangeSet::Single(0, 1 << 24));
  for (auto _ : state) {
    if (sampler.exhausted()) {
      state.PauseTiming();
      sampler = video::RandomPlusFrameSampler(
          video::FrameRangeSet::Single(0, 1 << 24));
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(sampler.Next(&rng));
  }
}
BENCHMARK(BM_RandomPlusFrameSampler);

void BM_TrackerDiscriminatorMatch(benchmark::State& state) {
  const int64_t tracks = state.range(0);
  track::TrackerDiscriminator disc;
  Rng rng(7);
  for (int64_t i = 0; i < tracks; ++i) {
    detect::Detection d;
    d.frame = static_cast<video::FrameId>(i * 10);
    d.box = detect::BBox{rng.NextDouble() * 1880.0, rng.NextDouble() * 1040.0,
                         40.0, 40.0};
    disc.Add(d.frame, {d});
  }
  detect::Detection probe;
  probe.frame = tracks * 10 / 2;
  probe.box = detect::BBox{900.0, 500.0, 40.0, 40.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(disc.GetMatches(probe.frame, {probe}));
  }
}
BENCHMARK(BM_TrackerDiscriminatorMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EngineSteps(benchmark::State& state) {
  // Full ExSample iterations (pick chunk, sample frame, "detect" via
  // oracle, discriminate, update) on a mid-size preset; reported per frame
  // via the items counter.
  auto ds = data::MakePreset("night_street", 0.05, 41);
  auto class_id = ds.FindClass("car")->class_id;
  const int64_t kFrames = 512;
  uint64_t seed = 2;
  for (auto _ : state) {
    state.PauseTiming();
    detect::SimulatedDetector detector(&ds.ground_truth, class_id,
                                       detect::PerfectDetectorConfig(), 1);
    track::OracleDiscriminator disc;
    core::EngineConfig cfg;
    cfg.strategy = core::Strategy::kExSample;
    core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc, cfg,
                             ++seed);
    core::QuerySpec spec;
    spec.class_id = class_id;
    spec.max_samples = kFrames;
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Run(spec));
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
}
BENCHMARK(BM_EngineSteps);

}  // namespace
}  // namespace exsample

BENCHMARK_MAIN();
