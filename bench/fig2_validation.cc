// Figure 2 reproduction: empirical validation of the estimator (Eq III.1)
// and the Gamma belief distribution (Eq III.4).
//
// Generates 1000 occurrence probabilities p_i from a heavily skewed
// LogNormal (mean 3e-3, std 8e-3, max ~0.15 — the paper's §III-D setup),
// runs many sampling replications, and for representative (n, N1) cells
// compares the conditional histogram of the true R(n+1) against the belief
// density Gamma(N1 + 0.1, n + 1).
//
// Flags: --reps (default 600; paper uses 10000 — pass --full),
//        --instances, --seed.

#include <cstdio>
#include <vector>

#include "sim/pi_model.h"
#include "util/distributions.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

void PrintCell(int64_t n, int64_t n1, const std::vector<double>& rs) {
  RunningStat stat;
  for (double r : rs) stat.Add(r);
  const double alpha = static_cast<double>(n1) + 0.1;
  const double beta = static_cast<double>(n) + 1.0;
  std::printf("\n-- cell n=%lld N1=%lld  (%zu observations)\n",
              static_cast<long long>(n), static_cast<long long>(n1),
              rs.size());
  std::printf("   point estimate N1/n        : %.3g\n",
              static_cast<double>(n1) / static_cast<double>(n));
  std::printf("   belief mean (N1+.1)/(n+1)  : %.3g\n", alpha / beta);
  std::printf("   actual E[R(n+1) | n, N1]   : %.3g\n", stat.mean());
  std::printf("   actual sd                  : %.3g\n", stat.stddev());
  std::printf("   belief 2.5%%/97.5%% quantile : %.3g / %.3g\n",
              GammaQuantile(0.025, alpha, beta),
              GammaQuantile(0.975, alpha, beta));
  // Histogram of true R values with the belief density at bin centers.
  if (stat.max() > stat.min()) {
    Histogram h(stat.min(), stat.max() * 1.0001, 8);
    for (double r : rs) h.Add(r);
    std::printf("   R(n+1) histogram (density)  vs  Gamma pdf:\n");
    for (size_t b = 0; b < h.bins(); ++b) {
      std::printf("     %10.3g : %10.4g  |  %10.4g\n", h.BinCenter(b),
                  h.Density(b), GammaPdf(h.BinCenter(b), alpha, beta));
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const int64_t reps = flags.GetInt("reps", full ? 10000 : 600);
  const int64_t instances = flags.GetInt("instances", 1000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  flags.FailOnUnknown();

  std::printf("=== Figure 2: estimator & belief validation ===\n");
  std::printf("instances=%lld reps=%lld (paper: 1000 instances, 10000 reps)\n",
              static_cast<long long>(instances),
              static_cast<long long>(reps));

  Rng rng(seed);
  auto ps = sim::GenerateLogNormalPs(instances, 3e-3, 8e-3, 0.15, &rng);
  RunningStat pstat;
  for (double p : ps) pstat.Add(p);
  std::printf("p_i: min=%.3g max=%.3g mean=%.3g sd=%.3g\n", pstat.min(),
              pstat.max(), pstat.mean(), pstat.stddev());

  // The paper's six panels span early (n~100), mid (n~14k-120k) and late
  // (n~170k+) sampling stages.
  const std::vector<int64_t> query_ns{82, 100, 14093, 120911, 172085, 179601};
  auto cond = sim::CollectConditionalR(ps, query_ns, reps, &rng);

  // For each queried n, show the most-populated N1 cell (and the N1=0 cell
  // at the largest n, matching the paper's last panel).
  for (int64_t n : query_ns) {
    const auto& cells = cond[n];
    int64_t best_n1 = -1;
    size_t best_count = 0;
    for (const auto& [n1, rs] : cells) {
      if (rs.size() > best_count) {
        best_count = rs.size();
        best_n1 = n1;
      }
    }
    if (best_n1 >= 0) PrintCell(n, best_n1, cells.at(best_n1));
  }
  const auto& last_cells = cond[query_ns.back()];
  if (last_cells.count(0) && last_cells.at(0).size() > 5) {
    std::printf("\n(the N1 = 0 late-stage panel:)\n");
    PrintCell(query_ns.back(), 0, last_cells.at(0));
  }

  // Summary check across all cells: belief mean vs conditional truth.
  std::printf("\n=== summary: belief mean vs conditional E[R] ===\n");
  Table t({"n", "N1", "obs", "belief mean", "actual E[R]", "ratio"});
  for (int64_t n : query_ns) {
    for (const auto& [n1, rs] : cond[n]) {
      if (rs.size() < 50) continue;
      RunningStat s;
      for (double r : rs) s.Add(r);
      const double belief =
          (static_cast<double>(n1) + 0.1) / (static_cast<double>(n) + 1.0);
      t.AddRow({Table::Int(n), Table::Int(n1), Table::Int(rs.size()),
                Table::Num(belief), Table::Num(s.mean()),
                s.mean() > 0 ? Table::Num(belief / s.mean(), 3) : "-"});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("\nExpected shape (paper Fig 2): belief tracks the histogram,\n"
              "with extra spread early (small n) and a slight overestimate\n"
              "(Eq III.2 bias) that shrinks as n grows.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
