// Multi-query scheduler throughput: N independent distinct-object queries
// (cycling over the preset's classes) run through exec::MultiQueryRunner at
// 1, 4 and hardware-concurrency threads. Emits BENCH_multiquery.json with
// queries/sec per configuration and the speedup over serial, so later PRs
// have a perf trajectory to compare against. Also asserts the scheduler's
// core contract: identical results at every thread count.
//
// Flags: --queries (64), --preset (dashcam), --scale (0.1),
//        --max-samples (per query; default total_frames/8), --seed,
//        --out (BENCH_multiquery.json).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/multi_query_runner.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t queries = flags.GetInt("queries", 64);
  const std::string preset = flags.GetString("preset", "dashcam");
  const double scale = flags.GetDouble("scale", 0.1);
  int64_t max_samples = flags.GetInt("max-samples", 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 47));
  const std::string out_path =
      flags.GetString("out", "BENCH_multiquery.json");
  flags.FailOnUnknown();

  auto ds = data::MakePreset(preset, scale, seed);
  if (max_samples <= 0) max_samples = ds.repo.total_frames() / 8;

  std::printf("=== MultiQueryRunner throughput: %lld queries on '%s' ===\n",
              static_cast<long long>(queries), preset.c_str());
  std::printf("scale=%.3g frames=%lld max-samples/query=%lld\n\n", scale,
              static_cast<long long>(ds.repo.total_frames()),
              static_cast<long long>(max_samples));

  // N independent queries cycling over the preset's classes; the query
  // index is the job id, so every thread configuration reproduces the same
  // per-job seed streams.
  std::vector<exec::QueryJob> jobs;
  jobs.reserve(static_cast<size_t>(queries));
  for (int64_t q = 0; q < queries; ++q) {
    const auto& cls = ds.classes[static_cast<size_t>(q) % ds.classes.size()];
    jobs.push_back(bench::MakeTrialJob(ds, cls.class_id,
                                       core::Strategy::kExSample, max_samples,
                                       q));
  }

  const size_t hw = std::thread::hardware_concurrency() > 0
                        ? std::thread::hardware_concurrency()
                        : 1;
  std::vector<size_t> thread_counts{1, 4};
  if (hw != 1 && hw != 4) thread_counts.push_back(hw);

  struct Measurement {
    size_t threads;
    double seconds;
    double qps;
    double speedup;
  };
  std::vector<Measurement> measurements;
  std::vector<exec::JobResult> reference;
  bool deterministic = true;

  Table t({"threads", "seconds", "queries/sec", "speedup"});
  for (size_t threads : thread_counts) {
    exec::MultiQueryRunner::Options options;
    options.threads = threads;
    options.base_seed = seed;
    exec::MultiQueryRunner runner(options);

    const double start = Now();
    std::vector<exec::JobResult> results = runner.RunAll(jobs);
    const double elapsed = Now() - start;

    if (reference.empty()) {
      reference = std::move(results);
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        if (results[i].result.frames_processed !=
                reference[i].result.frames_processed ||
            results[i].result.true_instances.final_count() !=
                reference[i].result.true_instances.final_count()) {
          deterministic = false;
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: job %lld differs at %zu "
                       "threads\n",
                       static_cast<long long>(results[i].job_id), threads);
        }
      }
    }

    Measurement m;
    m.threads = threads;
    m.seconds = elapsed;
    m.qps = static_cast<double>(queries) / elapsed;
    m.speedup = measurements.empty() ? 1.0
                                     : measurements.front().seconds / elapsed;
    measurements.push_back(m);
    t.AddRow({Table::Int(static_cast<int64_t>(threads)),
              Table::Num(elapsed, 3), Table::Num(m.qps, 4),
              Table::Ratio(m.speedup)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("\nresults identical across thread counts: %s\n",
              deterministic ? "yes" : "NO (bug!)");

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"multiquery\",\n";
  out << "  \"preset\": \"" << preset << "\",\n";
  out << "  \"scale\": " << scale << ",\n";
  out << "  \"queries\": " << queries << ",\n";
  out << "  \"max_samples_per_query\": " << max_samples << ",\n";
  out << "  \"deterministic_across_threads\": "
      << (deterministic ? "true" : "false") << ",\n";
  out << "  \"configs\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    out << "    {\"threads\": " << m.threads << ", \"seconds\": " << m.seconds
        << ", \"queries_per_sec\": " << m.qps << ", \"speedup\": " << m.speedup
        << "}" << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
