// Pipelined decode -> detect execution: end-to-end wall-clock speedup.
//
// The serial engine interleaves decode and inference on one thread; the
// exec::Pipeline overlaps them (async decode-ahead), reorders each pick
// batch GOP-aware I-frame-first (same-GOP picks coalesce into one seek),
// and batches inference through a BatchedObjectDetector whose per-batch
// cost is sublinear (setup amortized across the batch). This bench runs
// the SAME query under wall emulation (workers sleep the modeled decode
// cost, detection sleeps the modeled batch cost — see
// PipelineOptions::wall_scale) and measures real elapsed time:
//
//   * serial_equivalent — pipeline with depth 1, one worker, batch 1, no
//     reordering: the serial schedule, paying one full decode + one full
//     single-frame inference per pick, in pick order.
//   * pipelined_* — decode-ahead depth 4/8/16, 2-4 workers, detect batch
//     8-32, reordering on.
//
// The workload is the decode-heavy regime (video::DecodeHeavyCostModel,
// 48-frame GOPs, 16-frame GOP runs, 64-pick engine batches): random access
// pays a long predicted-frame chain, which is exactly what decode-ahead
// overlaps and GOP coalescing avoids.
//
// Determinism is gated on every host: each configuration's result stream
// must reproduce the bare serial engine's (no executor) fingerprint bit
// for bit — the pipeline is a wall-clock optimization only. The >= 1.5x
// speedup gate (depth-4 row) fires only on hosts with >= 4 hardware
// threads; single-core wall-clock overlap is meaningless.
//
// Emits BENCH_pipeline.json; exits non-zero when determinism breaks
// anywhere or the speedup gate fails on a gated host.
// Flags: --frames (480; 160 with --smoke), --wall-scale (0.5), --seed (1),
//        --out (BENCH_pipeline.json), --smoke.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"
#include "detect/batched_detector.h"
#include "detect/simulated_detector.h"
#include "exec/pipeline.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"
#include "video/decoder.h"
#include "video/repository.h"

namespace exsample {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Fingerprint(const core::QueryResult& r) {
  uint64_t h = 1469598103934665603ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  fold(static_cast<uint64_t>(r.frames_processed));
  fold(r.results.size());
  for (const detect::Detection& d : r.results) {
    fold(static_cast<uint64_t>(d.frame));
    fold(static_cast<uint64_t>(d.instance));
  }
  return h;
}

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Decode-heavy repository: 40 videos x 2500 frames, one chunk per video,
/// re-encoded at a 48-frame GOP so random access pays a long predicted
/// chain (the structure GOP runs coalesce and decode-ahead overlaps).
data::Dataset MakeDecodeHeavyDataset(uint64_t seed) {
  data::DatasetSpec spec;
  spec.name = "decode_heavy";
  spec.num_videos = 40;
  spec.frames_per_video = 2500;
  spec.chunk_frames = 2500;
  data::ClassSpec c;
  c.class_id = 0;
  c.name = "obj";
  c.num_instances = 400;
  c.mean_duration_frames = 80.0;
  c.placement = data::Placement::kUniform;
  spec.classes.push_back(c);
  data::Dataset ds = data::GenerateDataset(spec, seed);

  std::vector<video::VideoMeta> metas;
  metas.reserve(ds.repo.num_videos());
  for (size_t i = 0; i < ds.repo.num_videos(); ++i) {
    video::VideoMeta meta = ds.repo.video(static_cast<video::VideoIndex>(i));
    meta.keyframe_interval = 48;
    metas.push_back(std::move(meta));
  }
  ds.repo = std::move(video::VideoRepository::Create(std::move(metas)))
                .value();
  return ds;
}

core::EngineConfig BenchEngineConfig() {
  core::EngineConfig cfg;
  cfg.strategy = core::Strategy::kExSample;
  cfg.batch_size = 64;        // pick batches big enough to reorder
  cfg.gop_run_frames = 16;    // runs coalesce inside the 48-frame GOPs
  cfg.decode_model = video::DecodeHeavyCostModel();
  return cfg;
}

detect::DetectorConfig BenchDetectorConfig(
    const detect::BatchLatencyModel& model) {
  detect::DetectorConfig dc = detect::PerfectDetectorConfig();
  // Keep the bare serial engine's accounting aligned with the modeled
  // backend's single-frame invocation cost (results never depend on it —
  // the run is sample-capped, not budget-capped).
  dc.inference_seconds = model.batch_setup_seconds + model.per_frame_seconds;
  return dc;
}

struct Config {
  const char* name;
  exec::PipelineOptions options;
};

struct Row {
  const Config* config = nullptr;
  double wall_seconds = 0.0;
  double modeled_decode_seconds = 0.0;
  uint64_t fingerprint = 0;
  int64_t frames = 0;
};

Row RunOne(const data::Dataset& ds, const Config& cfg, int64_t frames,
           double wall_scale, uint64_t seed,
           const detect::BatchLatencyModel& model) {
  detect::SimulatedDetector detector(&ds.ground_truth, 0,
                                     BenchDetectorConfig(model), seed + 17);
  track::OracleDiscriminator disc;
  detect::LatencyModeledDetector batched(&detector, model);
  exec::PipelineOptions options = cfg.options;
  options.wall_scale = wall_scale;
  exec::Pipeline pipeline(&ds.repo, &batched, options);
  core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc,
                           BenchEngineConfig(), seed);
  engine.set_executor(&pipeline);
  core::QuerySpec q;
  q.class_id = 0;
  q.max_samples = frames;  // no result limit: every config does N frames
  const double start = Now();
  core::QueryResult r = engine.Run(q);
  Row row;
  row.config = &cfg;
  row.wall_seconds = Now() - start;
  row.modeled_decode_seconds = r.decode_seconds;
  row.fingerprint = Fingerprint(r);
  row.frames = r.frames_processed;
  return row;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const int64_t frames = flags.GetInt("frames", smoke ? 160 : 480);
  const double wall_scale = flags.GetDouble("wall-scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out_path = flags.GetString("out", "BENCH_pipeline.json");
  flags.FailOnUnknown();
  if (frames < 64 || wall_scale <= 0.0) {
    std::fprintf(stderr,
                 "error: need --frames >= 64 and --wall-scale > 0\n");
    return 2;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const detect::BatchLatencyModel model;  // 12ms setup + 4ms/frame
  data::Dataset ds = MakeDecodeHeavyDataset(seed);

  // Reference: the bare serial engine (no executor at all). Its result
  // stream is the contract every pipelined configuration must reproduce.
  uint64_t reference_fp;
  {
    detect::SimulatedDetector detector(&ds.ground_truth, 0,
                                       BenchDetectorConfig(model), seed + 17);
    track::OracleDiscriminator disc;
    core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc,
                             BenchEngineConfig(), seed);
    core::QuerySpec q;
    q.class_id = 0;
    q.max_samples = frames;
    reference_fp = Fingerprint(engine.Run(q));
  }

  auto opts = [](int32_t depth, int32_t threads, int32_t batch,
                 bool reorder) {
    exec::PipelineOptions o;
    o.queue_depth = depth;
    o.detect_batch = batch;
    o.decode_threads = threads;
    o.plan_reorder = reorder;
    return o;
  };
  const Config kConfigs[] = {
      {"serial_equivalent", opts(1, 1, 1, /*reorder=*/false)},
      {"pipelined_d4", opts(4, 2, 8, true)},
      {"pipelined_d8", opts(8, 2, 16, true)},
      {"pipelined_d16", opts(16, 4, 32, true)},
  };

  std::printf("=== pipelined execution: %lld frames, wall_scale %.2f, "
              "%u hardware threads ===\n\n",
              static_cast<long long>(frames), wall_scale, hw);

  Table t({"config", "wall s", "modeled decode s", "speedup", "fingerprint"});
  std::vector<Row> rows;
  double serial_wall = 0.0;
  bool deterministic = true;
  for (const Config& cfg : kConfigs) {
    Row row = RunOne(ds, cfg, frames, wall_scale, seed, model);
    if (std::string(cfg.name) == "serial_equivalent") {
      serial_wall = row.wall_seconds;
    }
    if (row.fingerprint != reference_fp) {
      deterministic = false;
      std::fprintf(stderr,
                   "error: %s diverged from the serial engine (%s vs %s)\n",
                   cfg.name, Hex(row.fingerprint).c_str(),
                   Hex(reference_fp).c_str());
    }
    const double speedup =
        row.wall_seconds > 0.0 ? serial_wall / row.wall_seconds : 0.0;
    t.AddRow({cfg.name, Table::Num(row.wall_seconds, 3),
              Table::Num(row.modeled_decode_seconds, 2),
              Table::Ratio(speedup), Hex(row.fingerprint)});
    rows.push_back(row);
  }
  std::printf("%s\n", t.ToString().c_str());

  double gate_speedup = 0.0;
  Json json_rows = Json::Array();
  for (const Row& row : rows) {
    const double speedup =
        row.wall_seconds > 0.0 ? serial_wall / row.wall_seconds : 0.0;
    if (std::string(row.config->name) == "pipelined_d4") {
      gate_speedup = speedup;
    }
    json_rows.Append(
        Json::Object()
            .Set("config", row.config->name)
            .Set("queue_depth",
                 static_cast<int64_t>(row.config->options.queue_depth))
            .Set("decode_threads",
                 static_cast<int64_t>(row.config->options.decode_threads))
            .Set("detect_batch",
                 static_cast<int64_t>(row.config->options.detect_batch))
            .Set("plan_reorder", row.config->options.plan_reorder)
            .Set("wall_seconds", row.wall_seconds)
            .Set("modeled_decode_seconds", row.modeled_decode_seconds)
            .Set("speedup_vs_serial", speedup)
            .Set("frames", row.frames)
            .Set("results_fingerprint", Hex(row.fingerprint)));
  }

  // Gate (>= 4 hardware threads only): depth-4 decode-ahead with batched
  // detection must beat the serial schedule by >= 1.5x end to end.
  const bool gated = hw >= 4;
  const bool gate_pass = !gated || gate_speedup >= 1.5;
  Json doc = Json::Object();
  doc.Set("bench", "pipeline")
      .Set("smoke", smoke)
      .Set("frames", frames)
      .Set("wall_scale", wall_scale)
      .Set("hardware_threads", static_cast<int64_t>(hw))
      .Set("batch_setup_seconds", model.batch_setup_seconds)
      .Set("per_frame_seconds", model.per_frame_seconds)
      .Set("reference_fingerprint", Hex(reference_fp))
      .Set("configs", std::move(json_rows))
      .Set("speedup_pipelined_d4", gate_speedup)
      .Set("deterministic", deterministic)
      .Set("gated", gated)
      .Set("gate_threshold", 1.5)
      .Set("gate_pass", gate_pass);

  std::printf("pipelined depth-4 speedup: %s (gate >= 1.5x: %s); "
              "deterministic: %s\n",
              Table::Ratio(gate_speedup).c_str(),
              gated ? (gate_pass ? "pass" : "FAIL") : "skipped (<4 threads)",
              deterministic ? "yes" : "NO");

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return (deterministic && gate_pass) ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
