// §III-D final experiment: calibration of the variance bound (Eq III.3).
// The paper checks, on BDD-MOT ground truth, how often the 95% confidence
// bound derived from Eq III.3 contains the actual expected reward, and
// reports ~80% coverage — a slight under-estimate of variance caused by
// co-occurring (correlated) instances.
//
// We reproduce both regimes: independent instances (the model's assumption)
// and grouped instances that always co-occur (e.g. a cluster of parked
// bicycles entering the camera view together), showing coverage degrade
// with correlation exactly as the paper observes.
//
// Flags: --reps (default 1500), --instances (1000), --seed.

#include <cstdio>
#include <vector>

#include "sim/pi_model.h"
#include "util/distributions.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

// Coverage of the 95% Gamma-belief interval for the true R(n+1), with
// instances correlated in co-occurring groups of `group_size` (1 =
// independent). Grouped instances share first/second sighting times.
double MeasureCoverage(int64_t instances, int group_size, int64_t n,
                       int reps, Rng* rng) {
  auto ps = sim::GenerateLogNormalPs(instances / group_size, 3e-3, 8e-3,
                                     0.15, rng);
  int covered = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Rng rep_rng = rng->Fork();
    auto obs = sim::RunPiReplication(ps, {n}, &rep_rng);
    // Each sampled group contributes `group_size` copies to both N1 and R.
    const int64_t n1 = obs[0].n1 * group_size;
    const double r = obs[0].r_next * group_size;
    const double lo =
        GammaQuantile(0.025, static_cast<double>(n1) + 0.1,
                      static_cast<double>(n) + 1.0);
    const double hi =
        GammaQuantile(0.975, static_cast<double>(n1) + 0.1,
                      static_cast<double>(n) + 1.0);
    if (r >= lo && r <= hi) ++covered;
  }
  return static_cast<double>(covered) / reps;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int reps = static_cast<int>(flags.GetInt("reps", 1500));
  const int64_t instances = flags.GetInt("instances", 1000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 29));
  flags.FailOnUnknown();

  std::printf("=== Variance-bound calibration (Eq III.3 / §III-D) ===\n");
  std::printf("instances=%lld reps=%d\n\n",
              static_cast<long long>(instances), reps);

  Table t({"co-occurrence group", "n=1000", "n=5000", "n=20000"});
  for (int group : {1, 2, 4, 8}) {
    Rng rng(seed + static_cast<uint64_t>(group));
    std::vector<std::string> row{
        group == 1 ? "independent" : Table::Int(group) + " objects"};
    for (int64_t n : {1000, 5000, 20000}) {
      row.push_back(
          Table::Num(MeasureCoverage(instances, group, n, reps, &rng), 3));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper §III-D): near-nominal coverage when\n"
      "instances are independent, dropping toward ~0.8 and below as\n"
      "co-occurrence grows — the variance estimate is a slight\n"
      "underestimate on correlated data.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
