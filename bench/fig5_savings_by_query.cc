// Figure 5 reproduction: time-savings ratio of ExSample over random for
// every dataset x class query, at recall levels 0.1 / 0.5 / 0.9, plus the
// distribution summary the paper quotes (geometric mean ~1.9x, max ~6x,
// worst ~0.75x, .1/.9 percentiles 1.2x / 3.7x).
//
// Both strategies pay the same per-frame cost (no proxy scan), so the time
// ratio equals the sampled-frames ratio.
//
// Trials are scheduled as exec::MultiQueryRunner jobs, so the per-query
// trial sweep runs across all cores (deterministically — job seeds derive
// from trial ids, not scheduling).
//
// Flags: --scale (default 0.08), --trials (3), --threads (0 = all), --seed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const double scale = flags.GetDouble("scale", full ? 1.0 : 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", full ? 5 : 3));
  const int64_t threads_flag = flags.GetInt("threads", 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 19));
  flags.FailOnUnknown();
  if (threads_flag < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  const size_t threads = static_cast<size_t>(threads_flag);

  std::printf("=== Figure 5: savings ratio per query (ExSample vs random) "
              "===\n");
  std::printf("scale=%.3g trials=%d\n\n", scale, trials);

  Table t({"dataset", "category", "N", "save@.1", "save@.5", "save@.9"});
  std::vector<double> all_savings;  // at recall .5, the headline panel
  for (const auto& preset : data::PresetNames()) {
    auto ds = data::MakePreset(preset, scale, seed);
    for (const auto& cls : ds.classes) {
      const int64_t n_instances =
          ds.ground_truth.NumInstances(cls.class_id);
      if (n_instances < 4) continue;
      auto ex = bench::RunTrials(ds, cls.class_id, core::Strategy::kExSample,
                                 ds.repo.total_frames(), trials, seed * 31,
                                 threads);
      auto rnd = bench::RunTrials(ds, cls.class_id, core::Strategy::kRandom,
                                  ds.repo.total_frames(), trials, seed * 37,
                                  threads);
      std::vector<std::string> row{preset, cls.name,
                                   Table::Int(n_instances)};
      for (double recall : {0.1, 0.5, 0.9}) {
        double sv = sim::SavingsAtCount(
            ex, rnd, bench::RecallTarget(n_instances, recall));
        row.push_back(sv > 0.0 ? Table::Ratio(sv) : "-");
        if (recall == 0.5 && sv > 0.0) all_savings.push_back(sv);
      }
      t.AddRow(std::move(row));
    }
  }
  std::printf("%s", t.ToString().c_str());

  if (!all_savings.empty()) {
    std::vector<double> sorted = all_savings;
    std::sort(sorted.begin(), sorted.end());
    std::printf("\n=== summary over %zu queries (at recall .5) ===\n",
                sorted.size());
    std::printf("geometric mean : %.2fx   (paper: 1.9x)\n",
                GeometricMean(all_savings));
    std::printf("max            : %.2fx   (paper: ~6x)\n", sorted.back());
    std::printf("min            : %.2fx   (paper: ~0.75x)\n",
                sorted.front());
    std::printf(".1 percentile  : %.2fx   (paper: 1.2x)\n",
                Percentile(sorted, 0.1));
    std::printf(".9 percentile  : %.2fx   (paper: 3.7x)\n",
                Percentile(sorted, 0.9));
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
