// Figure 6 reproduction: per-chunk instance abundance, the skew metric S,
// and the realized savings for the paper's five representative queries:
//   A dashcam/bicycle      (N=249,   S=14,  savings ~7)
//   B bdd1k/motor          (N=509,   S=19,  savings ~2)
//   C night_street/person  (N=2078,  S=4.5, savings ~3)
//   D archie/car           (N=33546, S=1.1, savings ~1)
//   E amsterdam/boat       (N=588,   S=1.6, savings ~0.9)
//
// Flags: --scale (default 0.08), --trials (3), --seed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/statistics.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const double scale = flags.GetDouble("scale", full ? 1.0 : 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  flags.FailOnUnknown();

  std::printf("=== Figure 6: skew metric and savings, representative queries "
              "===\n");
  std::printf("scale=%.3g trials=%d\n\n", scale, trials);

  struct Query {
    const char* label;
    const char* preset;
    const char* cls;
    double paper_s;
    double paper_savings;
  };
  const std::vector<Query> queries{
      {"A", "dashcam", "bicycle", 14.0, 7.0},
      {"B", "bdd1k", "motor", 19.0, 2.0},
      {"C", "night_street", "person", 4.5, 3.0},
      {"D", "archie", "car", 1.1, 1.0},
      {"E", "amsterdam", "boat", 1.6, 0.9},
  };

  Table t({"query", "N", "chunks", "S (paper)", "S (ours)",
           "savings@.5 (paper)", "savings@.5 (ours)"});
  for (const auto& q : queries) {
    auto ds = data::MakePreset(q.preset, scale, seed);
    const auto* cls = ds.FindClass(q.cls);
    const int64_t n_instances = ds.ground_truth.NumInstances(cls->class_id);
    auto counts = data::ChunkInstanceCounts(ds, cls->class_id);
    const double s_metric = data::SkewMetric(counts);

    auto ex = bench::RunTrials(ds, cls->class_id, core::Strategy::kExSample,
                               ds.repo.total_frames(), trials, seed * 41);
    auto rnd = bench::RunTrials(ds, cls->class_id, core::Strategy::kRandom,
                                ds.repo.total_frames(), trials, seed * 43);
    double sv = sim::SavingsAtCount(ex, rnd,
                                    bench::RecallTarget(n_instances, 0.5));

    t.AddRow({std::string(q.label) + "-" + q.preset + "/" + q.cls,
              Table::Int(n_instances), Table::Int(counts.size()),
              Table::Num(q.paper_s, 3), Table::Num(s_metric, 3),
              Table::Ratio(q.paper_savings),
              sv > 0.0 ? Table::Ratio(sv) : "-"});

    // Compact abundance profile: instances per chunk (first 60 chunks).
    std::printf("%s-%s/%s chunk abundance: ", q.label, q.preset, q.cls);
    int64_t peak = 1;
    for (int64_t c : counts) peak = std::max(peak, c);
    const size_t shown = counts.size() > 60 ? 60 : counts.size();
    for (size_t j = 0; j < shown; ++j) {
      static const char kLevels[] = " .:-=+*#%@";
      int level = static_cast<int>(9.0 * static_cast<double>(counts[j]) /
                                   static_cast<double>(peak));
      std::printf("%c", kLevels[level]);
    }
    if (shown < counts.size()) std::printf(" (+%zu more)", counts.size() - shown);
    std::printf("\n");
  }
  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper Fig 6): S ordering A >> B > C > E ~ D, and\n"
      "savings increase with S except B, where 1000 chunks delay learning\n"
      "the skew (§IV-C effect).\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
