// Network-serving load generator: drives net::Server end to end through
// real TCP connections with net::Client. Sweeps connections × sessions and
// measures what a network deployment cares about — time-to-first-result
// under concurrent load and protocol requests/sec through one event loop —
// demonstrating that many network tenants amortize one SessionManager.
//
// The server runs in process (event loop on its own thread, sessions on
// the manager's pool); each simulated client is a thread with one blocking
// net::Client connection multiplexing `--sessions-per-conn` sessions.
//
// Emits BENCH_net.json:
//   sweep[]                 per connection-count row: aggregate_seconds,
//                           ttfr_p50/p95_seconds (per-session time from
//                           open to the first poll carrying a result),
//                           requests, requests_per_second,
//                           sessions_per_second
//   requests_per_second_1 / _max, speedup_max_vs_1_connections
//                           protocol throughput at 1 connection vs the
//                           largest sweep point (the concurrency payoff;
//                           like every wall-clock bench here, the ratio
//                           only exceeds ~1x on multi-core hosts)
//   shard_sweep[]           per shard-count row ({1, 2, 4} up to
//                           --shard-sweep-max; a fresh server per point,
//                           same manager): session-phase TTFR p50/p95 and
//                           a pipelined pure-protocol stats phase —
//                           stats_requests, stats_seconds,
//                           stats_requests_per_second
//   shard_speedup_4_vs_1    pipelined stats requests/sec at the largest
//                           shard point vs 1 shard (the tentpole claim:
//                           >= 2x at 4 shards on a multi-core host)
//   shard_ttfr_p95_1 / _max TTFR tail at 1 shard vs the largest point
//                           (sharding must not cost first-result latency)
//   metrics_off_stats_rps / metrics_on_stats_rps / metrics_overhead_fraction
//                           the same pipelined stats phase against a bare
//                           server vs one with the obs registry wired in
//                           (a `metrics` scraper polling mid-run); the
//                           observability acceptance gate is overhead < 2%
//
// Also writes the last mid-run `metrics` scrape to --metrics-out — the
// snapshot CI uploads as an artifact.
//
// Flags: --connections-max (32), --sessions-per-conn (4), --limit (10),
//        --preset (dashcam), --scale (0.05), --slice-frames (256),
//        --seed (23), --out (BENCH_net.json), --smoke (tiny sweep for CI),
//        --shards (1; shard count for the connection sweep's server),
//        --shard-sweep-max (4; cap on the shard sweep, 0 disables it),
//        --metrics-out (BENCH_net_metrics.json; mid-run scrape snapshot).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/protocol_handler.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

constexpr char kHost[] = "127.0.0.1";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ClientOutcome {
  int64_t requests = 0;
  std::vector<double> ttfr_seconds;  // one per session
  bool ok = true;
};

struct LoadConfig {
  uint16_t port = 0;
  int64_t sessions = 0;
  int64_t limit = 0;
  std::string preset;
  double scale = 0.0;
};

/// One simulated tenant: open `sessions` sessions on a single connection,
/// poll them round-robin to completion, record per-session TTFR.
ClientOutcome RunClient(const LoadConfig& config) {
  ClientOutcome outcome;
  auto connected = net::Client::Connect(kHost, config.port, 60.0);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    outcome.ok = false;
    return outcome;
  }
  net::Client client = std::move(connected).value();

  auto exchange = [&client, &outcome](const Json& request) {
    ++outcome.requests;
    auto response = client.Call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   response.status().ToString().c_str());
      outcome.ok = false;
      return Json();
    }
    return std::move(response).value();
  };

  struct Live {
    int64_t id = 0;
    double opened_at = 0.0;
    double ttfr = -1.0;
    bool done = false;
  };
  std::vector<Live> live;
  for (int64_t s = 0; s < config.sessions; ++s) {
    Json open = Json::Object()
                    .Set("cmd", "open")
                    .Set("preset", config.preset)
                    .Set("class", "bicycle")
                    .Set("scale", config.scale)
                    .Set("limit", config.limit);
    Live session;
    session.opened_at = Now();
    Json response = exchange(open);
    if (!outcome.ok || !response.GetBool("ok", false)) {
      std::fprintf(stderr, "open rejected: %s\n", response.Dump().c_str());
      outcome.ok = false;
      return outcome;
    }
    session.id = response.GetInt("session", -1);
    live.push_back(session);
  }

  size_t remaining = live.size();
  while (remaining > 0 && outcome.ok) {
    for (Live& session : live) {
      if (session.done) continue;
      Json response = exchange(
          Json::Object().Set("cmd", "poll").Set("session", session.id));
      if (!outcome.ok) return outcome;
      if (session.ttfr < 0 && response.GetInt("total_results", 0) > 0) {
        session.ttfr = Now() - session.opened_at;
      }
      if (response.GetString("state", "") != "running") {
        session.done = true;
        --remaining;
        outcome.ttfr_seconds.push_back(session.ttfr);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.SendLine(R"({"cmd":"quit"})");
  return outcome;
}

struct SweepRow {
  int64_t connections = 0;
  double aggregate_seconds = 0.0;
  double ttfr_p50 = 0.0;
  double ttfr_p95 = 0.0;
  int64_t requests = 0;
  double requests_per_second = 0.0;
  double sessions_per_second = 0.0;
};

/// Pipelined pure-protocol load on one connection: `total` stats requests
/// sent in windows of 64 (deep enough to amortize syscalls, shallow enough
/// that server-side backpressure never deadlocks against our own unread
/// responses). Returns the number of good responses.
int64_t RunStatsPipeline(uint16_t port, int64_t total) {
  auto connected = net::Client::Connect(kHost, port, 60.0);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 0;
  }
  net::Client client = std::move(connected).value();
  constexpr int64_t kWindow = 64;
  int64_t completed = 0;
  while (completed < total) {
    const int64_t batch = std::min(kWindow, total - completed);
    std::string lines;
    for (int64_t i = 0; i < batch; ++i) lines += "{\"cmd\":\"stats\"}\n";
    if (!client.SendRaw(lines).ok()) return completed;
    for (int64_t i = 0; i < batch; ++i) {
      auto line = client.ReadLine();
      if (!line.ok()) {
        std::fprintf(stderr, "stats read failed: %s\n",
                     line.status().ToString().c_str());
        return completed;
      }
      ++completed;
    }
  }
  client.SendLine(R"({"cmd":"quit"})");
  return completed;
}

struct ShardRow {
  int shards = 0;
  double ttfr_p50 = 0.0;
  double ttfr_p95 = 0.0;
  int64_t stats_requests = 0;
  double stats_seconds = 0.0;
  double stats_requests_per_second = 0.0;
};

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const int64_t connections_max =
      flags.GetInt("connections-max", smoke ? 4 : 32);
  const int64_t sessions_per_conn =
      flags.GetInt("sessions-per-conn", smoke ? 2 : 4);
  const int64_t limit = flags.GetInt("limit", smoke ? 2 : 10);
  const std::string preset = flags.GetString("preset", "dashcam");
  const double scale = flags.GetDouble("scale", smoke ? 0.02 : 0.05);
  const int64_t slice_frames = flags.GetInt("slice-frames", 256);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  const std::string out_path = flags.GetString("out", "BENCH_net.json");
  const int64_t shards = flags.GetInt("shards", 1);
  const int64_t shard_sweep_max = flags.GetInt("shard-sweep-max", 4);
  const std::string metrics_out =
      flags.GetString("metrics-out", "BENCH_net_metrics.json");
  flags.FailOnUnknown();
  if (connections_max < 1 || sessions_per_conn < 1 || limit < 1 ||
      scale <= 0.0 || scale > 1.0 || slice_frames < 1 || shards < 1 ||
      shard_sweep_max < 0) {
    std::fprintf(stderr,
                 "error: need --connections-max >= 1, --sessions-per-conn "
                 ">= 1, --limit >= 1, --scale in (0, 1], "
                 "--slice-frames >= 1, --shards >= 1, "
                 "--shard-sweep-max >= 0\n");
    return 2;
  }

  const size_t hw = std::thread::hardware_concurrency() > 0
                        ? std::thread::hardware_concurrency()
                        : 1;
  std::printf("=== net serving: TCP front end, %s @ %.3g, limit %lld, "
              "%lld sessions/conn (%zu cores) ===\n\n",
              preset.c_str(), scale, static_cast<long long>(limit),
              static_cast<long long>(sessions_per_conn), hw);

  serve::StatsCache cache;
  serve::DatasetPool datasets(seed);
  // One manager for the whole sweep: datasets stay warm, so every sweep
  // point measures transport + scheduling, not dataset generation.
  serve::SessionManager::Options manager_options;
  manager_options.threads = hw;
  manager_options.slice_frames = slice_frames;
  manager_options.max_live_sessions = static_cast<size_t>(
      connections_max * sessions_per_conn + 1);
  manager_options.base_seed = seed;
  serve::SessionManager manager(manager_options);

  // Every server in this bench shares the one manager/cache/dataset pool —
  // the sharding tentpole moves the transport, never the scheduler.
  auto make_server = [&manager, &cache, &datasets, connections_max](
                         int server_shards,
                         obs::Registry* metrics = nullptr) {
    net::ServerOptions server_options;
    server_options.host = kHost;
    server_options.port = 0;
    server_options.max_connections = static_cast<int>(connections_max + 8);
    server_options.shards = server_shards;
    server_options.metrics = metrics;
    return net::Server::Create(
        server_options, [&manager, &cache, &datasets, metrics] {
          serve::ProtocolHandler::Options handler_options;
          handler_options.close_sessions_on_destroy = true;
          handler_options.metrics = metrics;
          return std::make_unique<serve::ProtocolHandler>(
              &manager, &cache, &datasets, handler_options);
        });
  };

  auto created = make_server(static_cast<int>(shards));
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  net::Server* server = created.value().get();
  std::thread loop([server] { server->Serve(); });

  // Generate the dataset once up front (through the protocol) so the first
  // sweep point is not charged for it.
  {
    LoadConfig warmup{server->port(), 1, 1, preset, scale};
    RunClient(warmup);
  }

  std::vector<int64_t> sweep_counts{1};
  if (connections_max > 8) sweep_counts.push_back(8);
  if (connections_max > 1) sweep_counts.push_back(connections_max);

  Table table({"connections", "sessions", "aggregate", "ttfr p50",
               "ttfr p95", "req/s", "sessions/s"});
  std::vector<SweepRow> rows;
  for (int64_t connections : sweep_counts) {
    const LoadConfig config{server->port(), sessions_per_conn, limit, preset,
                            scale};
    std::vector<ClientOutcome> outcomes(static_cast<size_t>(connections));
    std::vector<std::thread> clients;
    const double start = Now();
    for (int64_t c = 0; c < connections; ++c) {
      clients.emplace_back([&config, &outcomes, c] {
        outcomes[static_cast<size_t>(c)] = RunClient(config);
      });
    }
    for (auto& thread : clients) thread.join();
    const double aggregate = Now() - start;

    SweepRow row;
    row.connections = connections;
    row.aggregate_seconds = aggregate;
    std::vector<double> ttfr;
    for (const auto& outcome : outcomes) {
      if (!outcome.ok) {
        std::fprintf(stderr, "error: a client failed; aborting\n");
        server->RequestStop();
        loop.join();
        return 1;
      }
      row.requests += outcome.requests;
      for (double t : outcome.ttfr_seconds) {
        if (t >= 0) ttfr.push_back(t);
      }
    }
    if (!ttfr.empty()) {
      row.ttfr_p50 = Percentile(ttfr, 0.5);
      row.ttfr_p95 = Percentile(ttfr, 0.95);
    }
    row.requests_per_second =
        aggregate > 0 ? static_cast<double>(row.requests) / aggregate : 0.0;
    row.sessions_per_second =
        aggregate > 0
            ? static_cast<double>(connections * sessions_per_conn) / aggregate
            : 0.0;
    rows.push_back(row);
    table.AddRow({Table::Int(connections),
                  Table::Int(connections * sessions_per_conn),
                  Table::Num(aggregate, 4), Table::Num(row.ttfr_p50, 4),
                  Table::Num(row.ttfr_p95, 4),
                  Table::Num(row.requests_per_second, 1),
                  Table::Num(row.sessions_per_second, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  server->RequestStop();
  loop.join();

  // Shard sweep: a fresh server per shard count, same warm manager. Phase
  // one drives real sessions for TTFR percentiles; phase two hammers the
  // event loops with pipelined stats requests — pure transport + protocol
  // work, no scheduler time — which is where shard scaling shows.
  std::vector<ShardRow> shard_rows;
  const int64_t stats_per_conn = smoke ? 500 : 5000;
  constexpr int64_t kShardPhaseConnections = 4;
  for (int candidate : {1, 2, 4}) {
    if (candidate > shard_sweep_max) continue;
    auto shard_server_created = make_server(candidate);
    if (!shard_server_created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   shard_server_created.status().ToString().c_str());
      return 1;
    }
    net::Server* shard_server = shard_server_created.value().get();
    std::thread shard_loop([shard_server] { shard_server->Serve(); });

    ShardRow row;
    row.shards = candidate;
    {
      const LoadConfig config{shard_server->port(), sessions_per_conn, limit,
                              preset, scale};
      std::vector<ClientOutcome> outcomes(kShardPhaseConnections);
      std::vector<std::thread> clients;
      for (int64_t c = 0; c < kShardPhaseConnections; ++c) {
        clients.emplace_back([&config, &outcomes, c] {
          outcomes[static_cast<size_t>(c)] = RunClient(config);
        });
      }
      for (auto& thread : clients) thread.join();
      std::vector<double> ttfr;
      for (const auto& outcome : outcomes) {
        if (!outcome.ok) {
          std::fprintf(stderr, "error: a shard-sweep client failed\n");
          shard_server->RequestStop();
          shard_loop.join();
          return 1;
        }
        for (double t : outcome.ttfr_seconds) {
          if (t >= 0) ttfr.push_back(t);
        }
      }
      if (!ttfr.empty()) {
        row.ttfr_p50 = Percentile(ttfr, 0.5);
        row.ttfr_p95 = Percentile(ttfr, 0.95);
      }
    }
    {
      std::vector<int64_t> counts(kShardPhaseConnections, 0);
      std::vector<std::thread> clients;
      const uint16_t port = shard_server->port();
      const double start = Now();
      for (int64_t c = 0; c < kShardPhaseConnections; ++c) {
        clients.emplace_back([port, stats_per_conn, &counts, c] {
          counts[static_cast<size_t>(c)] =
              RunStatsPipeline(port, stats_per_conn);
        });
      }
      for (auto& thread : clients) thread.join();
      row.stats_seconds = Now() - start;
      for (int64_t count : counts) row.stats_requests += count;
      if (row.stats_requests != kShardPhaseConnections * stats_per_conn) {
        std::fprintf(stderr, "error: stats pipeline fell short\n");
        shard_server->RequestStop();
        shard_loop.join();
        return 1;
      }
      row.stats_requests_per_second =
          row.stats_seconds > 0
              ? static_cast<double>(row.stats_requests) / row.stats_seconds
              : 0.0;
    }
    shard_rows.push_back(row);
    shard_server->RequestStop();
    shard_loop.join();
  }

  if (!shard_rows.empty()) {
    Table shard_table({"shards", "ttfr p50", "ttfr p95", "stats reqs",
                       "seconds", "stats req/s"});
    for (const ShardRow& row : shard_rows) {
      shard_table.AddRow({Table::Int(row.shards), Table::Num(row.ttfr_p50, 4),
                          Table::Num(row.ttfr_p95, 4),
                          Table::Int(row.stats_requests),
                          Table::Num(row.stats_seconds, 4),
                          Table::Num(row.stats_requests_per_second, 1)});
    }
    std::printf("%s\n", shard_table.ToString().c_str());
    const double shard_speedup =
        shard_rows.front().stats_requests_per_second > 0
            ? shard_rows.back().stats_requests_per_second /
                  shard_rows.front().stats_requests_per_second
            : 0.0;
    std::printf("pipelined stats throughput at %d shards vs 1: %s%s\n",
                shard_rows.back().shards, Table::Ratio(shard_speedup).c_str(),
                hw < 2 ? " (1-core host: scaling shows on multi-core)" : "");
  }

  // Metrics overhead phase: the pipelined stats workload against a bare
  // server, then against one with the obs registry wired through every
  // layer and a scraper polling `metrics` mid-run. The delta is the price
  // of instrumentation on the protocol hot path — gated < 2% in CI.
  // Best-of-three per mode: a 2% bar needs the noise floor of a repeated
  // measurement, not one wall-clock sample.
  struct OverheadPoint {
    double seconds = 0.0;
    int64_t requests = 0;
    double rps = 0.0;
  };
  const int64_t overhead_stats_per_conn = smoke ? 5000 : 20000;
  constexpr int kOverheadTrials = 3;
  auto run_stats_phase = [overhead_stats_per_conn](uint16_t port) {
    OverheadPoint point;
    std::vector<int64_t> counts(kShardPhaseConnections, 0);
    std::vector<std::thread> clients;
    const double start = Now();
    for (int64_t c = 0; c < kShardPhaseConnections; ++c) {
      clients.emplace_back([port, overhead_stats_per_conn, &counts, c] {
        counts[static_cast<size_t>(c)] =
            RunStatsPipeline(port, overhead_stats_per_conn);
      });
    }
    for (auto& thread : clients) thread.join();
    point.seconds = Now() - start;
    for (int64_t count : counts) point.requests += count;
    point.rps = point.seconds > 0
                    ? static_cast<double>(point.requests) / point.seconds
                    : 0.0;
    return point;
  };

  OverheadPoint metrics_off, metrics_on;
  std::string scrape_dump;
  for (int pass = 0; pass < 2; ++pass) {
    const bool with_metrics = pass == 1;
    obs::Registry registry;
    auto overhead_created = make_server(static_cast<int>(shards),
                                        with_metrics ? &registry : nullptr);
    if (!overhead_created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   overhead_created.status().ToString().c_str());
      return 1;
    }
    net::Server* overhead_server = overhead_created.value().get();
    std::thread overhead_loop([overhead_server] { overhead_server->Serve(); });

    std::atomic<bool> load_done{false};
    std::thread scraper;
    if (with_metrics) {
      const uint16_t port = overhead_server->port();
      scraper = std::thread([port, &load_done, &scrape_dump] {
        auto connected = net::Client::Connect(kHost, port, 60.0);
        if (!connected.ok()) return;
        net::Client client = std::move(connected).value();
        while (!load_done.load(std::memory_order_relaxed)) {
          auto response = client.Call(Json::Object().Set("cmd", "metrics"));
          if (response.ok() && response.value().GetBool("ok", false)) {
            scrape_dump = response.value().Dump();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        client.SendLine(R"({"cmd":"quit"})");
      });
    }

    OverheadPoint best;
    for (int trial = 0; trial < kOverheadTrials; ++trial) {
      const OverheadPoint point = run_stats_phase(overhead_server->port());
      if (point.requests !=
          kShardPhaseConnections * overhead_stats_per_conn) {
        std::fprintf(stderr, "error: overhead stats pipeline fell short\n");
        load_done.store(true, std::memory_order_relaxed);
        if (scraper.joinable()) scraper.join();
        overhead_server->RequestStop();
        overhead_loop.join();
        return 1;
      }
      if (point.rps > best.rps) best = point;
    }
    load_done.store(true, std::memory_order_relaxed);
    if (scraper.joinable()) scraper.join();
    overhead_server->RequestStop();
    overhead_loop.join();
    (with_metrics ? metrics_on : metrics_off) = best;
  }
  const double metrics_overhead =
      metrics_off.rps > 0
          ? (metrics_off.rps - metrics_on.rps) / metrics_off.rps
          : 0.0;
  std::printf("stats throughput: metrics off %.1f req/s, on %.1f req/s "
              "(overhead %+.2f%%, scraped mid-run)\n\n",
              metrics_off.rps, metrics_on.rps, metrics_overhead * 100.0);
  if (!scrape_dump.empty()) {
    std::ofstream metrics_file(metrics_out, std::ios::trunc);
    if (metrics_file.good()) {
      metrics_file << scrape_dump << "\n";
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", metrics_out.c_str());
    }
  }

  const SweepRow& first = rows.front();
  const SweepRow& last = rows.back();
  const double speedup = first.sessions_per_second > 0
                             ? last.sessions_per_second /
                                   first.sessions_per_second
                             : 0.0;
  std::printf("session throughput at %lld connections vs 1: %s%s\n",
              static_cast<long long>(last.connections),
              Table::Ratio(speedup).c_str(),
              hw < 2 ? " (1-core host: scaling shows on multi-core)" : "");

  Json doc = Json::Object();
  doc.Set("bench", "net")
      .Set("preset", preset)
      .Set("scale", scale)
      .Set("limit_k", limit)
      .Set("sessions_per_connection", sessions_per_conn)
      .Set("slice_frames", slice_frames)
      .Set("hardware_threads", static_cast<int64_t>(hw))
      .Set("smoke", smoke);
  Json sweep = Json::Array();
  for (const SweepRow& row : rows) {
    sweep.Append(Json::Object()
                     .Set("connections", row.connections)
                     .Set("sessions", row.connections * sessions_per_conn)
                     .Set("aggregate_seconds", row.aggregate_seconds)
                     .Set("ttfr_p50_seconds", row.ttfr_p50)
                     .Set("ttfr_p95_seconds", row.ttfr_p95)
                     .Set("requests", row.requests)
                     .Set("requests_per_second", row.requests_per_second)
                     .Set("sessions_per_second", row.sessions_per_second));
  }
  doc.Set("sweep", std::move(sweep))
      .Set("requests_per_second_1", first.requests_per_second)
      .Set("requests_per_second_max", last.requests_per_second)
      .Set("speedup_max_vs_1_connections", speedup)
      .Set("shards", shards)
      .Set("metrics_off_stats_rps", metrics_off.rps)
      .Set("metrics_on_stats_rps", metrics_on.rps)
      .Set("metrics_overhead_fraction", metrics_overhead);
  if (!shard_rows.empty()) {
    Json shard_sweep = Json::Array();
    for (const ShardRow& row : shard_rows) {
      shard_sweep.Append(
          Json::Object()
              .Set("shards", static_cast<int64_t>(row.shards))
              .Set("ttfr_p50_seconds", row.ttfr_p50)
              .Set("ttfr_p95_seconds", row.ttfr_p95)
              .Set("stats_requests", row.stats_requests)
              .Set("stats_seconds", row.stats_seconds)
              .Set("stats_requests_per_second",
                   row.stats_requests_per_second));
    }
    const double shard_speedup =
        shard_rows.front().stats_requests_per_second > 0
            ? shard_rows.back().stats_requests_per_second /
                  shard_rows.front().stats_requests_per_second
            : 0.0;
    doc.Set("shard_sweep", std::move(shard_sweep))
        .Set("shard_speedup_4_vs_1", shard_speedup)
        .Set("shard_ttfr_p95_1", shard_rows.front().ttfr_p95)
        .Set("shard_ttfr_p95_max", shard_rows.back().ttfr_p95);
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
