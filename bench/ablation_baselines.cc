// Ablation: baseline execution strategies (§II-B). The paper argues that
// naive sequential scanning "exhibits high variance in execution time due
// to the uneven distribution of objects in video", that random sampling
// fixes the variance, and that random+ additionally avoids early
// temporally-close samples. This bench quantifies all four strategies on a
// family of datasets whose object mass sits at a different (unknown)
// location each trial — the ad-hoc-query reality — reporting the median
// and interquartile spread of frames-to-target.
//
// Flags: --frames (120000), --trials (11), --seed.

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "sim/savings.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

data::Dataset MakeTrialDataset(int64_t frames, double center,
                               uint64_t seed) {
  data::DatasetSpec spec;
  spec.name = "baselines";
  spec.num_videos = 1;
  spec.frames_per_video = frames;
  spec.chunk_frames = frames / 40;
  data::ClassSpec c;
  c.class_id = 0;
  c.name = "obj";
  c.num_instances = 120;
  c.mean_duration_frames = 90.0;
  c.placement = data::Placement::kNormal;
  c.center_fraction = center;   // the unknown location of the object mass
  c.stddev_fraction = 0.07;
  spec.classes.push_back(c);
  return data::GenerateDataset(spec, seed);
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t frames = flags.GetInt("frames", 120000);
  const int trials = static_cast<int>(flags.GetInt("trials", 11));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 53));
  flags.FailOnUnknown();

  std::printf("=== Ablation: baseline strategies (§II-B) ===\n");
  std::printf("frames=%lld trials=%d; object mass centered at a different\n"
              "unknown location each trial (120 objects, target 60)\n\n",
              static_cast<long long>(frames), trials);

  // One dataset family shared by all strategies: trial t's mass center is
  // drawn once and reused, so comparisons are paired.
  std::vector<data::Dataset> datasets;
  {
    Rng rng(seed);
    for (int tr = 0; tr < trials; ++tr) {
      double center = 0.1 + 0.8 * rng.NextDouble();
      datasets.push_back(
          MakeTrialDataset(frames, center, seed + 1000 + tr));
    }
  }

  struct Entry {
    const char* name;
    core::Strategy strategy;
    int64_t stride;
  };
  Table t({"strategy", "p25", "median", "p75", "IQR/median"});
  for (const Entry& e :
       {Entry{"sequential (1-in-30)", core::Strategy::kSequential, 30},
        Entry{"random", core::Strategy::kRandom, 1},
        Entry{"random+", core::Strategy::kRandomPlus, 1},
        Entry{"exsample", core::Strategy::kExSample, 1}}) {
    std::vector<double> needed;
    for (int tr = 0; tr < trials; ++tr) {
      const data::Dataset& ds = datasets[static_cast<size_t>(tr)];
      detect::SimulatedDetector det(&ds.ground_truth, 0,
                                    detect::PerfectDetectorConfig(), 3);
      track::OracleDiscriminator disc;
      core::EngineConfig cfg;
      cfg.strategy = e.strategy;
      cfg.sequential_stride = e.stride;
      core::QueryEngine engine(&ds.repo, &ds.chunks, &det, &disc, cfg,
                               2000 + static_cast<uint64_t>(tr));
      core::QuerySpec q;
      q.class_id = 0;
      q.max_samples = ds.repo.total_frames();
      auto traj = engine.Run(q).true_instances;
      int64_t s = traj.SamplesToReach(60);
      if (s > 0) needed.push_back(static_cast<double>(s));
    }
    if (needed.empty()) {
      t.AddRow({e.name, "-", "-", "-", "-"});
      continue;
    }
    double p25 = Percentile(needed, 0.25);
    double p50 = Percentile(needed, 0.5);
    double p75 = Percentile(needed, 0.75);
    t.AddRow({e.name, Table::Num(p25, 4), Table::Num(p50, 4),
              Table::Num(p75, 4), Table::Num((p75 - p25) / p50, 2)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (§II-B): sequential's spread reflects where the\n"
      "object mass happens to sit relative to the scan start (huge IQR);\n"
      "random is location-invariant; random+ improves its median;\n"
      "ExSample has the lowest median by exploiting the skew.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
