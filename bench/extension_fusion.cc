// Extension experiment (§VII "For scoring"): commitment-gated lazy proxy
// scoring fused with ExSample's chunk bandit, vs pure ExSample and vs the
// BlazeIt full-scan baseline.
//
// Latency model per system (all from the paper's measured throughputs —
// scan 100 fps, sample-and-detect 20 fps):
//   exsample:  frames_to_k / 20
//   fusion:    progressive clock — every lazy chunk scan and every
//              inference advances it (reported by the engine itself)
//   blazeit:   full scan first, then frames_to_k / 20
//
// Flags: --scale (0.08), --recall (0.5), --gate (12), --seed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "proxy/blazeit.h"
#include "proxy/fusion.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.08);
  const double recall = flags.GetDouble("recall", 0.5);
  const int64_t gate = flags.GetInt("gate", 40);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 43));
  flags.FailOnUnknown();

  std::printf("=== Extension (§VII): fusion of ExSample + lazy proxy scoring "
              "===\n");
  std::printf("scale=%.3g scan-commitment-gate=%lld samples\n\n", scale,
              static_cast<long long>(gate));

  detect::ThroughputModel throughput;
  for (const auto& [preset, cls_name] :
       {std::pair{"dashcam", "bicycle"},
        std::pair{"amsterdam", "motorcycle"},
        std::pair{"night_street", "person"}}) {
    auto ds = data::MakePreset(preset, scale, seed);
    const auto* cls = ds.FindClass(cls_name);
    const int64_t n_instances = ds.ground_truth.NumInstances(cls->class_id);
    const int64_t limit = bench::RecallTarget(n_instances, recall);
    std::printf("--- %s/%s: %lld instances, target %lld ---\n", preset,
                cls_name, static_cast<long long>(n_instances),
                static_cast<long long>(limit));

    core::QuerySpec spec;
    spec.class_id = cls->class_id;
    spec.result_limit = limit;

    // Pure ExSample (frames -> time at 20 fps).
    core::Trajectory ex_traj;
    {
      detect::SimulatedDetector det(&ds.ground_truth, cls->class_id,
                                    detect::PerfectDetectorConfig(), 3);
      track::OracleDiscriminator disc;
      core::EngineConfig cfg;
      core::QueryEngine engine(&ds.repo, &ds.chunks, &det, &disc, cfg,
                               seed + 1);
      ex_traj = engine.Run(spec).reported;
    }

    // Fusion (progressive clock, milliseconds).
    proxy::FusionResult fusion;
    {
      detect::SimulatedDetector det(&ds.ground_truth, cls->class_id,
                                    detect::PerfectDetectorConfig(), 3);
      proxy::SimulatedProxyModel proxy_model(&ds.ground_truth, cls->class_id,
                                             proxy::ProxyConfig{0.15}, 5);
      track::OracleDiscriminator disc;
      proxy::FusionConfig fcfg;
      fcfg.scan_after_samples = gate;
      proxy::FusionEngine engine(&ds.repo, &ds.chunks, &proxy_model, &det,
                                 &disc, fcfg, seed + 2);
      fusion = engine.Run(spec);
    }

    // BlazeIt (full scan, then frames -> time).
    proxy::BlazeItResult blazeit;
    {
      detect::SimulatedDetector det(&ds.ground_truth, cls->class_id,
                                    detect::PerfectDetectorConfig(), 3);
      proxy::SimulatedProxyModel proxy_model(&ds.ground_truth, cls->class_id,
                                             proxy::ProxyConfig{0.15}, 5);
      track::OracleDiscriminator disc;
      proxy::BlazeItBaseline baseline(&ds.repo, &proxy_model, &det, &disc,
                                      proxy::BlazeItConfig{});
      blazeit = baseline.Run(spec);
    }

    Table t({"k", "exsample", "fusion", "blazeit"});
    for (double frac : {0.1, 0.25, 0.5, 1.0}) {
      int64_t k = bench::RecallTarget(limit, frac);
      auto ex_frames = ex_traj.SamplesToReach(k);
      auto fu_ms = fusion.reported_by_ms.SamplesToReach(k);
      auto bz_frames = blazeit.query.reported.SamplesToReach(k);
      t.AddRow(
          {Table::Int(k),
           ex_frames < 0
               ? std::string("-")
               : Table::Duration(throughput.SampleSeconds(ex_frames)),
           fu_ms < 0 ? std::string("-")
                     : Table::Duration(static_cast<double>(fu_ms) / 1000.0),
           bz_frames < 0
               ? std::string("-")
               : Table::Duration(blazeit.scan_seconds +
                                 throughput.SampleSeconds(bz_frames))});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("fusion: %lld detector frames; scored %lld frames in %d/%zu "
                "chunks (%.0f%% of dataset, %s of scan time); blazeit "
                "scored 100%% (%s).\n\n",
                static_cast<long long>(fusion.query.frames_processed),
                static_cast<long long>(fusion.frames_scored),
                fusion.chunks_scored, ds.chunks.size(),
                100.0 * static_cast<double>(fusion.frames_scored) /
                    static_cast<double>(ds.repo.total_frames()),
                Table::Duration(fusion.scan_seconds).c_str(),
                Table::Duration(blazeit.scan_seconds).c_str());
  }
  std::printf(
      "Expected shape: the commitment gate keeps fusion's scanning to the\n"
      "hot chunks only; it approaches pure ExSample where positives are\n"
      "dense in-chunk, and can pull ahead on rare-object queries where\n"
      "score-ordering saves many empty detector frames per chunk. BlazeIt\n"
      "pays its full scan before the first result at every k (Table I).\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
