// Serving-layer latency and fairness: N concurrent anytime sessions through
// serve::SessionManager. Measures what a multi-tenant deployment cares
// about — time-to-first-result and time-to-k per session under load, and
// how much aggregate wall-clock concurrency buys over serializing the same
// queries — plus a slice-size sweep (fairness quantum vs scheduling
// overhead) and the determinism contract (same results at 1 worker, T
// workers, and one-shot engine runs).
//
// Emits BENCH_serve.json. On this repo's CI the 8-session concurrent run
// must beat serializing those sessions by >= 2x aggregate time-to-k; the
// speedup only shows on multi-core hosts (a 1-core container reports ~1x).
//
// Flags: --sessions-max (32), --preset (dashcam), --scale (0.05),
//        --limit (20, per-session distinct-result target k),
//        --slice-frames (256), --seed, --out (BENCH_serve.json).
//
// The defaults make each session ~40ms of single-core work across ~150
// slices — enough scheduling granularity that the concurrent-vs-serialized
// comparison measures parallelism, not round overhead.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/predicate.h"
#include "exec/multi_query_runner.h"
#include "exec/predicate_jobs.h"
#include "serve/session.h"
#include "serve/session_manager.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SessionOutcome {
  int64_t frames = 0;
  int64_t results = 0;
  double seconds_to_first = -1.0;
  double seconds_to_done = 0.0;
};

struct LoadResult {
  double aggregate_seconds = 0.0;  // first open -> all done
  std::vector<SessionOutcome> sessions;
};

/// Opens `count` sessions (cycling the preset's classes) and either lets
/// them run concurrently or serializes them (open, wait, open, ...).
LoadResult RunLoad(const data::Dataset& ds, int64_t count, size_t threads,
                   int64_t slice_frames, int64_t limit, uint64_t seed,
                   bool serialize) {
  serve::SessionManager::Options options;
  options.threads = threads;
  options.slice_frames = slice_frames;
  options.max_live_sessions = static_cast<size_t>(count);
  options.base_seed = seed;
  serve::SessionManager manager(options);

  LoadResult load;
  std::vector<int64_t> ids;
  const double start = Now();
  for (int64_t i = 0; i < count; ++i) {
    const auto& cls = ds.classes[static_cast<size_t>(i) % ds.classes.size()];
    core::QuerySpec spec;
    spec.class_id = cls.class_id;
    spec.result_limit = limit;
    exec::QueryJob job =
        bench::MakeTrialJob(ds, cls.class_id, core::Strategy::kExSample,
                            /*max_samples=*/0, /*job_id=*/0);
    job.spec = spec;
    auto opened = manager.Open(std::move(job));
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      std::exit(1);
    }
    ids.push_back(opened.value());
    if (serialize) manager.WaitAllDone();
  }
  manager.WaitAllDone();
  load.aggregate_seconds = Now() - start;

  for (int64_t id : ids) {
    auto poll = manager.Poll(id);
    if (!poll.ok()) std::exit(1);
    SessionOutcome outcome;
    outcome.frames = poll.value().frames_processed;
    outcome.results = poll.value().total_results;
    outcome.seconds_to_first = poll.value().seconds_to_first_result;
    outcome.seconds_to_done = poll.value().wall_seconds;
    load.sessions.push_back(outcome);
  }
  return load;
}

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  return Percentile(values, p);
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t sessions_max = flags.GetInt("sessions-max", 32);
  const std::string preset = flags.GetString("preset", "dashcam");
  const double scale = flags.GetDouble("scale", 0.05);
  const int64_t limit = flags.GetInt("limit", 20);
  const int64_t slice_frames = flags.GetInt("slice-frames", 256);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");
  flags.FailOnUnknown();
  if (sessions_max < 8 || limit < 1 || slice_frames < 1 || scale <= 0.0 ||
      scale > 1.0) {
    std::fprintf(stderr,
                 "error: need --sessions-max >= 8, --limit >= 1, "
                 "--slice-frames >= 1, --scale in (0, 1]\n");
    return 2;
  }

  const size_t hw = std::thread::hardware_concurrency() > 0
                        ? std::thread::hardware_concurrency()
                        : 1;
  auto ds = data::MakePreset(preset, scale, seed);
  std::printf("=== serve layer: anytime sessions on '%s' (scale=%.3g, "
              "%lld frames, %zu cores) ===\n\n",
              preset.c_str(), scale,
              static_cast<long long>(ds.repo.total_frames()), hw);

  Json doc = Json::Object();
  doc.Set("bench", "serve")
      .Set("preset", preset)
      .Set("scale", scale)
      .Set("limit_k", limit)
      .Set("slice_frames", slice_frames)
      .Set("hardware_threads", static_cast<int64_t>(hw));

  // --- concurrency sweep: 1 / 8 / sessions-max live sessions.
  std::vector<int64_t> session_counts{1, 8, sessions_max};
  Table t({"sessions", "aggregate", "ttfr p50", "time-to-k p50",
           "time-to-k p95"});
  Json sweep = Json::Array();
  for (int64_t count : session_counts) {
    LoadResult load =
        RunLoad(ds, count, hw, slice_frames, limit, seed, /*serialize=*/false);
    std::vector<double> first, done;
    for (const auto& s : load.sessions) {
      if (s.seconds_to_first >= 0) first.push_back(s.seconds_to_first);
      done.push_back(s.seconds_to_done);
    }
    const double ttfr50 = PercentileOf(first, 0.5);
    const double ttk50 = PercentileOf(done, 0.5);
    const double ttk95 = PercentileOf(done, 0.95);
    t.AddRow({Table::Int(count), Table::Num(load.aggregate_seconds, 4),
              Table::Num(ttfr50, 4), Table::Num(ttk50, 4),
              Table::Num(ttk95, 4)});
    sweep.Append(Json::Object()
                     .Set("sessions", count)
                     .Set("aggregate_seconds", load.aggregate_seconds)
                     .Set("ttfr_p50_seconds", ttfr50)
                     .Set("time_to_k_p50_seconds", ttk50)
                     .Set("time_to_k_p95_seconds", ttk95));
  }
  std::printf("%s\n", t.ToString().c_str());
  doc.Set("concurrency_sweep", std::move(sweep));

  // --- concurrent vs serialized at 8 sessions (the headline number).
  LoadResult concurrent =
      RunLoad(ds, 8, hw, slice_frames, limit, seed, /*serialize=*/false);
  LoadResult serial =
      RunLoad(ds, 8, hw, slice_frames, limit, seed, /*serialize=*/true);
  const double speedup =
      concurrent.aggregate_seconds > 0
          ? serial.aggregate_seconds / concurrent.aggregate_seconds
          : 0.0;
  std::printf("8 sessions serialized: %.4fs, concurrent: %.4fs -> %s "
              "aggregate speedup%s\n\n",
              serial.aggregate_seconds, concurrent.aggregate_seconds,
              Table::Ratio(speedup).c_str(),
              hw < 2 ? " (1-core host: >=2x only shows on multi-core)" : "");
  doc.Set("serialized_8_seconds", serial.aggregate_seconds)
      .Set("concurrent_8_seconds", concurrent.aggregate_seconds)
      .Set("speedup_concurrent_vs_serial", speedup);

  // --- slice-size sweep at 8 sessions: responsiveness vs overhead.
  Table st({"slice", "aggregate", "ttfr p50"});
  Json slices = Json::Array();
  for (int64_t slice : {int64_t{32}, slice_frames, int64_t{2048}}) {
    LoadResult load =
        RunLoad(ds, 8, hw, slice, limit, seed, /*serialize=*/false);
    std::vector<double> first;
    for (const auto& s : load.sessions) {
      if (s.seconds_to_first >= 0) first.push_back(s.seconds_to_first);
    }
    const double ttfr50 = PercentileOf(first, 0.5);
    st.AddRow({Table::Int(slice), Table::Num(load.aggregate_seconds, 4),
               Table::Num(ttfr50, 4)});
    slices.Append(Json::Object()
                      .Set("slice_frames", slice)
                      .Set("aggregate_seconds", load.aggregate_seconds)
                      .Set("ttfr_p50_seconds", ttfr50));
  }
  std::printf("%s\n", st.ToString().c_str());
  doc.Set("slice_sweep", std::move(slices));

  // --- determinism: serial workers == T workers == one-shot engine runs.
  LoadResult one_worker =
      RunLoad(ds, 8, 1, slice_frames, limit, seed, /*serialize=*/false);
  bool deterministic = true;
  for (size_t i = 0; i < 8; ++i) {
    if (one_worker.sessions[i].frames != concurrent.sessions[i].frames ||
        one_worker.sessions[i].results != concurrent.sessions[i].results) {
      deterministic = false;
      std::fprintf(stderr, "DETERMINISM VIOLATION: session %zu differs "
                   "between 1 and %zu workers\n", i + 1, hw);
    }
  }
  // One-shot reference: the same jobs through the batch scheduler, ids
  // matching the manager's session ids (1-based, open order).
  std::vector<exec::QueryJob> jobs;
  for (int64_t i = 0; i < 8; ++i) {
    const auto& cls = ds.classes[static_cast<size_t>(i) % ds.classes.size()];
    exec::QueryJob job =
        bench::MakeTrialJob(ds, cls.class_id, core::Strategy::kExSample,
                            /*max_samples=*/0, /*job_id=*/i + 1);
    job.spec.result_limit = limit;
    job.spec.max_samples = 0;
    jobs.push_back(std::move(job));
  }
  exec::MultiQueryRunner::Options ropts;
  ropts.threads = 1;
  ropts.base_seed = seed;
  std::vector<exec::JobResult> oneshot =
      exec::MultiQueryRunner(ropts).RunAll(jobs);
  for (size_t i = 0; i < 8; ++i) {
    if (oneshot[i].result.frames_processed !=
            concurrent.sessions[i].frames ||
        static_cast<int64_t>(oneshot[i].result.results.size()) !=
            concurrent.sessions[i].results) {
      deterministic = false;
      std::fprintf(stderr, "DETERMINISM VIOLATION: session %zu differs "
                   "from its one-shot engine run\n", i + 1);
    }
  }
  std::printf("sliced concurrent == serial workers == one-shot runs: %s\n",
              deterministic ? "yes" : "NO (bug!)");
  doc.Set("deterministic", deterministic);

  // --- multi-class shared-decode phase: one kMultiClass session over all
  // of paired_street's classes against the same four queries run serially,
  // one engine each. Decode seconds are the *modeled* cost, so the ratio
  // measures how much frame overlap the shared decode cache absorbs — a
  // property of the sampler, deterministic on any host. Each class runs to
  // the same per-class sample cap (a quarter of the repository) so the
  // constituent sampling fractions are high enough to overlap.
  bool multiclass_deterministic = true;
  {
    auto pds = data::MakePreset("paired_street", scale, seed);
    const int64_t per_class_samples = pds.repo.total_frames() / 4;
    core::PredicateRequest request;
    request.kind = core::PredicateKind::kMultiClass;
    for (const auto& cls : pds.classes) {
      request.class_names.push_back(cls.name);
    }
    auto resolved = exec::ResolvePredicate(pds, request);
    if (!resolved.ok()) {
      std::fprintf(stderr, "multiclass resolve failed: %s\n",
                   resolved.status().ToString().c_str());
      return 1;
    }
    exec::QueryJob multi_job;
    multi_job.id = 0;
    multi_job.repo = &pds.repo;
    multi_job.chunks = &pds.chunks;
    multi_job.config.strategy = core::Strategy::kExSample;
    multi_job.spec.max_samples = per_class_samples;
    exec::ConfigurePredicateJob(&pds, resolved.value(), /*use_tracker=*/false,
                                detect::DetectorConfig{}, &multi_job);
    auto run_multi = [&multi_job, seed](int64_t slice) {
      serve::QuerySession session(multi_job, seed);
      while (session.RunSlice(slice)) {
      }
      return session.result();
    };
    const core::QueryResult shared = run_multi(4096);
    const core::QueryResult resliced = run_multi(257);
    multiclass_deterministic =
        shared.frames_processed == resliced.frames_processed &&
        shared.results.size() == resliced.results.size() &&
        shared.decode_seconds == resliced.decode_seconds;
    if (!multiclass_deterministic) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: multi-class session "
                   "differs across slice sizes\n");
    }

    double serial_decode = 0.0;
    for (const auto& cls : pds.classes) {
      core::PredicateRequest single;
      single.class_names = {cls.name};
      auto single_resolved = exec::ResolvePredicate(pds, single);
      if (!single_resolved.ok()) std::exit(1);
      exec::QueryJob job;
      job.id = 0;
      job.repo = &pds.repo;
      job.chunks = &pds.chunks;
      job.config.strategy = core::Strategy::kExSample;
      job.spec.max_samples = per_class_samples;
      exec::ConfigurePredicateJob(&pds, single_resolved.value(),
                                  /*use_tracker=*/false,
                                  detect::DetectorConfig{}, &job);
      serve::QuerySession session(job, seed);
      while (session.RunSlice(4096)) {
      }
      serial_decode += session.result().decode_seconds;
    }
    const double decode_speedup =
        shared.decode_seconds > 0 ? serial_decode / shared.decode_seconds
                                  : 0.0;
    std::printf("multi-class over %zu classes: shared decode %.4fs vs "
                "serial per-class %.4fs -> %s modeled decode speedup\n",
                pds.classes.size(), shared.decode_seconds, serial_decode,
                Table::Ratio(decode_speedup).c_str());
    doc.Set("multiclass_shared_decode_seconds", shared.decode_seconds)
        .Set("multiclass_serial_decode_seconds", serial_decode)
        .Set("speedup_multiclass_shared_decode", decode_speedup)
        .Set("multiclass_deterministic", multiclass_deterministic);
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic && multiclass_deterministic ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
