// Ablation: the design choices of §III-B/§III-C.
//  1. Chunk policy: Thompson sampling (the paper's choice) vs Bayes-UCB
//     (reported as equivalent), vs greedy point-estimate (the §III-B
//     failure mode), vs uniform chunk choice.
//  2. Belief prior alpha0 sensitivity (the paper reports no strong
//     dependence around alpha0 = 0.1).
//  3. Within-chunk sampling: random+ vs plain uniform (§III-F).
//
// The within-chunk comparison (3) runs its engine trials as
// exec::MultiQueryRunner jobs across all cores.
//
// Flags: --frames (1M), --trials (7), --instances (500), --chunks (64),
//        --max-samples (20000), --threads (0 = all), --seed.

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "exec/multi_query_runner.h"
#include "exec/query_job.h"
#include "sim/chunked_sim.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t frames = flags.GetInt("frames", 1'000'000);
  const int trials = static_cast<int>(flags.GetInt("trials", 7));
  const int64_t instances = flags.GetInt("instances", 500);
  const int32_t chunks = static_cast<int32_t>(flags.GetInt("chunks", 64));
  const int64_t max_samples = flags.GetInt("max-samples", 20000);
  const int64_t threads_flag = flags.GetInt("threads", 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 31));
  flags.FailOnUnknown();
  if (threads_flag < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  const size_t threads = static_cast<size_t>(threads_flag);

  std::printf("=== Ablation: policy, prior, within-chunk sampling ===\n");
  std::printf("frames=%lld instances=%lld chunks=%d trials=%d\n\n",
              static_cast<long long>(frames),
              static_cast<long long>(instances), chunks, trials);

  sim::WorkloadParams params;
  params.num_instances = instances;
  params.num_frames = frames;
  params.mean_duration = 700.0;
  params.skew_fraction = 1.0 / 32.0;
  Rng wl_rng(seed);
  auto workload = sim::MakeWorkload(params, &wl_rng);

  auto run_policy = [&](core::PolicyKind policy, core::BeliefParams belief,
                        uint64_t base) {
    std::vector<core::Trajectory> out;
    for (int tr = 0; tr < trials; ++tr) {
      sim::SimConfig cfg;
      cfg.strategy = sim::SimStrategy::kExSample;
      cfg.num_chunks = chunks;
      cfg.policy = policy;
      cfg.belief = belief;
      cfg.max_samples = max_samples;
      Rng rng(base + static_cast<uint64_t>(tr));
      out.push_back(sim::RunSimTrial(workload, cfg, &rng));
    }
    return out;
  };

  std::printf("--- 1. chunk policy (median samples to reach target) ---\n");
  {
    Table t({"policy", "to 50", "to 100", "to 250", "found@end"});
    struct Row {
      const char* name;
      core::PolicyKind kind;
    };
    for (const Row& row : {Row{"thompson", core::PolicyKind::kThompson},
                           Row{"bayes_ucb", core::PolicyKind::kBayesUcb},
                           Row{"greedy", core::PolicyKind::kGreedy},
                           Row{"uniform", core::PolicyKind::kUniform}}) {
      auto trajs = run_policy(row.kind, core::BeliefParams{}, 1000);
      std::vector<std::string> cells{row.name};
      for (int64_t target : {50, 100, 250}) {
        int64_t s = sim::MedianSamplesToReach(trajs, target);
        cells.push_back(s < 0 ? "-" : Table::Int(s));
      }
      auto band = sim::SummarizeTrials(trajs, {max_samples});
      cells.push_back(Table::Num(band.p50[0], 4));
      t.AddRow(std::move(cells));
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("(expected: thompson ~ bayes_ucb, both well ahead of\n"
                " uniform; greedy erratic/slower — §III-B, §III-C)\n\n");
  }

  std::printf("--- 2. belief prior alpha0 sensitivity ---\n");
  {
    Table t({"alpha0", "to 100", "to 250", "found@end"});
    for (double alpha0 : {0.01, 0.05, 0.1, 0.5, 1.0}) {
      auto trajs = run_policy(core::PolicyKind::kThompson,
                              core::BeliefParams{alpha0, 1.0}, 2000);
      std::vector<std::string> cells{Table::Num(alpha0, 3)};
      for (int64_t target : {100, 250}) {
        int64_t s = sim::MedianSamplesToReach(trajs, target);
        cells.push_back(s < 0 ? "-" : Table::Int(s));
      }
      auto band = sim::SummarizeTrials(trajs, {max_samples});
      cells.push_back(Table::Num(band.p50[0], 4));
      t.AddRow(std::move(cells));
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("(expected: flat across alpha0 — the paper reports no\n"
                " strong dependence on this choice)\n\n");
  }

  std::printf("--- 3. within-chunk sampling: random+ vs uniform ---\n");
  {
    // Uses the full video engine on a dense static-camera preset, where
    // close-together samples cause duplicate sightings.
    auto ds = data::MakePreset("archie", 0.08, seed);
    auto class_id = ds.FindClass("car")->class_id;
    const int64_t n_instances = ds.ground_truth.NumInstances(class_id);
    Table t({"within-chunk", "to 25% recall", "to 50% recall"});
    for (auto within : {video::WithinChunkStrategy::kRandomPlus,
                        video::WithinChunkStrategy::kUniform}) {
      // Each trial is one scheduled job; the trial index is the job id.
      std::vector<exec::QueryJob> jobs;
      for (int tr = 0; tr < trials; ++tr) {
        exec::QueryJob job = bench::MakeTrialJob(
            ds, class_id, core::Strategy::kExSample,
            ds.repo.total_frames() / 4, tr);
        job.config.within_chunk = within;
        jobs.push_back(std::move(job));
      }
      exec::MultiQueryRunner::Options options;
      options.threads = threads;
      options.base_seed = 3000;
      std::vector<core::Trajectory> trajs;
      for (exec::JobResult& r :
           exec::MultiQueryRunner(options).RunAll(jobs)) {
        trajs.push_back(std::move(r.result.true_instances));
      }
      std::vector<std::string> cells{
          within == video::WithinChunkStrategy::kRandomPlus ? "random+"
                                                            : "uniform"};
      for (double recall : {0.25, 0.5}) {
        int64_t s = sim::MedianSamplesToReach(
            trajs, bench::RecallTarget(n_instances, recall));
        cells.push_back(s < 0 ? "-" : Table::Int(s));
      }
      t.AddRow(std::move(cells));
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("(expected: random+ needs fewer samples — it avoids\n"
                " temporally-adjacent picks that re-see the same objects,\n"
                " §III-F)\n");
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
