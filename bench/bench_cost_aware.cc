// Cost-aware sampling: frame-denominated vs cost-denominated ExSample.
//
// ExSample's savings claims are about wall-clock/GPU cost, but the classic
// bandit scores chunks by E[new results per *frame*]. When chunks differ in
// cost-per-frame — long-GOP videos pay seek + keyframe + a long chain of
// predicted decodes per random access, short-GOP videos don't — spending
// picks by frame count leaves real-time savings on the table (EKO makes the
// same observation for sampling compressed video). This bench measures the
// gap on a repository whose videos alternate between short and long GOPs,
// under the decode-cost presets (see video::SeekHeavyCostModel /
// DecodeHeavyCostModel and bench/README.md):
//
//   * seek-heavy       — cold-storage access, container seek dominates; GOP
//                        mix 12 vs 360 frames. The headline preset:
//                        cost-aware must reach k results in >= 1.3x less
//                        simulated wall-clock (gated in CI).
//   * decode-heavy     — fast storage, expensive decode; reaching a mid-GOP
//                        frame pays mostly for the predicted-frame chain.
//   * seek-heavy-brief — seek-heavy costs, but brief objects (mean ~4
//                        frames): the regime GOP-run draws are for.
//   * uniform          — every video at the default 20-frame GOP and stock
//                        cost model: no per-chunk cost skew, so cost-aware
//                        must tie frame-denominated (sanity row, ~1x).
//
// Variants per preset: frame-denominated ExSample, cost-aware ExSample
// (E[results/second] scoring), and cost-aware + GOP-run draws (one seek
// amortized across a short run of consecutive frames). Time-to-k is fully
// simulated (decoder + detector cost models), so results are deterministic
// in the seed and identical on any host.
//
// Emits BENCH_cost_aware.json; exits non-zero when the seek-heavy gate
// fails. Flags: --trials (9), --limit-k (60), --gop-run (8), --seed (1),
//        --out (BENCH_cost_aware.json).

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"
#include "video/decoder.h"
#include "video/repository.h"

namespace exsample {
namespace {

// Cheap-model regime (proxy scoring / edge detector): inference is fast
// enough that decode structure, not the network, dominates per-frame cost —
// the regime where cost-aware chunk choice has room to matter.
constexpr double kInferenceSeconds = 0.002;

/// Uniform object placement over a repository whose odd-indexed videos are
/// re-encoded with `expensive_gop` (chunks = one per video, so half the
/// chunks are cheap to sample and half expensive, at identical result
/// rates). With equal rates everywhere, a frame-denominated bandit splits
/// its picks across both halves; a cost-aware one concentrates on the cheap
/// half and reaches k in less simulated time.
data::Dataset MakeGopMixDataset(uint64_t seed, int32_t cheap_gop,
                                int32_t expensive_gop, int64_t num_instances,
                                double mean_duration_frames) {
  data::DatasetSpec spec;
  spec.name = "gop_mix";
  spec.num_videos = 40;
  spec.frames_per_video = 2500;
  spec.chunk_frames = 2500;  // one chunk per video
  data::ClassSpec c;
  c.class_id = 0;
  c.name = "obj";
  c.num_instances = num_instances;
  c.mean_duration_frames = mean_duration_frames;
  c.placement = data::Placement::kUniform;
  spec.classes.push_back(c);
  data::Dataset ds = data::GenerateDataset(spec, seed);

  // Rebuild the repository with the GOP mix. Frame counts are unchanged, so
  // the chunking and ground truth (which address frames, not GOPs) carry
  // over as-is.
  std::vector<video::VideoMeta> metas;
  metas.reserve(ds.repo.num_videos());
  for (size_t i = 0; i < ds.repo.num_videos(); ++i) {
    video::VideoMeta meta = ds.repo.video(static_cast<video::VideoIndex>(i));
    meta.keyframe_interval = (i % 2 == 0) ? cheap_gop : expensive_gop;
    metas.push_back(std::move(meta));
  }
  auto rebuilt = video::VideoRepository::Create(std::move(metas));
  ds.repo = std::move(rebuilt).value();
  return ds;
}

struct Variant {
  const char* name;
  bool cost_aware;
  int32_t gop_run;
};

struct Outcome {
  double seconds_to_k = 0.0;
  int64_t frames_to_k = 0;
};

Outcome RunOne(const data::Dataset& ds, const video::DecodeCostModel& model,
               const Variant& v, int64_t limit_k, uint64_t seed) {
  detect::DetectorConfig dc = detect::PerfectDetectorConfig();
  dc.inference_seconds = kInferenceSeconds;
  detect::SimulatedDetector detector(&ds.ground_truth, 0, dc, seed * 3 + 1);
  track::OracleDiscriminator disc;
  core::EngineConfig cfg;
  cfg.strategy = core::Strategy::kExSample;
  cfg.cost_aware = v.cost_aware;
  cfg.gop_run_frames = v.gop_run;
  cfg.decode_model = model;
  core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc, cfg,
                           seed);
  core::QuerySpec q;
  q.class_id = 0;
  q.result_limit = limit_k;  // Run() stops at the k-th distinct result
  core::QueryResult r = engine.Run(q);
  return Outcome{r.total_seconds(), r.frames_processed};
}

struct MedianOutcome {
  double seconds = 0.0;
  double frames = 0.0;
};

MedianOutcome RunVariant(const data::Dataset& ds,
                         const video::DecodeCostModel& model,
                         const Variant& v, int64_t limit_k, int64_t trials,
                         uint64_t seed) {
  std::vector<double> seconds, frames;
  for (int64_t t = 0; t < trials; ++t) {
    Outcome o = RunOne(ds, model, v, limit_k, seed + 100 * (t + 1));
    seconds.push_back(o.seconds_to_k);
    frames.push_back(static_cast<double>(o.frames_to_k));
  }
  return MedianOutcome{Percentile(seconds, 0.5), Percentile(frames, 0.5)};
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t trials = flags.GetInt("trials", 9);
  const int64_t limit_k = flags.GetInt("limit-k", 60);
  const int64_t gop_run = flags.GetInt("gop-run", 8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out_path = flags.GetString("out", "BENCH_cost_aware.json");
  flags.FailOnUnknown();
  if (trials < 1 || limit_k < 1 || gop_run < 2) {
    std::fprintf(stderr,
                 "error: need --trials >= 1, --limit-k >= 1, --gop-run >= 2\n");
    return 2;
  }

  struct Preset {
    const char* name;
    video::DecodeCostModel model;
    int32_t cheap_gop;
    int32_t expensive_gop;
    int64_t num_instances;
    double mean_duration_frames;
  };
  const Preset kPresets[] = {
      // Long-lived objects: consecutive frames are redundant, so GOP runs
      // trade statistical efficiency for cost and roughly break even; pure
      // cost-aware chunk choice carries the win.
      {"seek_heavy", video::SeekHeavyCostModel(), 12, 360, 200, 150.0},
      {"decode_heavy", video::DecodeHeavyCostModel(), 12, 360, 200, 150.0},
      // Brief objects (mean ~4 frames): an 8-frame run scans a contiguous
      // window that catches events a single draw would miss, so the
      // amortized run is both much cheaper per frame and nearly as
      // informative per run — the regime GOP runs are for.
      {"seek_heavy_brief", video::SeekHeavyCostModel(), 12, 360, 1500, 4.0},
      {"uniform", video::DecodeCostModel{}, 20, 20, 200, 150.0},
  };
  const Variant kVariants[] = {
      {"frame_denominated", false, 1},
      {"cost_aware", true, 1},
      {"cost_aware_gop_run", true, static_cast<int32_t>(gop_run)},
  };

  std::printf("=== cost-aware sampling: time to k=%lld distinct results "
              "(median of %lld trials, simulated seconds) ===\n\n",
              static_cast<long long>(limit_k),
              static_cast<long long>(trials));

  Json doc = Json::Object();
  doc.Set("bench", "cost_aware")
      .Set("limit_k", limit_k)
      .Set("trials", trials)
      .Set("gop_run_frames", gop_run)
      .Set("inference_seconds", kInferenceSeconds);

  double seek_heavy_speedup = 0.0;
  Json presets = Json::Array();
  for (const Preset& p : kPresets) {
    data::Dataset ds = MakeGopMixDataset(seed, p.cheap_gop, p.expensive_gop,
                                         p.num_instances,
                                         p.mean_duration_frames);
    Table t({"variant", "seconds-to-k p50", "frames-to-k p50", "vs frames"});
    Json rows = Json::Array();
    double base_seconds = 0.0;
    for (const Variant& v : kVariants) {
      MedianOutcome m = RunVariant(ds, p.model, v, limit_k, trials, seed);
      if (std::string(v.name) == "frame_denominated") base_seconds = m.seconds;
      const double speedup = m.seconds > 0.0 ? base_seconds / m.seconds : 0.0;
      t.AddRow({v.name, Table::Num(m.seconds, 2),
                Table::Int(static_cast<int64_t>(m.frames)),
                Table::Ratio(speedup)});
      rows.Append(Json::Object()
                      .Set("variant", v.name)
                      .Set("seconds_to_k_p50", m.seconds)
                      .Set("frames_to_k_p50", m.frames)
                      .Set("speedup_vs_frame_denominated", speedup));
      if (std::string(p.name) == "seek_heavy" &&
          std::string(v.name) == "cost_aware") {
        seek_heavy_speedup = speedup;
      }
    }
    std::printf("--- %s (GOP %d vs %d, seek %.3fs key %.3fs pred %.4fs)\n%s\n",
                p.name, p.cheap_gop, p.expensive_gop, p.model.seek_seconds,
                p.model.keyframe_decode_seconds,
                p.model.predicted_decode_seconds, t.ToString().c_str());
    presets.Append(Json::Object()
                       .Set("preset", p.name)
                       .Set("cheap_gop", static_cast<int64_t>(p.cheap_gop))
                       .Set("expensive_gop",
                            static_cast<int64_t>(p.expensive_gop))
                       .Set("variants", std::move(rows)));
  }
  doc.Set("presets", std::move(presets));

  // CI gate: on the seek-heavy preset, denominate the bandit in seconds and
  // it must reach k in at least 1.3x less simulated wall-clock.
  const bool gate_pass = seek_heavy_speedup >= 1.3;
  doc.Set("speedup_cost_aware_seek_heavy", seek_heavy_speedup)
      .Set("gate_threshold", 1.3)
      .Set("gate_pass", gate_pass);
  std::printf("seek-heavy cost-aware speedup: %s (gate >= 1.3x: %s)\n",
              Table::Ratio(seek_heavy_speedup).c_str(),
              gate_pass ? "pass" : "FAIL");

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
