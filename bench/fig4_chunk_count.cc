// Figure 4 reproduction: effect of the number of chunks for a fixed
// workload (skew 1/32, mean duration 700 — the third row/column cell of
// Figure 3). For M in {2, 16, 128, 1024} the bench reports the median
// instances found by ExSample at sample checkpoints, the random baseline,
// and the expected results under the Eq IV.1 optimal static allocation for
// that M (the dashed lines of the figure).
//
// Flags: --frames (default 2M; paper 16M — pass --full), --trials (5),
//        --instances (2000), --max-samples (30000), --seed.

#include <cstdio>
#include <vector>

#include "optimal/weights.h"
#include "sim/chunked_sim.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const int64_t frames = flags.GetInt("frames", full ? 16'000'000 : 2'000'000);
  const int trials = static_cast<int>(flags.GetInt("trials", full ? 21 : 5));
  const int64_t instances = flags.GetInt("instances", 2000);
  const int64_t max_samples = flags.GetInt("max-samples", 30000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 13));
  flags.FailOnUnknown();

  std::printf("=== Figure 4: varying the number of chunks ===\n");
  std::printf("frames=%lld instances=%lld trials=%d max_samples=%lld\n",
              static_cast<long long>(frames),
              static_cast<long long>(instances), trials,
              static_cast<long long>(max_samples));
  std::printf("workload: skew 1/32, mean duration 700 frames\n\n");

  sim::WorkloadParams params;
  params.num_instances = instances;
  params.num_frames = frames;
  params.mean_duration = 700.0;
  params.skew_fraction = 1.0 / 32.0;
  Rng wl_rng(seed);
  auto workload = sim::MakeWorkload(params, &wl_rng);

  const std::vector<int64_t> checkpoints{max_samples / 30, max_samples / 10,
                                         max_samples / 3, max_samples};
  const std::vector<int32_t> chunk_counts{2, 16, 128, 1024};

  Table t({"M", "strategy", "@" + Table::Int(checkpoints[0]),
           "@" + Table::Int(checkpoints[1]), "@" + Table::Int(checkpoints[2]),
           "@" + Table::Int(checkpoints[3])});

  // Random baseline (equivalent to M = 1).
  {
    std::vector<core::Trajectory> rnd;
    for (int tr = 0; tr < trials; ++tr) {
      sim::SimConfig cfg;
      cfg.strategy = sim::SimStrategy::kRandom;
      cfg.num_chunks = 1;
      cfg.max_samples = max_samples;
      Rng rng(500 + static_cast<uint64_t>(tr));
      rnd.push_back(sim::RunSimTrial(workload, cfg, &rng));
    }
    auto band = sim::SummarizeTrials(rnd, checkpoints);
    std::vector<std::string> row{"1", "random"};
    for (double v : band.p50) row.push_back(Table::Num(v, 4));
    t.AddRow(std::move(row));
  }

  for (int32_t m : chunk_counts) {
    std::vector<core::Trajectory> ex;
    for (int tr = 0; tr < trials; ++tr) {
      sim::SimConfig cfg;
      cfg.strategy = sim::SimStrategy::kExSample;
      cfg.num_chunks = m;
      cfg.max_samples = max_samples;
      Rng rng(1000 + static_cast<uint64_t>(m) * 100 +
              static_cast<uint64_t>(tr));
      ex.push_back(sim::RunSimTrial(workload, cfg, &rng));
    }
    auto band = sim::SummarizeTrials(ex, checkpoints);
    std::vector<std::string> row{Table::Int(m), "exsample"};
    for (double v : band.p50) row.push_back(Table::Num(v, 4));
    t.AddRow(std::move(row));

    // Optimal static allocation per checkpoint (dashed line).
    auto probs = sim::WorkloadChunkProbs(workload, m);
    std::vector<std::string> opt_row{Table::Int(m), "optimal"};
    for (int64_t n : checkpoints) {
      auto w =
          optimal::OptimalWeights(probs, m, static_cast<double>(n));
      opt_row.push_back(Table::Num(
          optimal::ExpectedResults(probs, w, static_cast<double>(n)), 4));
    }
    t.AddRow(std::move(opt_row));
  }

  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper Fig 4): more chunks raise the optimal curve\n"
      "(finer exploitable skew), but ExSample's realized counts peak at a\n"
      "moderate M (~128) and drop at 1024 because each chunk must be\n"
      "sampled before its promise is known; every M still beats random.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
