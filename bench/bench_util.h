// Shared helpers for the benchmark/experiment binaries: preset query
// runners and trial collection, scheduled through exec::MultiQueryRunner
// so multi-trial sweeps use every core while staying deterministic (the
// trial index is the job id; see MultiQueryRunner::JobSeed).

#ifndef EXSAMPLE_BENCH_BENCH_UTIL_H_
#define EXSAMPLE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "exec/multi_query_runner.h"
#include "exec/query_job.h"
#include "track/discriminator.h"

namespace exsample {
namespace bench {

/// One engine trial as a schedulable job (oracle discriminator, perfect
/// detector: isolates sampling behaviour, matching how the paper counts
/// recall against its reference ground truth). The dataset must outlive
/// the returned job.
inline exec::QueryJob MakeTrialJob(const data::Dataset& ds,
                                   detect::ClassId class_id,
                                   core::Strategy strategy,
                                   int64_t max_samples, int64_t job_id,
                                   int32_t batch_size = 1) {
  exec::QueryJob job;
  job.id = job_id;
  job.repo = &ds.repo;
  job.chunks = &ds.chunks;
  job.config.strategy = strategy;
  job.config.batch_size = batch_size;
  job.spec.class_id = class_id;
  job.spec.max_samples = max_samples;
  job.make_detector = [&ds, class_id](uint64_t seed) {
    return std::make_unique<detect::SimulatedDetector>(
        &ds.ground_truth, class_id, detect::PerfectDetectorConfig(), seed);
  };
  job.make_discriminator = [] {
    return std::make_unique<track::OracleDiscriminator>();
  };
  return job;
}

/// Collects `trials` distinct-true-instance trajectories with independent
/// per-trial seed streams. `threads` = 0 uses every hardware thread; the
/// trajectories are identical for any thread count.
inline std::vector<core::Trajectory> RunTrials(
    const data::Dataset& ds, detect::ClassId class_id,
    core::Strategy strategy, int64_t max_samples, int trials,
    uint64_t seed_base, size_t threads = 0, int32_t batch_size = 1) {
  std::vector<exec::QueryJob> jobs;
  jobs.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    jobs.push_back(
        MakeTrialJob(ds, class_id, strategy, max_samples, t, batch_size));
  }
  exec::MultiQueryRunner::Options options;
  options.threads = threads;
  options.base_seed = seed_base;
  std::vector<exec::JobResult> results =
      exec::MultiQueryRunner(options).RunAll(jobs);
  std::vector<core::Trajectory> out;
  out.reserve(results.size());
  for (exec::JobResult& r : results) {
    out.push_back(std::move(r.result.true_instances));
  }
  return out;
}

/// Single-trial convenience wrapper.
inline core::Trajectory RunTrial(const data::Dataset& ds,
                                 detect::ClassId class_id,
                                 core::Strategy strategy, int64_t max_samples,
                                 uint64_t seed, int32_t batch_size = 1) {
  return std::move(RunTrials(ds, class_id, strategy, max_samples, 1, seed, 1,
                             batch_size)[0]);
}

/// ceil(recall * count) as an integer target.
inline int64_t RecallTarget(int64_t count, double recall) {
  int64_t t = static_cast<int64_t>(recall * static_cast<double>(count) + 0.999999);
  return t < 1 ? 1 : t;
}

}  // namespace bench
}  // namespace exsample

#endif  // EXSAMPLE_BENCH_BENCH_UTIL_H_
