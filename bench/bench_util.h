// Shared helpers for the benchmark/experiment binaries: preset query
// runners and trial collection.

#ifndef EXSAMPLE_BENCH_BENCH_UTIL_H_
#define EXSAMPLE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"

namespace exsample {
namespace bench {

/// Runs one engine trial on a dataset and returns the distinct-true-instance
/// trajectory (oracle discriminator, perfect detector: isolates sampling
/// behaviour, matching how the paper counts recall against its reference
/// ground truth).
inline core::Trajectory RunTrial(const data::Dataset& ds,
                                 detect::ClassId class_id,
                                 core::Strategy strategy, int64_t max_samples,
                                 uint64_t seed, int32_t batch_size = 1) {
  detect::SimulatedDetector detector(&ds.ground_truth, class_id,
                                     detect::PerfectDetectorConfig(),
                                     seed * 1000003 + 17);
  track::OracleDiscriminator disc;
  core::EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.batch_size = batch_size;
  core::QueryEngine engine(&ds.repo, &ds.chunks, &detector, &disc, cfg, seed);
  core::QuerySpec spec;
  spec.class_id = class_id;
  spec.max_samples = max_samples;
  return engine.Run(spec).true_instances;
}

/// Collects `trials` trajectories with distinct seeds.
inline std::vector<core::Trajectory> RunTrials(
    const data::Dataset& ds, detect::ClassId class_id,
    core::Strategy strategy, int64_t max_samples, int trials,
    uint64_t seed_base) {
  std::vector<core::Trajectory> out;
  out.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    out.push_back(RunTrial(ds, class_id, strategy, max_samples,
                           seed_base + static_cast<uint64_t>(t)));
  }
  return out;
}

/// ceil(recall * count) as an integer target.
inline int64_t RecallTarget(int64_t count, double recall) {
  int64_t t = static_cast<int64_t>(recall * static_cast<double>(count) + 0.999999);
  return t < 1 ? 1 : t;
}

}  // namespace bench
}  // namespace exsample

#endif  // EXSAMPLE_BENCH_BENCH_UTIL_H_
