// Figure 3 reproduction: simulated savings of ExSample over random across a
// grid of instance skew (none, 1/4, 1/32, 1/256 of the dataset holding 95%
// of instances) x mean instance duration (14, 100, 700, 4900 frames).
//
// For each cell we run ExSample (Thompson over 128 chunks) and random
// trials, report the median samples to reach 10 / 100 / 1000 results and
// the savings ratios, plus the expected results under the optimal static
// allocation of Eq IV.1 (the dashed benchmark lines).
//
// Flags: --frames (default 2M; paper 16M — pass --full), --trials
//        (default 5; paper 21), --instances (2000), --chunks (128),
//        --max-samples (default 30000), --seed.

#include <cstdio>
#include <vector>

#include "optimal/weights.h"
#include "sim/chunked_sim.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool full = flags.GetBool("full");
  const int64_t frames = flags.GetInt("frames", full ? 16'000'000 : 2'000'000);
  const int trials = static_cast<int>(flags.GetInt("trials", full ? 21 : 5));
  const int64_t instances = flags.GetInt("instances", 2000);
  const int32_t chunks = static_cast<int32_t>(flags.GetInt("chunks", 128));
  const int64_t max_samples =
      flags.GetInt("max-samples", full ? 100000 : 30000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  flags.FailOnUnknown();

  std::printf("=== Figure 3: savings grid (skew x duration) ===\n");
  std::printf(
      "frames=%lld instances=%lld chunks=%d trials=%d max_samples=%lld\n",
      static_cast<long long>(frames), static_cast<long long>(instances),
      chunks, trials, static_cast<long long>(max_samples));
  std::printf("(paper: 16M frames, 2000 instances, 128 chunks, 21 trials)\n\n");

  const std::vector<std::pair<const char*, double>> skews{
      {"none", 0.0},
      {"1/4", 1.0 / 4.0},
      {"1/32", 1.0 / 32.0},
      {"1/256", 1.0 / 256.0}};
  const std::vector<double> durations{14.0, 100.0, 700.0, 4900.0};
  const std::vector<int64_t> targets{10, 100, 1000};

  Table t({"skew", "duration", "save@10", "save@100", "save@1000",
           "ex@end", "rnd@end", "opt@end"});
  for (double dur : durations) {
    for (const auto& [skew_name, skew] : skews) {
      sim::WorkloadParams params;
      params.num_instances = instances;
      params.num_frames = frames;
      params.mean_duration = dur;
      params.skew_fraction = skew;
      Rng wl_rng(seed);
      auto workload = sim::MakeWorkload(params, &wl_rng);

      auto run = [&](sim::SimStrategy strategy, uint64_t base) {
        std::vector<core::Trajectory> out;
        for (int tr = 0; tr < trials; ++tr) {
          sim::SimConfig cfg;
          cfg.strategy = strategy;
          cfg.num_chunks = chunks;
          cfg.max_samples = max_samples;
          Rng rng(base + static_cast<uint64_t>(tr));
          out.push_back(sim::RunSimTrial(workload, cfg, &rng));
        }
        return out;
      };
      auto ex = run(sim::SimStrategy::kExSample, 1000);
      auto rnd = run(sim::SimStrategy::kRandom, 2000);

      // Optimal static allocation (Eq IV.1) at the sample budget.
      auto probs = sim::WorkloadChunkProbs(workload, chunks);
      auto w = optimal::OptimalWeights(probs, chunks,
                                       static_cast<double>(max_samples));
      const double opt_end = optimal::ExpectedResults(
          probs, w, static_cast<double>(max_samples));

      std::vector<std::string> row{skew_name, Table::Num(dur, 4)};
      for (int64_t target : targets) {
        double sv = sim::SavingsAtCount(ex, rnd, target);
        row.push_back(sv > 0.0 ? Table::Ratio(sv) : "-");
      }
      auto band_ex = sim::SummarizeTrials(ex, {max_samples});
      auto band_rnd = sim::SummarizeTrials(rnd, {max_samples});
      row.push_back(Table::Num(band_ex.p50[0], 4));
      row.push_back(Table::Num(band_rnd.p50[0], 4));
      row.push_back(Table::Num(opt_end, 4));
      t.AddRow(std::move(row));
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper Fig 3): savings grow with skew (left to\n"
      "right: ~1x -> tens of x) and with duration (top to bottom), ExSample\n"
      "never does significantly worse than random, and its final counts\n"
      "approach the optimal static allocation (opt@end).\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
