// Ablation: batched sampling (§III-F). On GPUs, inference throughput rises
// with batch size; the cost is that all B frames of a batch are chosen from
// the same belief state. This bench measures the statistical price (frames
// needed to reach a recall target vs batch size) and the modeled wall-clock
// under a simple batched-throughput model, showing the trade the paper's
// implementation exploits.
//
// Flags: --scale (0.08), --trials (5), --seed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/savings.h"
#include "util/flags.h"
#include "util/table.h"

namespace exsample {
namespace {

// Modeled detector throughput vs batch size: saturating GPU utilization
// (20 fps unbatched rising to ~50 fps at large batches).
double BatchedFps(int32_t batch) {
  return 50.0 / (1.0 + 1.5 / static_cast<double>(batch));
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 37));
  flags.FailOnUnknown();

  std::printf("=== Ablation: batched Thompson sampling (§III-F) ===\n");
  std::printf("scale=%.3g trials=%d\n\n", scale, trials);

  auto ds = data::MakePreset("night_street", scale, seed);
  auto class_id = ds.FindClass("person")->class_id;
  const int64_t n_instances = ds.ground_truth.NumInstances(class_id);
  const int64_t target = bench::RecallTarget(n_instances, 0.5);

  Table t({"batch", "frames to 50% recall", "rel. frames", "model fps",
           "modeled time"});
  int64_t base_frames = -1;
  for (int32_t batch : {1, 4, 16, 64, 256}) {
    std::vector<core::Trajectory> trajs;
    for (int tr = 0; tr < trials; ++tr) {
      trajs.push_back(bench::RunTrial(ds, class_id,
                                      core::Strategy::kExSample,
                                      ds.repo.total_frames(),
                                      seed * 7 + static_cast<uint64_t>(tr),
                                      batch));
    }
    int64_t frames = sim::MedianSamplesToReach(trajs, target);
    if (base_frames < 0) base_frames = frames;
    const double fps = BatchedFps(batch);
    t.AddRow({Table::Int(batch), frames < 0 ? "-" : Table::Int(frames),
              frames < 0 ? "-"
                         : Table::Num(static_cast<double>(frames) /
                                          static_cast<double>(base_frames),
                                      3),
              Table::Num(fps, 3),
              frames < 0 ? "-"
                         : Table::Duration(static_cast<double>(frames) / fps)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape: frames-to-target grows mildly with batch size\n"
      "(stale beliefs within a batch), while modeled wall-clock shrinks —\n"
      "the §III-F trade-off that makes batching worthwhile on GPUs.\n");
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
