// Distributed repository search: wall-clock scaling of the dist
// coordinator as workers are added.
//
// The coordinator's determinism contract makes this a clean measurement:
// for a fixed (seed, shard count), the pick sequence and the per-shard
// work are bit-identical at every worker count — only the hosting
// changes. Each sweep point runs the same exhaustion query (every shard
// sampled to its per-shard cap) over a LocalShardBackend with {1, 2, 4}
// simulated workers; each simulated worker is the real WorkerState code a
// remote worker runs, including the full JSON round-trip per reply, and
// the coordinator drives one dispatch thread per worker. The sweep
// therefore isolates exactly what distribution buys: concurrent
// within-shard sampling across workers.
//
// Emits BENCH_distributed.json:
//   sweep[]            per worker-count row: wall_seconds,
//                      frames_processed, results, rounds, picks,
//                      frames_per_second, results_fingerprint
//   speedup_4_vs_1     wall-clock at 1 worker over the largest sweep
//                      point (the tentpole claim: >= 1.5x at 4 workers on
//                      a >= 4-hw-thread host; CI gates on this)
//   deterministic      true iff every sweep point printed the same
//                      results fingerprint (the bench fails outright if
//                      not — a speedup over different work is no speedup)
//
// Flags: --preset (dashcam), --class (bicycle), --scale (0.5),
//        --shards (8), --max-samples (65536 per shard), --frames-per-pick
//        (2048), --picks-per-round (8), --seed (7), --workers-max (4),
//        --repeats (3; each sweep point reports its best wall-clock),
//        --out (BENCH_distributed.json), --smoke (tiny run for CI).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"

namespace exsample {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Fingerprint(const std::vector<detect::Detection>& results) {
  uint64_t h = 1469598103934665603ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  fold(results.size());
  for (const detect::Detection& d : results) {
    fold(static_cast<uint64_t>(d.frame));
    fold(static_cast<uint64_t>(d.instance));
  }
  return h;
}

std::string Hex(uint64_t v) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

struct SweepRow {
  int workers = 0;
  double wall_seconds = 0.0;
  int64_t frames_processed = 0;
  int64_t results = 0;
  int64_t rounds = 0;
  int64_t picks = 0;
  uint64_t fingerprint = 0;
};

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::string preset = flags.GetString("preset", "dashcam");
  const std::string class_name = flags.GetString("class", "bicycle");
  const double scale = flags.GetDouble("scale", smoke ? 0.05 : 0.5);
  const int64_t shards = flags.GetInt("shards", 8);
  const int64_t max_samples =
      flags.GetInt("max-samples", smoke ? 2048 : 65536);
  const int64_t frames_per_pick =
      flags.GetInt("frames-per-pick", smoke ? 512 : 2048);
  const int64_t picks_per_round = flags.GetInt("picks-per-round", 8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int64_t workers_max = flags.GetInt("workers-max", 4);
  const int64_t repeats = flags.GetInt("repeats", smoke ? 1 : 3);
  const std::string out_path =
      flags.GetString("out", "BENCH_distributed.json");
  flags.FailOnUnknown();
  if (scale <= 0.0 || scale > 1.0 || shards < 1 || max_samples < 1 ||
      frames_per_pick < 1 || picks_per_round < 1 || workers_max < 1 ||
      repeats < 1) {
    std::fprintf(stderr,
                 "error: need --scale in (0, 1], --shards >= 1, "
                 "--max-samples >= 1, --frames-per-pick >= 1, "
                 "--picks-per-round >= 1, --workers-max >= 1, "
                 "--repeats >= 1\n");
    return 2;
  }

  const size_t hw = std::thread::hardware_concurrency() > 0
                        ? std::thread::hardware_concurrency()
                        : 1;
  std::printf("=== distributed search: %s/%s @ %.3g, %lld shards x %lld "
              "samples per shard (%zu cores) ===\n\n",
              preset.c_str(), class_name.c_str(), scale,
              static_cast<long long>(shards),
              static_cast<long long>(max_samples), hw);

  auto run_point = [&](int workers, SweepRow* row) {
    dist::LocalShardBackend::Options local;
    local.num_workers = workers;
    local.seed = seed;
    local.default_scale = scale;
    dist::LocalShardBackend backend(local);

    dist::CoordinatorOptions options;
    options.shard.preset = preset;
    options.shard.class_name = class_name;
    options.shard.scale = scale;
    options.shard.max_samples = max_samples;
    options.num_shards = static_cast<int32_t>(shards);
    options.seed = seed;
    options.frames_per_pick = frames_per_pick;
    options.picks_per_round = static_cast<int32_t>(picks_per_round);
    dist::Coordinator coordinator(&backend, options);

    const double start = Now();
    auto run = coordinator.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "error: %d-worker run failed: %s\n", workers,
                   run.status().ToString().c_str());
      return false;
    }
    row->workers = workers;
    row->wall_seconds = Now() - start;
    row->frames_processed = run.value().frames_processed;
    row->results = static_cast<int64_t>(run.value().results.size());
    row->rounds = run.value().rounds;
    row->picks = run.value().picks;
    row->fingerprint = Fingerprint(run.value().results);
    if (run.value().stop_reason != "exhausted") {
      std::fprintf(stderr, "error: expected exhaustion, stopped on %s\n",
                   run.value().stop_reason.c_str());
      return false;
    }
    return true;
  };

  // Warm the dataset outside the timed region: a throwaway 1-worker run
  // charges dataset generation once, so sweep points measure sampling.
  {
    SweepRow warmup;
    if (!run_point(1, &warmup)) return 1;
  }

  std::vector<int> worker_counts{1};
  if (workers_max >= 2) worker_counts.push_back(2);
  if (workers_max >= 4) worker_counts.push_back(static_cast<int>(workers_max));

  Table table({"workers", "wall s", "frames", "results", "rounds",
               "frames/s"});
  std::vector<SweepRow> rows;
  for (int workers : worker_counts) {
    // Best-of-N: the sweep points are short enough that a scheduler hiccup
    // would dominate a single run; the minimum is the honest capacity
    // number, and every repeat must reproduce the same fingerprint.
    SweepRow row;
    if (!run_point(workers, &row)) return 1;
    for (int64_t r = 1; r < repeats; ++r) {
      SweepRow again;
      if (!run_point(workers, &again)) return 1;
      if (again.fingerprint != row.fingerprint) {
        std::fprintf(stderr,
                     "error: repeat %lld at %d workers changed the results "
                     "fingerprint\n",
                     static_cast<long long>(r), workers);
        return 1;
      }
      if (again.wall_seconds < row.wall_seconds) row = again;
    }
    rows.push_back(row);
    table.AddRow({Table::Int(workers), Table::Num(row.wall_seconds, 4),
                  Table::Int(row.frames_processed), Table::Int(row.results),
                  Table::Int(row.rounds),
                  Table::Num(row.wall_seconds > 0
                                 ? static_cast<double>(row.frames_processed) /
                                       row.wall_seconds
                                 : 0.0,
                             1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // A speedup over different work is no speedup: every point must have
  // produced the identical result stream.
  bool deterministic = true;
  for (const SweepRow& row : rows) {
    if (row.fingerprint != rows.front().fingerprint) deterministic = false;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "error: result fingerprints diverged across worker "
                 "counts — the determinism contract is broken\n");
  }

  const SweepRow& first = rows.front();
  const SweepRow& last = rows.back();
  const double speedup =
      last.wall_seconds > 0 ? first.wall_seconds / last.wall_seconds : 0.0;
  std::printf("wall-clock at %d workers vs 1: %s%s\n", last.workers,
              Table::Ratio(speedup).c_str(),
              hw < 4 ? " (needs a >= 4-hw-thread host to show)" : "");

  Json doc = Json::Object();
  doc.Set("bench", "distributed")
      .Set("preset", preset)
      .Set("class", class_name)
      .Set("scale", scale)
      .Set("shards", shards)
      .Set("max_samples_per_shard", max_samples)
      .Set("frames_per_pick", frames_per_pick)
      .Set("picks_per_round", picks_per_round)
      .Set("hardware_threads", static_cast<int64_t>(hw))
      .Set("smoke", smoke)
      .Set("deterministic", deterministic);
  Json sweep = Json::Array();
  for (const SweepRow& row : rows) {
    sweep.Append(Json::Object()
                     .Set("workers", static_cast<int64_t>(row.workers))
                     .Set("wall_seconds", row.wall_seconds)
                     .Set("frames_processed", row.frames_processed)
                     .Set("results", row.results)
                     .Set("rounds", row.rounds)
                     .Set("picks", row.picks)
                     .Set("frames_per_second",
                          row.wall_seconds > 0
                              ? static_cast<double>(row.frames_processed) /
                                    row.wall_seconds
                              : 0.0)
                     .Set("results_fingerprint", Hex(row.fingerprint)));
  }
  doc.Set("sweep", std::move(sweep))
      .Set("wall_seconds_1", first.wall_seconds)
      .Set("wall_seconds_max", last.wall_seconds)
      .Set("speedup_4_vs_1", speedup);

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
