#include "util/distributions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace exsample {

double SampleStandardNormal(Rng* rng) {
  // Polar Box-Muller; we discard the second variate to keep the sampler
  // stateless (simplifies Fork()-based parallelism).
  for (;;) {
    double u = 2.0 * rng->NextDouble() - 1.0;
    double v = 2.0 * rng->NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleNormal(Rng* rng, double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * SampleStandardNormal(rng);
}

double SampleLogNormal(Rng* rng, double mu_log, double sigma_log) {
  return std::exp(SampleNormal(rng, mu_log, sigma_log));
}

double SampleExponential(Rng* rng, double rate) {
  assert(rate > 0.0);
  // 1 - U avoids log(0).
  return -std::log(1.0 - rng->NextDouble()) / rate;
}

namespace {

// Marsaglia-Tsang for shape >= 1, unit rate.
double SampleGammaShapeGe1(Rng* rng, double alpha) {
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = SampleStandardNormal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double SampleGamma(Rng* rng, double alpha, double beta) {
  assert(alpha > 0.0 && beta > 0.0);
  if (alpha < 1.0) {
    // Boost: Gamma(a) ~ Gamma(a+1) * U^{1/a}.
    double u;
    do {
      u = rng->NextDouble();
    } while (u == 0.0);
    return SampleGammaShapeGe1(rng, alpha + 1.0) * std::pow(u, 1.0 / alpha) /
           beta;
  }
  return SampleGammaShapeGe1(rng, alpha) / beta;
}

double SampleBeta(Rng* rng, double a, double b) {
  double x = SampleGamma(rng, a, 1.0);
  double y = SampleGamma(rng, b, 1.0);
  return x / (x + y);
}

int64_t SamplePoisson(Rng* rng, double lambda) {
  assert(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng->NextDouble();
    } while (p > l);
    return k - 1;
  }
  // PTRS (Hormann 1993) transformed rejection for large lambda.
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = rng->NextDouble() - 0.5;
    double v = rng->NextDouble();
    double us = 0.5 - std::fabs(u);
    int64_t k = static_cast<int64_t>(
        std::floor((2.0 * a / us + b) * u + lambda + 0.43));
    if (us >= 0.07 && v <= v_r) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        static_cast<double>(k) * std::log(lambda) - lambda -
            LogGamma(static_cast<double>(k) + 1.0)) {
      return k;
    }
  }
}

int64_t SampleBinomial(Rng* rng, int64_t n, double p) {
  assert(n >= 0 && p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);
  const double np = static_cast<double>(n) * p;
  if (np < 30.0) {
    // Inversion by sequential search on the CDF.
    const double q = 1.0 - p;
    const double s = p / q;
    double f = std::pow(q, static_cast<double>(n));
    double u = rng->NextDouble();
    int64_t k = 0;
    double cum = f;
    while (u > cum && k < n) {
      ++k;
      f *= s * static_cast<double>(n - k + 1) / static_cast<double>(k);
      cum += f;
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload-generation uses in this library (np >= 30).
  const double mean = np;
  const double sd = std::sqrt(np * (1.0 - p));
  double x = std::floor(SampleNormal(rng, mean, sd) + 0.5);
  if (x < 0.0) x = 0.0;
  if (x > static_cast<double>(n)) x = static_cast<double>(n);
  return static_cast<int64_t>(x);
}

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, so concurrent calls
  // from scheduler worker threads are a data race. The reentrant variant
  // reports the sign through an out-parameter instead.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// Series expansion of P(a,x), valid (fast-converging) for x < a + 1.
double GammaPSeries(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 1000; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction evaluation of Q(a,x) = 1 - P(a,x), for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaPdf(double x, double alpha, double beta) {
  assert(alpha > 0.0 && beta > 0.0);
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (alpha < 1.0) return std::numeric_limits<double>::infinity();
    return alpha == 1.0 ? beta : 0.0;
  }
  return std::exp(alpha * std::log(beta) + (alpha - 1.0) * std::log(x) -
                  beta * x - LogGamma(alpha));
}

double GammaCdf(double x, double alpha, double beta) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(alpha, beta * x);
}

double GammaQuantile(double q, double alpha, double beta) {
  assert(q > 0.0 && q < 1.0);
  // Bracket: mean + k stddev always covers practical quantiles; expand if not.
  double lo = 0.0;
  double hi = (alpha + 10.0 * std::sqrt(alpha) + 10.0) / beta;
  while (GammaCdf(hi, alpha, beta) < q) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (GammaCdf(mid, alpha, beta) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double NormalQuantile(double q) {
  assert(q > 0.0 && q < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (q < plow) {
    double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= 1.0 - plow) {
    double u = q - 0.5;
    double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
          c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  return x;
}

double GammaQuantileFast(double q, double alpha, double beta) {
  assert(q > 0.0 && q < 1.0);
  // Bracketed Newton iteration in log space on the unit-rate CDF, seeded by
  // the Wilson-Hilferty normal approximation (large alpha) or the leading
  // series term P(a,x) ~ x^a / Gamma(a+1) (small alpha). Log-space steps
  // handle quantiles spanning many orders of magnitude (alpha << 1), and
  // the bracket guarantees convergence; typically 3-6 CDF evaluations vs
  // ~200 for plain bisection.
  double y;  // log of the current iterate
  if (alpha >= 0.5) {
    const double z = NormalQuantile(q);
    const double s = 1.0 / (9.0 * alpha);
    double cube = 1.0 - s + z * std::sqrt(s);
    if (cube < 1e-8) cube = 1e-8;
    y = std::log(alpha) + 3.0 * std::log(cube);
  } else {
    y = (std::log(q) + LogGamma(alpha + 1.0)) / alpha;
  }
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 60; ++iter) {
    const double x = std::exp(y);
    const double f = RegularizedGammaP(alpha, x) - q;
    if (f > 0.0) {
      hi = y;
    } else {
      lo = y;
    }
    // d/dy P(a, e^y) = pdf(e^y) * e^y = exp(a y - e^y - lgamma(a)).
    const double dlog = alpha * y - x - LogGamma(alpha);
    double ny;
    if (dlog < -700.0) {
      ny = std::numeric_limits<double>::quiet_NaN();  // force bisection
    } else {
      const double step = f / std::exp(dlog);
      ny = y - step;
      if (std::abs(step) < 1e-13 * std::max(1.0, std::abs(y))) {
        y = std::isfinite(ny) ? ny : y;
        break;
      }
      // A log-space jump beyond e^8 means the local derivative badly
      // mis-extrapolates (deep tail); fall back to bracket handling.
      if (std::abs(step) > 8.0) {
        ny = std::numeric_limits<double>::quiet_NaN();
      }
    }
    if (!std::isfinite(ny) || ny <= lo || ny >= hi) {
      // Bisect within the bracket; expand when one side is still open.
      if (std::isfinite(lo) && std::isfinite(hi)) {
        ny = 0.5 * (lo + hi);
      } else if (std::isfinite(lo)) {
        ny = lo + 1.0;
      } else {
        ny = hi - 1.0;
      }
    }
    if (ny == y) break;
    y = ny;
  }
  return std::exp(y) / beta;
}

double PoissonPmf(int64_t k, double lambda) {
  if (k < 0) return 0.0;
  if (lambda == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(static_cast<double>(k) * std::log(lambda) - lambda -
                  LogGamma(static_cast<double>(k) + 1.0));
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace exsample
