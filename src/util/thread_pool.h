// Fixed-size worker pool used to parallelize independent experiment trials
// (each trial gets a forked RNG, so results are deterministic regardless of
// scheduling).

#ifndef EXSAMPLE_UTIL_THREAD_POOL_H_
#define EXSAMPLE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace exsample {

/// Simple FIFO thread pool. Submit() enqueues work; Wait() blocks until all
/// submitted work has drained. The destructor joins workers.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  static void ParallelFor(size_t n, size_t threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_THREAD_POOL_H_
