#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace exsample {

void RunningStat::Add(double x) {
  if (!std::isfinite(x)) {
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  rejected_ += other.rejected_;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    int64_t rejected = rejected_;
    *this = other;
    rejected_ = rejected;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  assert(q >= 0.0 && q <= 1.0);
  // NaN has no rank (it breaks the sort's strict weak ordering) and a
  // single +/-inf would bleed into every interpolated quantile near the
  // edges: drop non-finite entries before ranking.
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return !std::isfinite(v); }),
               values.end());
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t idx = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= values.size()) return values.back();
  return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  int64_t used = 0;
  for (double v : values) {
    if (!std::isfinite(v) || v <= 0.0) continue;  // log undefined / infinite
    log_sum += std::log(v);
    ++used;
  }
  if (used == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(used));
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  if (std::isnan(x)) {
    ++rejected_;
    return;
  }
  size_t bin;
  if (x <= lo_) {
    bin = 0;  // includes -inf: saturate like any other out-of-range value
  } else if (x >= hi_) {
    bin = counts_.size() - 1;  // includes +inf
  } else {
    double pos = (x - lo_) / width_;
    int64_t b = static_cast<int64_t>(std::floor(pos));
    if (b < 0) b = 0;
    if (b >= static_cast<int64_t>(counts_.size())) {
      b = static_cast<int64_t>(counts_.size()) - 1;
    }
    bin = static_cast<size_t>(b);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::BinCenter(size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::Density(size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::ToAscii(size_t max_width) const {
  int64_t peak = 0;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    size_t bar = peak == 0 ? 0
                           : static_cast<size_t>(
                                 static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    out << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.4g", BinCenter(b));
    out << buf << " |" << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace exsample
