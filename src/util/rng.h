// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed); there is no global RNG state. This keeps experiments reproducible
// and lets tests pin exact sequences.

#ifndef EXSAMPLE_UTIL_RNG_H_
#define EXSAMPLE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace exsample {

/// SplitMix64 generator. Used to expand a single 64-bit seed into the
/// larger state of Xoshiro256++, and occasionally as a cheap standalone
/// generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++ PRNG (Blackman & Vigna). Fast, high quality, 256-bit state.
///
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, though the library's own samplers in
/// distributions.h are preferred (they are deterministic across platforms,
/// unlike libstdc++ distributions).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// UniformRandomBitGenerator interface.
  result_type operator()() { return Next(); }

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns an integer uniformly distributed in [0, bound). bound must be
  /// positive. Uses Lemire's nearly-divisionless rejection method, so the
  /// result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator. Useful for handing separate
  /// streams to parallel trials without correlated sequences.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_RNG_H_
