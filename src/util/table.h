// Aligned-column text tables and CSV emission for bench output.
//
// Every bench binary prints paper-style tables through this utility so that
// the output format is uniform and greppable; a CSV dump mode supports
// downstream plotting.

#ifndef EXSAMPLE_UTIL_TABLE_H_
#define EXSAMPLE_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace exsample {

/// Column-aligned table builder. Collects rows of strings, then renders with
/// per-column width alignment. Numeric helpers format consistently.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned table, headers underlined with dashes.
  std::string ToString() const;

  /// Renders as CSV (RFC-4180-ish: cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant digits.
  static std::string Num(double v, int digits = 4);
  /// Formats an integer.
  static std::string Int(int64_t v);
  /// Formats a duration in seconds as "1h2m", "3m4s", "5.0s" like the
  /// paper's Table I.
  static std::string Duration(double seconds);
  /// Formats a ratio as e.g. "3.7x".
  static std::string Ratio(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_TABLE_H_
