#include "util/rng.h"

namespace exsample {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace exsample
