// Lightweight error propagation without exceptions across public APIs,
// following the Arrow/RocksDB convention of Status returns.

#ifndef EXSAMPLE_UTIL_STATUS_H_
#define EXSAMPLE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace exsample {

/// Outcome of a fallible operation: OK or an error code + message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kNotFound,
    kFailedPrecondition,
    kDeadlineExceeded,
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// A peer or dependency that may come back: connection refused, reset, or
  /// closed mid-exchange. Distinct from kDeadlineExceeded so retry policies
  /// can treat "the peer is gone" differently from "the peer is slow".
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-error. Access to value() asserts ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_STATUS_H_
