#include "util/json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace exsample {

Json& Json::Set(const std::string& key, Json value) {
  assert(type_ == Type::kObject);
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            const std::string& def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : def;
}

int64_t Json::GetInt(const std::string& key, int64_t def) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsInt(def) : def;
}

double Json::GetDouble(const std::string& key, double def) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsDouble(def) : def;
}

bool Json::GetBool(const std::string& key, bool def) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsBool(def) : def;
}

Json& Json::Append(Json value) {
  assert(type_ == Type::kArray);
  items_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

bool Json::AsBool(bool def) const {
  return type_ == Type::kBool ? bool_ : def;
}

int64_t Json::AsInt(int64_t def) const {
  if (type_ != Type::kNumber) return def;
  if (int_repr_) return int_;
  return static_cast<int64_t>(std::llround(num_));
}

double Json::AsDouble(double def) const {
  if (type_ != Type::kNumber) return def;
  return int_repr_ ? static_cast<double>(int_) : num_;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Shortest decimal that round-trips: try increasing precision. JSON has no
// Inf/NaN; those serialize as null.
void NumberInto(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  *out += buf;
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (int_repr_) {
        *out += std::to_string(int_);
      } else {
        NumberInto(num_, out);
      }
      break;
    case Type::kString:
      EscapeInto(str_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        EscapeInto(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over the input string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t len = 0;
    while (w[len] != '\0') ++len;
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    if (ConsumeWord("true")) {
      *out = Json(true);
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = Json(false);
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = Json();
      return Status::Ok();
    }
    return Error("unexpected character");
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      Json key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Json value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(key.AsString(), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(Json* out) {
    ++pos_;  // '"'
    std::string result;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        *out = Json(std::move(result));
        return Status::Ok();
      }
      if (c != '\\') {
        // RFC 8259: control characters (including NUL bytes smuggled into
        // the input) must be escaped, never raw.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          return Error("raw control character in string");
        }
        result.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          result.push_back('"');
          break;
        case '\\':
          result.push_back('\\');
          break;
        case '/':
          result.push_back('/');
          break;
        case 'n':
          result.push_back('\n');
          break;
        case 'r':
          result.push_back('\r');
          break;
        case 't':
          result.push_back('\t');
          break;
        case 'b':
          result.push_back('\b');
          break;
        case 'f':
          result.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through unpaired — protocol strings are class/preset names).
          if (cp < 0x80) {
            result.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            result.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            result.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            result.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            result.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            result.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("malformed number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        *out = Json(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    // Overflowing doubles (1e999, ...) would silently become inf and then
    // re-serialize as null; reject them instead.
    if (!std::isfinite(v)) return Error("number out of range");
    *out = Json(v);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace exsample
