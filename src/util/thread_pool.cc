#include "util/thread_pool.h"

namespace exsample {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ThreadPool pool(threads);
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace exsample
