#include "util/table.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace exsample {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << CsvEscape(row[c]);
      if (c + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string Table::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::Duration(double seconds) {
  char buf[64];
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
  }
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  if (h > 0) {
    if (m > 0) {
      std::snprintf(buf, sizeof(buf), "%lldh%lldm", static_cast<long long>(h),
                    static_cast<long long>(m));
    } else {
      std::snprintf(buf, sizeof(buf), "%lldh", static_cast<long long>(h));
    }
    return buf;
  }
  if (s > 0) {
    std::snprintf(buf, sizeof(buf), "%lldm%llds", static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldm", static_cast<long long>(m));
  }
  return buf;
}

std::string Table::Ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2gx", v);
  return buf;
}

}  // namespace exsample
