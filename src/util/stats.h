// Streaming and batch summary statistics used across the evaluation harness:
// Welford running moments, percentiles, fixed-bin histograms and geometric
// means (the paper reports geometric-mean savings across queries).

#ifndef EXSAMPLE_UTIL_STATS_H_
#define EXSAMPLE_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace exsample {

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// Non-finite observations (NaN, +/-inf) are rejected rather than folded
/// in — one NaN would otherwise poison mean/m2 permanently. Rejections are
/// counted (see rejected()) so callers can notice a polluted input stream.
class RunningStat {
 public:
  /// Adds one observation. Non-finite values are dropped and counted.
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  /// Observations dropped for being NaN or infinite.
  int64_t rejected() const { return rejected_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  int64_t rejected_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of values using linear interpolation
/// between order statistics. Copies and sorts internally; values may be
/// unsorted. Non-finite values are dropped before ranking (a NaN would
/// break the sort's ordering outright). Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

/// Geometric mean of the strictly positive, finite values; non-positive or
/// non-finite entries are skipped. Returns 0 when nothing qualifies.
double GeometricMean(const std::vector<double>& values);

/// Fixed-width-bin histogram over [lo, hi); out-of-range finite values (and
/// +/-inf) saturate into the first/last bin, NaN is rejected and counted.
/// Used to reproduce the Figure 2 conditional histograms and the Figure 6
/// chunk-abundance plots.
class Histogram {
 public:
  /// Creates a histogram with `bins` equal bins spanning [lo, hi).
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int64_t total() const { return total_; }
  /// Observations dropped for being NaN.
  int64_t rejected() const { return rejected_; }
  int64_t count(size_t bin) const { return counts_[bin]; }
  /// Midpoint of the given bin.
  double BinCenter(size_t bin) const;
  /// Fraction of mass in the bin, normalized by bin width (a density, so it
  /// is directly comparable to a pdf curve).
  double Density(size_t bin) const;

  /// Renders a compact ASCII bar chart (one line per bin), for bench output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_STATS_H_
