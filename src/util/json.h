// Minimal JSON value tree: construction + compact serialization for the
// machine-readable tool outputs (exsample_query --json, exsample_serve,
// BENCH_*.json) and a small recursive-descent parser for the serve tool's
// newline-delimited command protocol.
//
// Scope is deliberately narrow — flat-ish documents of objects, arrays,
// strings, numbers and bools. Object keys keep insertion order so emitted
// documents are deterministic and diffable. Integers up to int64 round-trip
// exactly (they are stored separately from doubles; 64-bit seeds survive).

#ifndef EXSAMPLE_UTIL_JSON_H_
#define EXSAMPLE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace exsample {

/// One JSON value (null, bool, number, string, array or object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Insertion-ordered key/value storage (objects are small; lookups scan).
  using Member = std::pair<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(int v) : Json(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Json(int64_t v)                                 // NOLINT(runtime/explicit)
      : type_(Type::kNumber), int_(v), num_(static_cast<double>(v)),
        int_repr_(true) {}
  Json(uint64_t v)  // NOLINT(runtime/explicit)
      : Json(static_cast<int64_t>(v)) {}
  Json(double v)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), num_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s)                                     // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  // --- object access. Set replaces an existing key; returns *this so
  // building a response reads as a chain.
  Json& Set(const std::string& key, Json value);
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  /// The value at `key`, or nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  /// Typed getters with defaults, tolerant of missing keys / wrong types.
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  const std::vector<Member>& members() const { return members_; }

  // --- array access
  Json& Append(Json value);
  size_t size() const;
  const std::vector<Json>& items() const { return items_; }

  // --- scalar extraction (returns the default on type mismatch)
  bool AsBool(bool def = false) const;
  int64_t AsInt(int64_t def = 0) const;
  double AsDouble(double def = 0.0) const;
  const std::string& AsString() const { return str_; }

  /// Compact single-line serialization (the NDJSON protocol format).
  std::string Dump() const;

  /// Parses one JSON document (trailing whitespace allowed, anything else
  /// after the value is an error).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double num_ = 0.0;
  /// True when constructed from an integer: Dump emits int_ digits exactly.
  bool int_repr_ = false;
  std::string str_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_JSON_H_
