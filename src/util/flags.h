// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment parameters are caught loudly.

#ifndef EXSAMPLE_UTIL_FLAGS_H_
#define EXSAMPLE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exsample {

/// Parsed flag set. Construct with Parse(), then read typed values with
/// defaults. Every Get* registers the flag as known; call
/// FailOnUnknown() after all Get* calls to reject typos.
class Flags {
 public:
  /// Parses argv. On malformed input prints to stderr and exits(2).
  static Flags Parse(int argc, char** argv);

  /// Returns the flag value as int64 or `def` when absent.
  int64_t GetInt(const std::string& name, int64_t def);
  /// Returns the flag value as double or `def` when absent.
  double GetDouble(const std::string& name, double def);
  /// Returns the flag value as string or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def);
  /// Returns true if the boolean flag is present (or =true/=1).
  bool GetBool(const std::string& name, bool def = false);

  /// True when the flag was supplied on the command line (regardless of
  /// type). Lets tools distinguish "defaulted" from "explicitly set" when
  /// validating (e.g. an explicit --budget-seconds 0 is an error, the
  /// default 0 means unlimited). Does not register the flag as known.
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Exits(2) listing any flags supplied on the command line that were never
  /// requested by a Get* call.
  void FailOnUnknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> known_;
};

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_FLAGS_H_
