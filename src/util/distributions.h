// Platform-deterministic samplers and density/distribution functions.
//
// ExSample's belief model (Eq III.4 of the paper) is a Gamma distribution;
// synthetic workloads use lognormal instance durations and normal placement.
// libstdc++'s <random> distributions are not guaranteed to produce identical
// streams across platforms/releases, so we implement the samplers ourselves
// on top of exsample::Rng.

#ifndef EXSAMPLE_UTIL_DISTRIBUTIONS_H_
#define EXSAMPLE_UTIL_DISTRIBUTIONS_H_

#include <cstdint>

#include "util/rng.h"

namespace exsample {

/// Samples a standard normal via the polar Box-Muller method.
double SampleStandardNormal(Rng* rng);

/// Samples Normal(mean, stddev). stddev must be >= 0.
double SampleNormal(Rng* rng, double mean, double stddev);

/// Samples LogNormal: exp(Normal(mu_log, sigma_log)).
double SampleLogNormal(Rng* rng, double mu_log, double sigma_log);

/// Samples Exponential with the given rate (lambda > 0).
double SampleExponential(Rng* rng, double rate);

/// Samples Gamma(shape alpha > 0, rate beta > 0); mean = alpha/beta.
///
/// Uses Marsaglia-Tsang squeeze for alpha >= 1 and the boosting identity
/// Gamma(a) = Gamma(a+1) * U^(1/a) for alpha < 1. This is the sampler behind
/// Thompson sampling of the per-chunk belief Gamma(N1 + alpha0, n + beta0).
double SampleGamma(Rng* rng, double alpha, double beta);

/// Samples Beta(a, b) via two Gamma draws.
double SampleBeta(Rng* rng, double a, double b);

/// Samples Poisson(lambda >= 0). Uses Knuth's method for small lambda and
/// the PTRS transformed-rejection method for large lambda.
int64_t SamplePoisson(Rng* rng, double lambda);

/// Samples Binomial(n, p) by inversion for small n*p, otherwise by
/// normal approximation with continuity correction clamped to [0, n].
int64_t SampleBinomial(Rng* rng, int64_t n, double p);

/// Natural log of the Gamma function (wraps std::lgamma; re-exported so all
/// probability math funnels through one header).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Series expansion for x < a+1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// Gamma(alpha, rate beta) probability density at x (0 for x < 0).
double GammaPdf(double x, double alpha, double beta);

/// Gamma(alpha, rate beta) CDF at x.
double GammaCdf(double x, double alpha, double beta);

/// Quantile (inverse CDF) of Gamma(alpha, rate beta) at probability q in
/// (0,1), via bisection on GammaCdf. Accurate to ~1e-10 relative. Used by
/// the Bayes-UCB policy, which scores chunks by an upper belief quantile.
double GammaQuantile(double q, double alpha, double beta);

/// Fast approximate Gamma quantile via the Wilson-Hilferty cube-root
/// transform (relative error < ~1% for alpha >= 0.5); falls back to the
/// exact bisection for small alpha where the approximation degrades.
/// ~100x faster than GammaQuantile — used by Bayes-UCB, whose per-sample
/// cost is otherwise dominated by quantile bisection.
double GammaQuantileFast(double q, double alpha, double beta);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9).
double NormalQuantile(double q);

/// Poisson(lambda) probability mass at k.
double PoissonPmf(int64_t k, double lambda);

/// Standard normal CDF.
double NormalCdf(double x);

}  // namespace exsample

#endif  // EXSAMPLE_UTIL_DISTRIBUTIONS_H_
