#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace exsample {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) {
  known_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) {
  known_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name, const std::string& def) {
  known_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) {
  known_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

void Flags::FailOnUnknown() const {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!known_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace exsample
