// Optimal static chunk weighting (Eq IV.1 of the paper): the offline oracle
// that, knowing every instance's per-chunk occurrence probability p_ij,
// chooses sampling weights w over chunks maximizing the expected number of
// distinct results after n samples,
//
//     maximize_w  sum_i  1 - (1 - p_i . w)^n     s.t. w in the simplex.
//
// The objective is concave in w (composition of the concave increasing
// 1-(1-x)^n with a linear map), so projected gradient ascent converges to
// the global optimum; the paper solves the same program with CVXPY.
// Not a practical execution strategy — used as the upper-bound benchmark in
// Figures 3 and 4.

#ifndef EXSAMPLE_OPTIMAL_WEIGHTS_H_
#define EXSAMPLE_OPTIMAL_WEIGHTS_H_

#include <cstdint>
#include <vector>

namespace exsample {
namespace optimal {

/// Sparse per-instance chunk probabilities: (chunk, p_ij) pairs.
using SparseProbs = std::vector<std::pair<int32_t, double>>;

/// Expected distinct results after n weighted samples:
/// sum_i 1 - (1 - p_i . w)^n.
double ExpectedResults(const std::vector<SparseProbs>& instances,
                       const std::vector<double>& weights, double n);

/// Solver options.
struct SolverOptions {
  int32_t max_iterations = 500;
  /// Initial gradient step (scaled by iteration via backtracking).
  double step = 1.0;
  /// Convergence threshold on objective improvement.
  double tolerance = 1e-9;
};

/// Solves Eq IV.1 for a fixed sample budget n. Returns the optimal weight
/// vector over `num_chunks` chunks.
std::vector<double> OptimalWeights(const std::vector<SparseProbs>& instances,
                                   int32_t num_chunks, double n,
                                   SolverOptions options = {});

/// Projects v onto the probability simplex (Duchi et al. 2008); exposed for
/// testing.
std::vector<double> ProjectToSimplex(std::vector<double> v);

/// Expected-results curve for uniform random sampling over the whole
/// dataset: p_i = duration_i / total_frames aggregated over chunks of equal
/// weight proportional to chunk size.
double ExpectedResultsUniform(const std::vector<SparseProbs>& instances,
                              const std::vector<int64_t>& chunk_sizes,
                              double n);

}  // namespace optimal
}  // namespace exsample

#endif  // EXSAMPLE_OPTIMAL_WEIGHTS_H_
