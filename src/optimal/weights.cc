#include "optimal/weights.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace exsample {
namespace optimal {
namespace {

double Dot(const SparseProbs& probs, const std::vector<double>& w) {
  double dot = 0.0;
  for (const auto& [j, p] : probs) {
    dot += p * w[static_cast<size_t>(j)];
  }
  return dot;
}

}  // namespace

double ExpectedResults(const std::vector<SparseProbs>& instances,
                       const std::vector<double>& weights, double n) {
  assert(n >= 0.0);
  double total = 0.0;
  for (const auto& inst : instances) {
    double q = Dot(inst, weights);
    if (q <= 0.0) continue;
    if (q >= 1.0) {
      total += 1.0;
      continue;
    }
    total += 1.0 - std::exp(n * std::log1p(-q));
  }
  return total;
}

std::vector<double> ProjectToSimplex(std::vector<double> v) {
  // Duchi et al. (2008): sort, find the threshold rho, shift and clip.
  const size_t d = v.size();
  assert(d > 0);
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double theta = 0.0;
  size_t rho = 0;
  for (size_t i = 0; i < d; ++i) {
    cumsum += u[i];
    double t = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = i + 1;
      theta = t;
    }
  }
  (void)rho;
  for (auto& x : v) x = std::max(0.0, x - theta);
  return v;
}

std::vector<double> OptimalWeights(const std::vector<SparseProbs>& instances,
                                   int32_t num_chunks, double n,
                                   SolverOptions options) {
  assert(num_chunks > 0);
  std::vector<double> w(static_cast<size_t>(num_chunks),
                        1.0 / static_cast<double>(num_chunks));
  double best = ExpectedResults(instances, w, n);
  double step = options.step;
  std::vector<double> grad(w.size());

  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient: d/dw_j = sum_i n (1 - p_i.w)^{n-1} p_ij.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (const auto& inst : instances) {
      double q = Dot(inst, w);
      if (q >= 1.0) continue;
      double factor = n * std::exp((n - 1.0) * std::log1p(-q));
      for (const auto& [j, p] : inst) {
        grad[static_cast<size_t>(j)] += factor * p;
      }
    }
    // Normalize the gradient so the step size is scale-free.
    double gnorm = 0.0;
    for (double g : grad) gnorm += g * g;
    gnorm = std::sqrt(gnorm);
    if (gnorm < 1e-300) break;

    // Backtracking line search on the projected step.
    bool improved = false;
    while (step > 1e-12) {
      std::vector<double> cand(w.size());
      for (size_t j = 0; j < w.size(); ++j) {
        cand[j] = w[j] + step * grad[j] / gnorm;
      }
      cand = ProjectToSimplex(std::move(cand));
      double val = ExpectedResults(instances, cand, n);
      if (val > best + options.tolerance) {
        w = std::move(cand);
        best = val;
        improved = true;
        step *= 1.3;  // expand on success
        break;
      }
      step *= 0.5;
    }
    if (!improved) break;
  }
  return w;
}

double ExpectedResultsUniform(const std::vector<SparseProbs>& instances,
                              const std::vector<int64_t>& chunk_sizes,
                              double n) {
  int64_t total_frames = 0;
  for (int64_t s : chunk_sizes) total_frames += s;
  assert(total_frames > 0);
  std::vector<double> w(chunk_sizes.size());
  for (size_t j = 0; j < chunk_sizes.size(); ++j) {
    w[j] = static_cast<double>(chunk_sizes[j]) /
           static_cast<double>(total_frames);
  }
  return ExpectedResults(instances, w, n);
}

}  // namespace optimal
}  // namespace exsample
