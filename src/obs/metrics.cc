#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace exsample {
namespace obs {

int64_t Counter::Total() const {
  int64_t total = 0;
  for (const MetricCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Gauge::Total() const {
  int64_t total = 0;
  for (const MetricCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

LatencyHistogram::LatencyHistogram(size_t cells)
    : num_cells_(cells > 0 ? cells : 1), cells_(num_cells_) {}

void LatencyHistogram::Observe(double seconds, size_t cell) {
  if (!std::isfinite(seconds) || seconds < 0.0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Bucket = position of the highest set bit of ceil(microseconds): every
  // observation <= 2^b us lands in bucket b, overflow in the last bucket.
  const double micros = seconds * 1e6;
  size_t bucket = 0;
  if (micros > 1.0) {
    const uint64_t us = static_cast<uint64_t>(std::ceil(micros));
    bucket = static_cast<size_t>(64 - __builtin_clzll(us - 1));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  Cell& c = cells_[cell % num_cells_];
  c.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

int64_t LatencyHistogram::TotalCount() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::TotalSumSeconds() const {
  int64_t nanos = 0;
  for (const Cell& cell : cells_) {
    nanos += cell.sum_nanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) * 1e-9;
}

std::vector<int64_t> LatencyHistogram::BucketTotals() const {
  std::vector<int64_t> totals(kBuckets, 0);
  for (const Cell& cell : cells_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      totals[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

double LatencyHistogram::BucketUpperSeconds(size_t bucket) {
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  // Bucket b: <= 2^b microseconds. The +inf bucket reports the largest
  // finite bound so JSON output stays a number.
  return std::ldexp(1e-6, static_cast<int>(bucket));
}

double LatencyHistogram::ApproxQuantile(double q) const {
  const std::vector<int64_t> totals = BucketTotals();
  int64_t count = 0;
  for (int64_t c : totals) count += c;
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += totals[b];
    if (static_cast<double>(cumulative) >= target && totals[b] > 0) {
      return BucketUpperSeconds(b);
    }
  }
  return BucketUpperSeconds(kBuckets - 1);
}

Registry::Family* Registry::FindLocked(const std::string& name) {
  for (const auto& family : families_) {
    if (family->name == name) return family.get();
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name, size_t cells) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Family* existing = FindLocked(name)) {
    return existing->kind == Kind::kCounter ? existing->counter.get()
                                            : nullptr;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->kind = Kind::kCounter;
  family->counter = std::make_unique<Counter>(cells);
  Counter* out = family->counter.get();
  families_.push_back(std::move(family));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name, size_t cells) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Family* existing = FindLocked(name)) {
    return existing->kind == Kind::kGauge ? existing->gauge.get() : nullptr;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->kind = Kind::kGauge;
  family->gauge = std::make_unique<Gauge>(cells);
  Gauge* out = family->gauge.get();
  families_.push_back(std::move(family));
  return out;
}

LatencyHistogram* Registry::GetHistogram(const std::string& name,
                                         size_t cells) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Family* existing = FindLocked(name)) {
    return existing->kind == Kind::kHistogram ? existing->histogram.get()
                                              : nullptr;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->kind = Kind::kHistogram;
  family->histogram = std::make_unique<LatencyHistogram>(cells);
  LatencyHistogram* out = family->histogram.get();
  families_.push_back(std::move(family));
  return out;
}

namespace {

Json CellsJson(const std::vector<int64_t>& values) {
  Json cells = Json::Array();
  for (int64_t v : values) cells.Append(v);
  return cells;
}

}  // namespace

Json Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::Object();
  Json gauges = Json::Object();
  Json histograms = Json::Object();
  for (const auto& family : families_) {
    switch (family->kind) {
      case Kind::kCounter: {
        const Counter& c = *family->counter;
        std::vector<int64_t> cells(c.cells());
        for (size_t i = 0; i < c.cells(); ++i) cells[i] = c.Cell(i);
        Json entry = Json::Object().Set("total", c.Total());
        if (c.cells() > 1) entry.Set("cells", CellsJson(cells));
        counters.Set(family->name, std::move(entry));
        break;
      }
      case Kind::kGauge: {
        const Gauge& g = *family->gauge;
        std::vector<int64_t> cells(g.cells());
        for (size_t i = 0; i < g.cells(); ++i) cells[i] = g.Cell(i);
        Json entry = Json::Object().Set("total", g.Total());
        if (g.cells() > 1) entry.Set("cells", CellsJson(cells));
        gauges.Set(family->name, std::move(entry));
        break;
      }
      case Kind::kHistogram: {
        const LatencyHistogram& h = *family->histogram;
        Json entry = Json::Object()
                         .Set("count", h.TotalCount())
                         .Set("sum_seconds", h.TotalSumSeconds())
                         .Set("p50_seconds", h.ApproxQuantile(0.50))
                         .Set("p95_seconds", h.ApproxQuantile(0.95))
                         .Set("p99_seconds", h.ApproxQuantile(0.99));
        if (h.rejected() > 0) entry.Set("rejected", h.rejected());
        Json buckets = Json::Array();
        const std::vector<int64_t> totals = h.BucketTotals();
        for (size_t b = 0; b < totals.size(); ++b) {
          if (totals[b] == 0) continue;  // sparse: only occupied buckets
          buckets.Append(
              Json::Object()
                  .Set("le_seconds", LatencyHistogram::BucketUpperSeconds(b))
                  .Set("count", totals[b]));
        }
        entry.Set("buckets", std::move(buckets));
        histograms.Set(family->name, std::move(entry));
        break;
      }
    }
  }
  return Json::Object()
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges))
      .Set("histograms", std::move(histograms));
}

}  // namespace obs
}  // namespace exsample
