// Lock-light runtime metrics: counters, gauges, and fixed-bucket latency
// histograms, aggregated on scrape.
//
// Design goals, in order:
//   1. Hot paths pay one relaxed atomic add. Every instrument is a family
//      of `cells` independent cache-line-aligned slots; a shard (or any
//      stable modular hash of a session id) owns a cell, so concurrent
//      writers on different cells never contend and never fence. There is
//      no lock anywhere on the write path.
//   2. Observation never perturbs results. Instruments touch no RNG and no
//      engine state; a fully instrumented run is bit-identical to a bare
//      one (pinned by the determinism matrices).
//   3. Scrapes are safe against writers. A scrape loads each cell once
//      (relaxed atomic load — no torn reads) and sums; because every cell
//      is monotone for counters, successive scrape totals are monotone
//      too, even while all shards keep writing. Scrapes take only the
//      registry's registration mutex (so the family list is stable), never
//      a per-instrument lock.
//
// The Registry owns every instrument: Counter/Gauge/Histogram return
// stable pointers for the registry's lifetime, so instrumented subsystems
// hold raw pointers and need no lifetime bookkeeping of their own.
// Registration is idempotent by name (two subsystems may share a family)
// but a name's kind and cell count are fixed by the first registration.
//
// Snapshot() serializes everything to JSON — totals plus the per-cell
// breakdown — which is exactly what the serve protocol's `metrics` command
// and the --metrics-dump flag emit.

#ifndef EXSAMPLE_OBS_METRICS_H_
#define EXSAMPLE_OBS_METRICS_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace exsample {
namespace obs {

/// One cache line per writer slot so concurrent cells never false-share.
struct alignas(64) MetricCell {
  std::atomic<int64_t> value{0};
};

/// Monotonic counter family. Add() is one relaxed fetch_add on the caller's
/// cell; Total() sums the cells. Never decremented.
class Counter {
 public:
  explicit Counter(size_t cells) : cells_(cells > 0 ? cells : 1) {}

  void Add(int64_t delta = 1, size_t cell = 0) {
    assert(delta >= 0 && "counters are monotonic");
    cells_[cell % cells_.size()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  int64_t Total() const;
  size_t cells() const { return cells_.size(); }
  int64_t Cell(size_t i) const {
    return cells_[i].value.load(std::memory_order_relaxed);
  }

 private:
  std::vector<MetricCell> cells_;
};

/// Gauge family: a value that can move both ways (live connections, last
/// observed cost). Set/Add are relaxed; Total() sums the cells (so a
/// per-shard gauge totals across shards).
class Gauge {
 public:
  explicit Gauge(size_t cells) : cells_(cells > 0 ? cells : 1) {}

  void Set(int64_t value, size_t cell = 0) {
    cells_[cell % cells_.size()].value.store(value,
                                             std::memory_order_relaxed);
  }
  void Add(int64_t delta, size_t cell = 0) {
    cells_[cell % cells_.size()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  int64_t Total() const;
  size_t cells() const { return cells_.size(); }
  int64_t Cell(size_t i) const {
    return cells_[i].value.load(std::memory_order_relaxed);
  }

 private:
  std::vector<MetricCell> cells_;
};

/// Latency histogram with fixed power-of-two buckets from 1 microsecond up
/// (bucket b counts observations <= 2^b us; the last bucket is +inf), so
/// Observe() is a leading-zero count plus one relaxed add — no allocation,
/// no comparison ladder. Buckets are shared across cells (per-cell counts),
/// and a per-cell count/sum pair supports mean latency on scrape.
///
/// Non-finite or negative observations are dropped (counted under
/// `rejected`), so a NaN can never poison the percentile estimates — the
/// same discipline util::RunningStat and util::Histogram follow.
class LatencyHistogram {
 public:
  /// Buckets: <=1us, <=2us, ... <=2^(kBuckets-2)us (~134s), then +inf.
  static constexpr size_t kBuckets = 29;

  explicit LatencyHistogram(size_t cells);

  void Observe(double seconds, size_t cell = 0);

  int64_t TotalCount() const;
  double TotalSumSeconds() const;
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Counts per bucket, summed over cells.
  std::vector<int64_t> BucketTotals() const;
  /// Upper bound of bucket b in seconds (+inf bucket reports the largest
  /// finite bound).
  static double BucketUpperSeconds(size_t bucket);
  /// Approximate q-quantile (q in [0,1]) from the bucket counts: the upper
  /// bound of the bucket where the cumulative count crosses q. 0 when
  /// empty.
  double ApproxQuantile(double q) const;

  size_t cells() const { return num_cells_; }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> buckets[kBuckets] = {};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_nanos{0};
  };

  const size_t num_cells_;
  std::vector<Cell> cells_;
  std::atomic<int64_t> rejected_{0};
};

/// Owns instruments; hands out stable pointers; serializes snapshots.
/// Thread-safe: registration locks, writes are lock-free, Snapshot locks
/// only the family list.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) the named instrument. Idempotent: a second call
  /// with the same name returns the existing family (its original cell
  /// count — callers sharing a name must agree on shape). A name may hold
  /// only one kind; re-registering under a different kind returns nullptr.
  Counter* GetCounter(const std::string& name, size_t cells = 1);
  Gauge* GetGauge(const std::string& name, size_t cells = 1);
  LatencyHistogram* GetHistogram(const std::string& name, size_t cells = 1);

  /// Full dump: {"counters":{name:{"total":..,"cells":[..]}},
  /// "gauges":{...}, "histograms":{name:{"count":..,"sum_seconds":..,
  /// "p50_seconds":..,"p95_seconds":..,"p99_seconds":..,"rejected":..,
  /// "buckets":[{"le_seconds":..,"count":..}, ...nonzero only]}}}.
  /// Families appear in registration order so snapshots diff cleanly.
  Json Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Family* FindLocked(const std::string& name);

  mutable std::mutex mu_;
  /// unique_ptr elements keep instrument addresses stable across growth.
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace obs
}  // namespace exsample

#endif  // EXSAMPLE_OBS_METRICS_H_
