#include "obs/trace.h"

#include <algorithm>

namespace exsample {
namespace obs {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kPick:
      return "pick";
    case TraceEvent::Kind::kFrame:
      return "frame";
    case TraceEvent::Kind::kHit:
      return "hit";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void TraceRecorder::Record(TraceEvent::Kind kind, int64_t frame,
                           int64_t chunk, double value) {
  TraceEvent& slot = ring_[next_];
  slot.kind = kind;
  slot.seq = total_;
  slot.frame = frame;
  slot.chunk = chunk;
  slot.value = value;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  const size_t held =
      std::min(static_cast<size_t>(total_), ring_.size());
  std::vector<TraceEvent> out;
  out.reserve(held);
  // Oldest event sits at the write cursor once the ring has wrapped.
  const size_t start =
      static_cast<size_t>(total_) > ring_.size() ? next_ : 0;
  for (size_t i = 0; i < held; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::Reset() {
  next_ = 0;
  total_ = 0;
}

Json TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  Json array = Json::Array();
  for (const TraceEvent& event : events) {
    Json entry = Json::Object()
                     .Set("seq", event.seq)
                     .Set("kind", TraceEventKindName(event.kind));
    if (event.frame >= 0) entry.Set("frame", event.frame);
    if (event.chunk >= 0) entry.Set("chunk", event.chunk);
    entry.Set("value", event.value);
    array.Append(std::move(entry));
  }
  return Json::Object()
      .Set("total_recorded", total_)
      .Set("dropped", total_ - static_cast<int64_t>(events.size()))
      .Set("events", std::move(array));
}

}  // namespace obs
}  // namespace exsample
