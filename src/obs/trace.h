// Per-query trace recorder: a bounded ring buffer of sampling events for
// offline analysis of bandit trajectories.
//
// Where the metrics registry answers "how much, overall", a trace answers
// "what did this one query actually do": which chunk the bandit picked,
// which frames it scanned, where it hit, and what each frame cost. The
// engine appends one event per pick batch and per processed frame when a
// recorder is attached (opt-in; nullptr — the default — costs nothing).
//
// Determinism contract: recording touches no RNG and reads no engine state
// that feeds back into sampling, so a traced run is bit-identical to an
// untraced one (pinned by the determinism matrix).
//
// The buffer is bounded: once `capacity` events are held, the oldest are
// overwritten (a query's endgame is usually the interesting part; the
// total_recorded counter tells consumers how much was dropped). Thread
// model: single-writer — a recorder belongs to one engine, and the serving
// layer already serializes an engine's slices behind the session mutex.

#ifndef EXSAMPLE_OBS_TRACE_H_
#define EXSAMPLE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace exsample {
namespace obs {

/// One sampling event. `value` is kind-specific (see Kind).
struct TraceEvent {
  enum class Kind : uint8_t {
    kPick,   ///< bandit chose a chunk; value = frames requested in the batch
    kFrame,  ///< a frame was decoded + detected; value = modeled cost seconds
    kHit,    ///< the discriminator reported new objects; value = |d0|
  };

  Kind kind = Kind::kFrame;
  /// Monotone event index since Reset (survives ring eviction).
  int64_t seq = 0;
  /// Global frame id (-1 for kPick events).
  int64_t frame = -1;
  /// Chunk the frame was drawn from (-1 for chunk-less sources).
  int64_t chunk = -1;
  double value = 0.0;
};

const char* TraceEventKindName(TraceEvent::Kind kind);

/// Fixed-capacity single-writer event ring.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 65536);

  void Record(TraceEvent::Kind kind, int64_t frame, int64_t chunk,
              double value);

  /// Events still held, oldest first.
  std::vector<TraceEvent> Events() const;
  /// Events ever recorded (>= Events().size(); the difference was evicted).
  int64_t total_recorded() const { return total_; }
  size_t capacity() const { return ring_.size(); }

  void Reset();

  /// {"total_recorded":N,"dropped":D,"events":[{"seq":..,"kind":"frame",
  /// "frame":..,"chunk":..,"value":..}, ...]} — the exsample_query --trace
  /// file format.
  Json ToJson() const;

 private:
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;      // ring write cursor
  int64_t total_ = 0;    // events ever recorded
};

}  // namespace obs
}  // namespace exsample

#endif  // EXSAMPLE_OBS_TRACE_H_
