#include "exec/predicate_jobs.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "detect/composite_detector.h"
#include "track/discriminator.h"
#include "track/predicate_discriminator.h"
#include "util/rng.h"

namespace exsample {
namespace exec {
namespace {

std::unique_ptr<track::Discriminator> MakeInner(
    bool use_tracker) {
  if (use_tracker) return std::make_unique<track::TrackerDiscriminator>();
  return std::make_unique<track::OracleDiscriminator>();
}

}  // namespace

Result<core::QueryPredicate> ResolvePredicate(
    const data::Dataset& dataset, const core::PredicateRequest& request) {
  // Arity is checked on the REQUEST, before normalization: a one-name
  // "and" must be an error, not a silent collapse to single-class.
  // (ParsePredicateJson enforces the same rules for transport requests;
  // this covers callers that build a PredicateRequest directly — CLI
  // flags, hand-built ShardSpecs.)
  const size_t n = request.class_names.size();
  switch (request.kind) {
    case core::PredicateKind::kSingleClass:
      if (n != 1) {
        return Status::InvalidArgument("single predicate takes exactly 1 class");
      }
      break;
    case core::PredicateKind::kSequence:
      if (n != 2) {
        return Status::InvalidArgument("seq predicate takes exactly 2 classes");
      }
      break;
    case core::PredicateKind::kConjunction:
    case core::PredicateKind::kMultiClass:
      if (n < 2) {
        return Status::InvalidArgument(
            std::string(core::PredicateKindName(request.kind)) +
            " predicate takes >= 2 classes");
      }
      break;
  }
  core::QueryPredicate pred;
  pred.kind = request.kind;
  pred.within_seconds = request.within_seconds;
  for (const std::string& name : request.class_names) {
    const data::ClassSpec* cls = dataset.FindClass(name);
    if (cls == nullptr) {
      return Status::NotFound("unknown class: " + name);
    }
    pred.classes.push_back(cls->class_id);
  }
  pred = core::NormalizePredicate(std::move(pred));
  Status status = core::ValidatePredicate(pred);
  if (!status.ok()) return status;
  return pred;
}

int64_t WithinFrames(double within_seconds, double fps) {
  if (std::isinf(within_seconds)) return track::kUnboundedWindowFrames;
  const int64_t frames = std::llround(within_seconds * fps);
  return frames > 0 ? frames : 1;
}

uint64_t ClassDetectorSeed(uint64_t seed, detect::ClassId cls) {
  // The MultiQueryRunner::JobSeed mixing discipline, keyed by class id so
  // the derivation is independent of the class's position in the predicate.
  SplitMix64 stream(seed ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(cls) + 1)));
  stream.Next();
  return stream.Next();
}

void ConfigurePredicateJob(const data::Dataset* dataset,
                           const core::QueryPredicate& predicate,
                           bool use_tracker,
                           const detect::DetectorConfig& detector_config,
                           QueryJob* job) {
  job->spec.class_id = predicate.result_class();
  job->spec.predicate = predicate;
  switch (predicate.kind) {
    case core::PredicateKind::kSingleClass: {
      const detect::ClassId cls = predicate.classes.front();
      job->make_detector = [dataset, cls, detector_config](uint64_t seed) {
        return std::make_unique<detect::SimulatedDetector>(
            &dataset->ground_truth, cls, detector_config, seed);
      };
      job->make_discriminator = [use_tracker]() { return MakeInner(use_tracker); };
      break;
    }
    case core::PredicateKind::kConjunction:
    case core::PredicateKind::kSequence: {
      const std::vector<detect::ClassId> classes = predicate.classes;
      job->make_detector = [dataset, classes,
                            detector_config](uint64_t seed) {
        std::vector<std::unique_ptr<detect::ObjectDetector>> inner;
        for (detect::ClassId cls : classes) {
          inner.push_back(std::make_unique<detect::SimulatedDetector>(
              &dataset->ground_truth, cls, detector_config,
              ClassDetectorSeed(seed, cls)));
        }
        return std::make_unique<detect::CompositeDetector>(std::move(inner));
      };
      const int64_t within =
          WithinFrames(predicate.within_seconds, dataset->fps);
      job->make_discriminator = [predicate, within, use_tracker]() {
        return std::make_unique<track::PredicateDiscriminator>(
            predicate, within,
            [use_tracker]() { return MakeInner(use_tracker); });
      };
      break;
    }
    case core::PredicateKind::kMultiClass: {
      job->make_class_detector = [dataset, detector_config](
                                     detect::ClassId cls, uint64_t seed) {
        return std::make_unique<detect::SimulatedDetector>(
            &dataset->ground_truth, cls, detector_config, seed);
      };
      job->make_discriminator = [use_tracker]() { return MakeInner(use_tracker); };
      break;
    }
  }
}

}  // namespace exec
}  // namespace exsample
