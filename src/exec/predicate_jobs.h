// Predicate -> runnable-job wiring, shared by every front end (the serve
// protocol handler, the dist worker, exsample_query). One place owns the
// mapping from a core::QueryPredicate to the detector/discriminator pair
// that implements it, so the serve, dist and CLI paths cannot drift:
//
//   kSingleClass  -> SimulatedDetector(class) + Tracker/Oracle — byte-for-
//                    byte the factories single-class runs always had.
//   kConjunction/ -> detect::CompositeDetector over the constituent classes
//   kSequence        (class-id-derived inner seeds) +
//                    track::PredicateDiscriminator wrapping Tracker/Oracle.
//   kMultiClass   -> per-class factory (QueryJob::make_class_detector) for
//                    core::MultiClassEngine plus the plain single-class
//                    discriminator factory it instantiates per constituent.
//
// Inner detector seeds are derived from the CLASS ID, not the list
// position: seq(A, B) and and(A, B) then see identical per-class noise
// streams for the same job seed, which is what the Seq(inf) == Conjunction
// property test pins.

#ifndef EXSAMPLE_EXEC_PREDICATE_JOBS_H_
#define EXSAMPLE_EXEC_PREDICATE_JOBS_H_

#include <cstdint>

#include "core/predicate.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "exec/query_job.h"
#include "util/status.h"

namespace exsample {
namespace exec {

/// Resolves a transport-level predicate request (class names) against a
/// dataset into a normalized, validated QueryPredicate. NotFound for
/// unknown class names, InvalidArgument for structural violations that
/// survive normalization.
Result<core::QueryPredicate> ResolvePredicate(
    const data::Dataset& dataset, const core::PredicateRequest& request);

/// A sequence window in frames at the dataset's frame rate
/// (track::kUnboundedWindowFrames for the unbounded sentinel).
int64_t WithinFrames(double within_seconds, double fps);

/// Fills `job`'s spec targeting fields (class_id = the predicate's result
/// class, spec.predicate) and the factory set implementing `predicate`.
/// `use_tracker` picks TrackerDiscriminator over OracleDiscriminator for
/// result-class novelty, exactly as in single-class runs. `predicate` must
/// be normalized + validated; `dataset` must outlive every run of the job.
void ConfigurePredicateJob(const data::Dataset* dataset,
                           const core::QueryPredicate& predicate,
                           bool use_tracker,
                           const detect::DetectorConfig& detector_config,
                           QueryJob* job);

/// The seed of one constituent class's detector noise stream, derived from
/// the job-level detector seed and the class id (pure, order-free).
uint64_t ClassDetectorSeed(uint64_t seed, detect::ClassId cls);

}  // namespace exec
}  // namespace exsample

#endif  // EXSAMPLE_EXEC_PREDICATE_JOBS_H_
