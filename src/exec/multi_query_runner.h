// MultiQueryRunner: executes many independent query runs across a thread
// pool with deterministic per-job RNG streams.
//
// Each job's randomness is derived solely from (base_seed, job.id) — the
// row-sampler idiom: hash the job identity into an independent seed stream
// instead of sharing one generator — so the result of a job does not depend
// on which worker ran it, in what order, or how many threads existed.
// RunAll(T threads) is bit-identical to RunAll(1 thread).

#ifndef EXSAMPLE_EXEC_MULTI_QUERY_RUNNER_H_
#define EXSAMPLE_EXEC_MULTI_QUERY_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/query_job.h"

namespace exsample {
namespace exec {

/// Schedules QueryJobs over util::ThreadPool.
class MultiQueryRunner {
 public:
  struct Options {
    /// Worker threads; 0 = hardware_concurrency, 1 = serial reference.
    size_t threads = 0;
    /// Root seed all job streams derive from.
    uint64_t base_seed = 1;
  };

  MultiQueryRunner() : MultiQueryRunner(Options()) {}
  explicit MultiQueryRunner(Options options);

  /// Runs every job to completion and returns results in job order
  /// (results[i] corresponds to jobs[i]). Thread-count independent:
  /// deterministic given base_seed and the jobs' ids/configs.
  std::vector<JobResult> RunAll(const std::vector<QueryJob>& jobs) const;

  /// The root seed for job `job_id` under `base_seed`: a SplitMix64 hash of
  /// the pair, so consecutive ids yield decorrelated streams.
  static uint64_t JobSeed(uint64_t base_seed, int64_t job_id);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace exec
}  // namespace exsample

#endif  // EXSAMPLE_EXEC_MULTI_QUERY_RUNNER_H_
