#include "exec/multi_query_runner.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "detect/batched_detector.h"
#include "exec/pipeline.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace exsample {
namespace exec {

MultiQueryRunner::MultiQueryRunner(Options options) : options_(options) {}

uint64_t MultiQueryRunner::JobSeed(uint64_t base_seed, int64_t job_id) {
  // Two SplitMix64 steps: the first whitens the (base_seed, id) pair, the
  // second decorrelates neighbouring ids that share a base seed.
  SplitMix64 mix(base_seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(job_id) + 1)));
  mix.Next();
  return mix.Next();
}

std::vector<JobResult> MultiQueryRunner::RunAll(
    const std::vector<QueryJob>& jobs) const {
  std::vector<JobResult> results(jobs.size());
  const uint64_t base_seed = options_.base_seed;

  auto run_one = [&jobs, &results, base_seed](size_t i) {
    const QueryJob& job = jobs[i];
    assert(job.repo != nullptr);
    assert(job.make_detector && job.make_discriminator);

    // Independent streams per job: engine and detector each get their own
    // seed so adding detector noise never perturbs the sampling sequence.
    const uint64_t seed = JobSeed(base_seed, job.id);
    SplitMix64 stream(seed);
    const uint64_t engine_seed = stream.Next();
    const uint64_t detector_seed = stream.Next();

    std::unique_ptr<detect::ObjectDetector> detector =
        job.make_detector(detector_seed);
    std::unique_ptr<track::Discriminator> discriminator =
        job.make_discriminator();
    core::QueryEngine engine(job.repo, job.chunks, detector.get(),
                             discriminator.get(), job.config, engine_seed);
    if (job.trace != nullptr) engine.set_trace(job.trace);

    // Pipelined execution: wrap the job's detector as the batch backend and
    // route the engine's batches through a per-job pipeline. Bit-identical
    // to the serial path (see exec/pipeline.h), so jobs may mix modes.
    std::unique_ptr<detect::SerialDetectorAdapter> batched;
    std::unique_ptr<Pipeline> pipeline;
    if (job.pipeline_depth > 0) {
      batched = std::make_unique<detect::SerialDetectorAdapter>(detector.get());
      PipelineOptions popt;
      popt.queue_depth = job.pipeline_depth;
      popt.detect_batch = job.detect_batch;
      popt.decode_threads = job.pipeline_threads;
      pipeline = std::make_unique<Pipeline>(job.repo, batched.get(), popt);
      engine.set_executor(pipeline.get());
    }

    JobResult& out = results[i];
    out.job_id = job.id;
    out.seed = seed;
    out.result = engine.Run(job.spec);
  };

  // Never spin up more workers than jobs (tiny batches are common in the
  // bench sweeps; a 2-job RunAll should not build a 64-thread pool).
  size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, jobs.size());

  if (threads <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    ThreadPool::ParallelFor(jobs.size(), threads, run_one);
  }
  return results;
}

}  // namespace exec
}  // namespace exsample
