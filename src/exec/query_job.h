// QueryJob: one self-contained query run, ready to be scheduled.
//
// A job names the dataset surfaces it reads (repository + chunking), the
// engine configuration, the query spec, and factories for the per-run
// stateful components (detector, discriminator). Factories — rather than
// instances — because detectors and discriminators accumulate state across
// one run and therefore cannot be shared between jobs or reused; the runner
// instantiates fresh ones per job, on the worker thread that executes it.

#ifndef EXSAMPLE_EXEC_QUERY_JOB_H_
#define EXSAMPLE_EXEC_QUERY_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "detect/detector.h"
#include "track/discriminator.h"
#include "video/chunking.h"
#include "video/repository.h"

namespace exsample {
namespace exec {

/// Builds a fresh detector for one run. `seed` is the job's deterministic
/// detector stream (see MultiQueryRunner::JobSeed); factories for
/// deterministic detectors may ignore it.
using DetectorFactory =
    std::function<std::unique_ptr<detect::ObjectDetector>(uint64_t seed)>;

/// Builds a fresh discriminator for one run.
using DiscriminatorFactory =
    std::function<std::unique_ptr<track::Discriminator>()>;

/// Builds a fresh detector for one constituent class of a kMultiClass
/// predicate (core::MultiClassEngine instantiates one per class, each with
/// its own derived seed).
using ClassDetectorFactory = std::function<std::unique_ptr<
    detect::ObjectDetector>(detect::ClassId cls, uint64_t seed)>;

/// One schedulable query run. The referenced repository and chunk vector
/// are read-only during execution and must outlive the runner call; many
/// jobs typically share them.
struct QueryJob {
  /// Job identity; determines the job's RNG streams, so two jobs with the
  /// same id and base seed produce identical results. Ids need not be
  /// dense or sorted, but must be unique within one RunAll() call.
  int64_t id = 0;
  const video::VideoRepository* repo = nullptr;
  /// Required for Strategy::kExSample, ignored otherwise.
  const std::vector<video::Chunk>* chunks = nullptr;
  core::EngineConfig config;
  core::QuerySpec spec;
  DetectorFactory make_detector;
  DiscriminatorFactory make_discriminator;
  /// kMultiClass predicates only: per-constituent detector factory (the
  /// single factories above are unused in that case). See
  /// exec::ConfigurePredicateJob, which fills whichever pair the job's
  /// spec.predicate needs.
  ClassDetectorFactory make_class_detector;
  /// Optional per-query trace sink (non-owning; must outlive the run).
  /// Attached to the engine before execution; recording never touches the
  /// job's RNG streams, so a traced run matches an untraced one bit for
  /// bit. Single-writer: don't share one recorder between jobs.
  obs::TraceRecorder* trace = nullptr;
  /// Pipelined decode -> detect execution: decode-ahead queue depth. 0 (the
  /// default) runs the serial in-engine path; > 0 routes batches through an
  /// exec::Pipeline (results are bit-identical either way — see
  /// exec/pipeline.h).
  int32_t pipeline_depth = 0;
  /// Max frames per batched-detector invocation (pipelined runs only).
  int32_t detect_batch = 8;
  /// Decode worker threads (pipelined runs only).
  int32_t pipeline_threads = 1;
};

/// Outcome of one scheduled job, in the job order passed to RunAll().
struct JobResult {
  int64_t job_id = 0;
  /// The root seed the job's streams were derived from.
  uint64_t seed = 0;
  core::QueryResult result;
};

}  // namespace exec
}  // namespace exsample

#endif  // EXSAMPLE_EXEC_QUERY_JOB_H_
