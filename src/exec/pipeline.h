// exec::Pipeline: staged decode -> detect execution for one engine.
//
// Turns each engine pick batch into
//   1. a GOP-aware decode plan (video::BuildDecodePlan): same-GOP picks
//      coalesce into one seek, groups run I-frame-first, and every entry
//      carries the measured per-frame cost, replayed through the run's own
//      decoder on the engine thread;
//   2. a bounded async decode-ahead queue: worker threads claim plan
//      entries in plan order and "decode" ahead of the detector, stalling
//      (backpressure) when queue_depth frames are decoded but not yet
//      claimed by detection;
//   3. batched detection: Await() gathers the contiguous decoded prefix of
//      the plan — waiting up to max_wait_seconds to fill a batch — and
//      hands it to the BatchedObjectDetector, up to detect_batch frames per
//      invocation.
//
// Determinism: the engine's RNG is touched only by FrameSource::NextBatch,
// which the engine calls identically with or without a pipeline; the plan
// is a pure function of the batch; per-pick charges come from the plan and
// FrameSeconds(), not from wall clocks; and detections are per-frame pure.
// So result sets are bit-identical to the serial path for any queue depth,
// detect batch size, or worker count (pinned by tests/pipeline). Queue and
// batch *shapes* — and therefore the metrics below — do depend on thread
// timing; results never do.
//
// Wall emulation: with wall_scale > 0, workers sleep each entry's modeled
// decode cost (scaled) and detection sleeps BatchSeconds (scaled), so
// bench_pipeline measures real overlap and batching wins with wall clocks
// while results stay simulated and deterministic.
//
// Thread model: BeginBatch / Await / Abort are called by the one engine
// thread; decode workers only touch the plan queue under the pipeline
// mutex. The destructor joins the workers; it is safe to destroy a
// pipeline with a batch still open (undelivered work is dropped).

#ifndef EXSAMPLE_EXEC_PIPELINE_H_
#define EXSAMPLE_EXEC_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "detect/batched_detector.h"
#include "obs/metrics.h"
#include "video/decode_plan.h"
#include "video/repository.h"

namespace exsample {
namespace exec {

/// Pipeline shape knobs. Results are identical for every setting; only
/// wall-clock behaviour (and the stall/batch metrics) change.
struct PipelineOptions {
  /// Max frames decoded ahead of detection (backpressure bound), >= 1.
  int32_t queue_depth = 4;
  /// Max frames per BatchedObjectDetector::DetectBatch invocation, >= 1.
  int32_t detect_batch = 8;
  /// Decode worker threads, >= 1.
  int32_t decode_threads = 1;
  /// How long detection waits for more decoded frames before running a
  /// partial batch (0 = never wait; detect whatever is ready).
  double max_wait_seconds = 0.0;
  /// GOP-aware I-frame-first reordering (false = keep pick order — the
  /// serial-equivalent schedule the bench baselines against).
  bool plan_reorder = true;
  /// > 0: emulate wall time by sleeping scaled modeled costs (decode
  /// entries and detect batches). 0 = run at full speed.
  double wall_scale = 0.0;
};

/// Metric sinks for the pipeline (all non-owning, registry-owned; a
/// default-constructed instance disables everything).
struct PipelineMetrics {
  /// Frames decoded ahead but not yet claimed by detection (sampled on
  /// every queue transition).
  obs::Gauge* queue_depth = nullptr;
  /// Wall time per decoded frame (includes emulated decode sleep).
  obs::LatencyHistogram* decode_seconds = nullptr;
  /// Wall time per DetectBatch invocation (includes emulated sleep).
  obs::LatencyHistogram* detect_batch_seconds = nullptr;
  /// Await found nothing decoded and had to wait (detector starved).
  obs::Counter* stalls_detector_starved = nullptr;
  /// A decode worker blocked on the queue_depth bound (queue full).
  obs::Counter* stalls_queue_full = nullptr;
  obs::Counter* batches = nullptr;         // BeginBatch calls
  obs::Counter* frames_decoded = nullptr;  // plan entries decoded
  obs::Counter* detect_batches = nullptr;  // DetectBatch invocations
  obs::Counter* detect_frames = nullptr;   // frames through DetectBatch
  /// Decode-plan telemetry: seeks the plans paid, and frames coalesced
  /// into an already-open GOP (seeks avoided vs one-seek-per-frame).
  obs::Counter* plan_seeks = nullptr;
  obs::Counter* plan_coalesced_frames = nullptr;

  /// Registers every pipeline.* family into `registry` (idempotent; shared
  /// names must agree on `cells`).
  static PipelineMetrics Register(obs::Registry* registry, size_t cells);
};

/// The staged executor. One pipeline serves one engine (single-threaded
/// caller); its worker threads live for the pipeline's lifetime.
class Pipeline : public core::BatchExecutor {
 public:
  /// `repo` and `detector` are non-owning and must outlive the pipeline.
  /// `metrics` (may be null) must outlive it too; `cell` spreads concurrent
  /// pipelines across metric cells.
  Pipeline(const video::VideoRepository* repo,
           detect::BatchedObjectDetector* detector, PipelineOptions options,
           const PipelineMetrics* metrics = nullptr, size_t cell = 0);
  ~Pipeline() override;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  void BeginBatch(const std::vector<core::PickedFrame>& picks,
                  video::SimulatedDecoder* decoder) override;
  core::FrameWork Await(size_t pick_index) override;
  void Abort() override;

  const PipelineOptions& options() const { return options_; }

 private:
  void DecodeWorker();
  /// Runs one detection round: claims the contiguous decoded prefix (up to
  /// detect_batch), releases the lock for inference, publishes the work.
  /// Precondition: at least one decoded, unclaimed entry. Called with
  /// `lock` held; returns with it held.
  void DetectReady(std::unique_lock<std::mutex>& lock);

  const video::VideoRepository* const repo_;
  detect::BatchedObjectDetector* const detector_;
  const PipelineOptions options_;
  const PipelineMetrics* const metrics_;  // may be null
  const size_t cell_;

  std::mutex mu_;
  std::condition_variable decode_cv_;  // wakes workers: work or shutdown
  std::condition_variable detect_cv_;  // wakes Await: frames decoded
  /// Guards stale workers against a batch that ended while they slept:
  /// bumped by BeginBatch, Abort and shutdown; a worker that wakes into a
  /// different generation discards its claim.
  uint64_t generation_ = 0;
  bool stopping_ = false;
  bool batch_open_ = false;
  video::DecodePlan plan_;
  std::vector<char> decoded_;       // per plan entry
  size_t next_claim_ = 0;           // next plan entry a worker may take
  size_t detect_cursor_ = 0;        // plan entries claimed by detection
  size_t decoded_ahead_ = 0;        // decoded, not yet claimed by detection
  std::vector<core::FrameWork> work_;  // per pick index
  std::vector<char> ready_;            // per pick index
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace exsample

#endif  // EXSAMPLE_EXEC_PIPELINE_H_
