#include "exec/pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

namespace exsample {
namespace exec {

namespace {

void EmulateWall(double modeled_seconds, double wall_scale) {
  if (wall_scale <= 0.0 || modeled_seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(modeled_seconds * wall_scale));
}

double WallSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

PipelineMetrics PipelineMetrics::Register(obs::Registry* registry,
                                          size_t cells) {
  PipelineMetrics m;
  m.queue_depth = registry->GetGauge("pipeline.queue_depth", cells);
  m.decode_seconds = registry->GetHistogram("pipeline.decode_seconds", cells);
  m.detect_batch_seconds =
      registry->GetHistogram("pipeline.detect_batch_seconds", cells);
  m.stalls_detector_starved =
      registry->GetCounter("pipeline.stalls_detector_starved", cells);
  m.stalls_queue_full =
      registry->GetCounter("pipeline.stalls_queue_full", cells);
  m.batches = registry->GetCounter("pipeline.batches", cells);
  m.frames_decoded = registry->GetCounter("pipeline.frames_decoded", cells);
  m.detect_batches = registry->GetCounter("pipeline.detect_batches", cells);
  m.detect_frames = registry->GetCounter("pipeline.detect_frames", cells);
  m.plan_seeks = registry->GetCounter("pipeline.plan_seeks", cells);
  m.plan_coalesced_frames =
      registry->GetCounter("pipeline.plan_coalesced_frames", cells);
  return m;
}

Pipeline::Pipeline(const video::VideoRepository* repo,
                   detect::BatchedObjectDetector* detector,
                   PipelineOptions options, const PipelineMetrics* metrics,
                   size_t cell)
    : repo_(repo), detector_(detector), options_([&options] {
        PipelineOptions o = options;
        o.queue_depth = std::max<int32_t>(1, o.queue_depth);
        o.detect_batch = std::max<int32_t>(1, o.detect_batch);
        o.decode_threads = std::max<int32_t>(1, o.decode_threads);
        return o;
      }()),
      metrics_(metrics),
      cell_(cell) {
  assert(repo_ != nullptr && detector_ != nullptr);
  workers_.reserve(static_cast<size_t>(options_.decode_threads));
  for (int32_t i = 0; i < options_.decode_threads; ++i) {
    workers_.emplace_back([this] { DecodeWorker(); });
  }
}

Pipeline::~Pipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    ++generation_;
    batch_open_ = false;
  }
  decode_cv_.notify_all();
  detect_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Pipeline::BeginBatch(const std::vector<core::PickedFrame>& picks,
                          video::SimulatedDecoder* decoder) {
  // Plan (and cost-replay) on the engine thread, outside the lock: workers
  // never touch the decoder, and decode accounting must not depend on
  // worker scheduling.
  std::vector<video::FrameId> frames;
  frames.reserve(picks.size());
  for (const core::PickedFrame& pick : picks) frames.push_back(pick.frame);
  video::DecodePlan plan =
      video::BuildDecodePlan(*repo_, frames, decoder, options_.plan_reorder);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;  // orphan any straggler from the previous batch
    plan_ = std::move(plan);
    decoded_.assign(plan_.entries.size(), 0);
    next_claim_ = 0;
    detect_cursor_ = 0;
    decoded_ahead_ = 0;
    work_.assign(picks.size(), core::FrameWork{});
    ready_.assign(picks.size(), 0);
    batch_open_ = true;
    if (metrics_ != nullptr) {
      if (metrics_->batches != nullptr) metrics_->batches->Add(1, cell_);
      if (metrics_->plan_seeks != nullptr) {
        metrics_->plan_seeks->Add(plan_.seeks, cell_);
      }
      if (metrics_->plan_coalesced_frames != nullptr) {
        metrics_->plan_coalesced_frames->Add(plan_.coalesced_frames, cell_);
      }
      if (metrics_->queue_depth != nullptr) {
        metrics_->queue_depth->Set(0, cell_);
      }
    }
  }
  decode_cv_.notify_all();
}

void Pipeline::DecodeWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  bool stalled_full = false;
  for (;;) {
    const bool batch_has_work =
        batch_open_ && next_claim_ < plan_.entries.size();
    const bool queue_full =
        batch_has_work && next_claim_ - detect_cursor_ >=
                              static_cast<size_t>(options_.queue_depth);
    if (stopping_) return;
    if (!batch_has_work || queue_full) {
      if (queue_full && !stalled_full) {
        stalled_full = true;  // count once per backpressure episode
        if (metrics_ != nullptr && metrics_->stalls_queue_full != nullptr) {
          metrics_->stalls_queue_full->Add(1, cell_);
        }
      }
      decode_cv_.wait(lock);
      continue;
    }
    stalled_full = false;
    const uint64_t generation = generation_;
    const size_t index = next_claim_++;
    const video::DecodePlanEntry entry = plan_.entries[index];
    lock.unlock();

    const auto start = std::chrono::steady_clock::now();
    // The modeled decode already happened at plan build; a worker's job is
    // the wall-time shape: hold a queue slot for the duration of the decode.
    EmulateWall(entry.seconds, options_.wall_scale);
    const double wall = WallSince(start);

    lock.lock();
    if (generation_ != generation) continue;  // batch ended while decoding
    decoded_[index] = 1;
    ++decoded_ahead_;
    if (metrics_ != nullptr) {
      if (metrics_->frames_decoded != nullptr) {
        metrics_->frames_decoded->Add(1, cell_);
      }
      if (metrics_->decode_seconds != nullptr) {
        metrics_->decode_seconds->Observe(wall, cell_);
      }
      if (metrics_->queue_depth != nullptr) {
        metrics_->queue_depth->Set(static_cast<int64_t>(decoded_ahead_),
                                   cell_);
      }
    }
    detect_cv_.notify_all();
  }
}

void Pipeline::DetectReady(std::unique_lock<std::mutex>& lock) {
  const size_t begin = detect_cursor_;
  const size_t max_end =
      std::min(plan_.entries.size(),
               begin + static_cast<size_t>(options_.detect_batch));
  auto contiguous_end = [this, max_end] {
    size_t end = detect_cursor_;
    while (end < max_end && decoded_[end] != 0) ++end;
    return end;
  };
  size_t end = contiguous_end();
  assert(end > begin && "DetectReady requires a decoded prefix");
  // Optionally wait (bounded) for more decoded frames to fill the batch —
  // batch shape affects wall time and metrics only, never results.
  if (options_.max_wait_seconds > 0.0 && end < max_end) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.max_wait_seconds));
    while (end < max_end &&
           detect_cv_.wait_until(lock, deadline) !=
               std::cv_status::timeout) {
      end = contiguous_end();
    }
    end = contiguous_end();
  }

  // Claim [begin, end) before releasing the lock; workers may then decode
  // ahead into the freed queue slots while inference runs.
  const size_t count = end - begin;
  detect_cursor_ = end;
  decoded_ahead_ -= count;
  std::vector<video::FrameId> frames(count);
  std::vector<size_t> pick_indices(count);
  std::vector<double> decode_costs(count);
  for (size_t i = 0; i < count; ++i) {
    const video::DecodePlanEntry& entry = plan_.entries[begin + i];
    frames[i] = entry.frame;
    pick_indices[i] = entry.pick_index;
    decode_costs[i] = entry.seconds;
  }
  if (metrics_ != nullptr && metrics_->queue_depth != nullptr) {
    metrics_->queue_depth->Set(static_cast<int64_t>(decoded_ahead_), cell_);
  }
  lock.unlock();
  decode_cv_.notify_all();  // queue slots freed

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::vector<detect::Detection>> detections =
      detector_->DetectBatch(frames.data(), count);
  EmulateWall(detector_->BatchSeconds(count), options_.wall_scale);
  const double wall = WallSince(start);
  assert(detections.size() == count);

  lock.lock();
  const double frame_seconds = detector_->FrameSeconds();
  for (size_t i = 0; i < count; ++i) {
    core::FrameWork& work = work_[pick_indices[i]];
    work.decode_seconds = decode_costs[i];
    work.inference_seconds = frame_seconds;
    work.detections = std::move(detections[i]);
    ready_[pick_indices[i]] = 1;
  }
  if (metrics_ != nullptr) {
    if (metrics_->detect_batches != nullptr) {
      metrics_->detect_batches->Add(1, cell_);
    }
    if (metrics_->detect_frames != nullptr) {
      metrics_->detect_frames->Add(static_cast<int64_t>(count), cell_);
    }
    if (metrics_->detect_batch_seconds != nullptr) {
      metrics_->detect_batch_seconds->Observe(wall, cell_);
    }
  }
}

core::FrameWork Pipeline::Await(size_t pick_index) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(batch_open_ && pick_index < ready_.size());
  while (ready_[pick_index] == 0) {
    if (detect_cursor_ < plan_.entries.size() &&
        decoded_[detect_cursor_] != 0) {
      DetectReady(lock);
      continue;
    }
    // Nothing decoded past the cursor yet: the detector is starved.
    if (metrics_ != nullptr &&
        metrics_->stalls_detector_starved != nullptr) {
      metrics_->stalls_detector_starved->Add(1, cell_);
    }
    detect_cv_.wait(lock, [this] {
      return detect_cursor_ < plan_.entries.size() &&
             decoded_[detect_cursor_] != 0;
    });
  }
  return std::move(work_[pick_index]);
}

void Pipeline::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!batch_open_) return;
    ++generation_;  // stragglers discard their claims on wake
    batch_open_ = false;
    plan_ = video::DecodePlan{};
    decoded_.clear();
    work_.clear();
    ready_.clear();
    next_claim_ = 0;
    detect_cursor_ = 0;
    decoded_ahead_ = 0;
    if (metrics_ != nullptr && metrics_->queue_depth != nullptr) {
      metrics_->queue_depth->Set(0, cell_);
    }
  }
  decode_cv_.notify_all();
  detect_cv_.notify_all();
}

}  // namespace exec
}  // namespace exsample
