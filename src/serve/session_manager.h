// SessionManager: fair multi-tenant scheduling of live query sessions.
//
// Many QuerySessions share one util::ThreadPool. A dedicated scheduler
// thread runs rounds: each round gives every running session exactly one
// slice of `slice_frames` frames, executed in parallel across the pool.
// Round-robin time slicing means a huge repository-scan query advances at
// the same per-round rate as a find-5-objects query — it cannot starve it —
// while admission control (max_live_sessions) bounds the work in flight.
//
// Determinism: a session's randomness derives solely from
// (base_seed, session id) — the JobSeed idiom — and sessions share no
// mutable state, so results are bit-identical for any worker count and any
// round interleaving, and identical to running the same QueryJob through
// exec::MultiQueryRunner or a one-shot QueryEngine::Run.
//
// Warm start (optional, off by default): when a finished session queried an
// ExSample source under a named repository key, its chunk statistics are
// recorded into a StatsCache keyed by the predicate's canonical form; new
// sessions on the same (repository, predicate) are seeded with scaled-down
// priors. Composite predicates with no exact history compose their
// constituents' single-class rows; kMultiClass sessions look up and record
// each constituent class separately. Note warm-started results depend on
// which queries finished before they opened — cross-session determinism
// holds for a fixed open/finish history, not across arbitrary timings.

#ifndef EXSAMPLE_SERVE_SESSION_MANAGER_H_
#define EXSAMPLE_SERVE_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/query_job.h"
#include "serve/session.h"
#include "serve/stats_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace exsample {
namespace serve {

/// Schedules live QuerySessions over a shared thread pool.
class SessionManager {
 public:
  struct Options {
    /// Slice-execution workers; 0 = hardware_concurrency.
    size_t threads = 0;
    /// Frames per session per scheduling round (the fairness quantum).
    /// Smaller = lower poll latency, more scheduling overhead.
    int64_t slice_frames = 256;
    /// Admission control: maximum sessions in the running state.
    size_t max_live_sessions = 64;
    /// Root seed; session seeds derive from (base_seed, session id).
    uint64_t base_seed = 1;
    /// Optional cross-query warm-start cache (non-owning; must outlive the
    /// manager). Finished ExSample sessions with a repository key are
    /// recorded into it.
    StatsCache* stats_cache = nullptr;
    /// Seed new ExSample sessions from the cache (requires stats_cache).
    bool warm_start = false;
    /// Trust placed in cached statistics when seeding priors.
    double warm_start_weight = 0.25;
    /// Optional metrics registry (non-owning; must outlive the manager).
    /// When set, the manager registers the serve.* and core.* families and
    /// every session it opens reports into them — with no effect on any
    /// session's results (instrumentation touches no RNG).
    obs::Registry* metrics = nullptr;
  };

  SessionManager() : SessionManager(Options()) {}
  explicit SessionManager(Options options);
  /// Cancels nothing; finishes the in-flight round, then stops scheduling.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session for `job` (job.id is overwritten with the assigned
  /// session id). `repo_key` names the repository for the warm-start cache
  /// ("" disables caching for this session). Fails with FailedPrecondition
  /// when max_live_sessions sessions are already running.
  Result<int64_t> Open(exec::QueryJob job, SessionOptions session_options = {},
                       const std::string& repo_key = "");

  /// Drains new results / progress for one session.
  Result<PollResult> Poll(int64_t session_id);

  /// Whether the session was seeded from the stats cache, without draining
  /// any results (Poll would consume the client's exactly-once stream).
  Result<bool> WarmStarted(int64_t session_id) const;

  /// Stops a session early (its partial result stays pollable).
  Status Cancel(int64_t session_id);

  /// Removes a session (cancelling it first if still running). Its results
  /// become unreachable; its admission slot frees immediately.
  Status Close(int64_t session_id);

  /// Sessions currently in the running state (the admission-counted set).
  size_t live_sessions() const;
  /// Sessions tracked (running + finished-but-not-closed).
  size_t open_sessions() const;
  /// Sessions ever opened.
  int64_t total_opened() const;

  /// Blocks until no session is running (all done / cancelled / closed).
  void WaitAllDone();

  const Options& options() const { return options_; }

 private:
  void SchedulerLoop();
  size_t LiveLocked() const;
  /// Records a finished session's chunk statistics into the cache, at most
  /// once per session.
  void MaybeRecordStats(QuerySession* session);

  const Options options_;
  ThreadPool pool_;
  /// Sinks registered in options_.metrics; all-null when uninstrumented.
  ServeMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // wakes the scheduler
  std::condition_variable idle_cv_;  // signals progress to waiters
  /// shared_ptr so an in-flight round keeps a session alive across Close.
  std::map<int64_t, std::shared_ptr<QuerySession>> sessions_;
  int64_t next_id_ = 1;
  int64_t total_opened_ = 0;
  bool stop_ = false;
  /// True while the scheduler is between submitting a round and finishing
  /// its post-round harvest; WaitAllDone waits it out so callers observe
  /// cache records of every finished session.
  bool round_in_flight_ = false;

  std::thread scheduler_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_SESSION_MANAGER_H_
