// StatsCache: cross-query warm-start statistics.
//
// EKO (Bang et al., 2021) observes that what a sampling query learns about a
// stored video is reusable by later queries over the same video. Here the
// learned state is ExSample's per-chunk (N1, n) bandit statistics: when a
// session finishes, SessionManager records its ChunkStats under the
// (repository key, class id) it queried; when a new session opens with warm
// start enabled, the accumulated statistics are averaged over contributing
// queries, scaled down by a confidence weight, and seeded into the fresh
// ExSampleFrameSource as pseudo-counts (core::ChunkPrior). A warm-started
// query therefore begins with a belief already concentrated on the chunks
// that paid off before, instead of re-spending samples on cold exploration.
//
// The cache is thread-safe (sessions finish on pool workers) and optionally
// persists to a small line-based text file so a serving process can carry
// statistics across restarts.

#ifndef EXSAMPLE_SERVE_STATS_CACHE_H_
#define EXSAMPLE_SERVE_STATS_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/chunk_stats.h"
#include "core/frame_source.h"
#include "detect/detection.h"
#include "util/status.h"

namespace exsample {
namespace serve {

/// Accumulates per-(repository, class) chunk statistics across queries and
/// produces scaled warm-start priors for new ones.
class StatsCache {
 public:
  /// Merges one finished query's statistics into the entry for
  /// (repo_key, class_id). Negative raw N1 values are clamped at zero
  /// before accumulation (a prior must not owe evidence). A stats object
  /// whose chunk count differs from the existing entry's replaces it (the
  /// repository was re-chunked; stale shapes are useless).
  ///
  /// `seeded` (may be empty) are the warm-start priors this query itself
  /// started from: they are subtracted first so only evidence the query
  /// actually observed enters the cache — otherwise each warm-started
  /// generation would re-deposit its inherited pseudo-counts and history
  /// would compound beyond the intended weight.
  void Record(const std::string& repo_key, detect::ClassId class_id,
              const core::ChunkStats& stats,
              const std::vector<core::ChunkPrior>& seeded = {});

  /// Warm-start priors for a new query: per-chunk
  /// round(weight * accumulated / queries). Empty when no entry exists.
  /// `weight` in (0, 1] controls how much a new query trusts history.
  std::vector<core::ChunkPrior> Lookup(const std::string& repo_key,
                                       detect::ClassId class_id,
                                       double weight) const;

  /// Number of distinct (repo_key, class) entries.
  size_t size() const;
  /// Total queries recorded across all entries.
  int64_t queries_recorded() const;

  /// Writes the cache to a text file (overwrites).
  Status Save(const std::string& path) const;
  /// Merges a previously saved cache into this one. Missing file is
  /// NotFound; corrupted, truncated, or version-skewed content is
  /// InvalidArgument and leaves the cache exactly as it was (all-or-nothing
  /// — the file is fully validated before anything merges).
  Status Load(const std::string& path);

 private:
  struct Entry {
    std::vector<int64_t> n1;
    std::vector<int64_t> n;
    int64_t queries = 0;
  };
  using Key = std::pair<std::string, detect::ClassId>;

  void MergeLocked(const Key& key, const Entry& entry);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_STATS_CACHE_H_
