// StatsCache: cross-query warm-start statistics.
//
// EKO (Bang et al., 2021) observes that what a sampling query learns about a
// stored video is reusable by later queries over the same video. Here the
// learned state is ExSample's per-chunk (N1, n) bandit statistics: when a
// session finishes, SessionManager records its ChunkStats under the
// (repository key, predicate key) it queried; when a new session opens with
// warm start enabled, the accumulated statistics are averaged over
// contributing queries, scaled down by a confidence weight, and seeded into
// the fresh ExSampleFrameSource as pseudo-counts (core::ChunkPrior). A
// warm-started query therefore begins with a belief already concentrated on
// the chunks that paid off before, instead of re-spending samples on cold
// exploration.
//
// Rows are keyed by the predicate's canonical serialized form
// (core::PredicateKey): single-class history lives under "c<id>" — the same
// row whether the class was queried alone, as a constituent of a kMultiClass
// session, or (in the composing lookup) consulted for a conjunction. A
// composite predicate with no exact row composes its constituents'
// single-class rows: per chunk, N1 = the minimum across constituents (a
// conjunction result needs every class, so the scarcest class bounds the
// expectation) and n = the maximum (the chunk was explored at least that
// hard). Single-class priors thereby compose into conjunctions — the
// EKO-style reuse the refactor preserves per constituent class.
//
// The cache is thread-safe (sessions finish on pool workers) and optionally
// persists to a small line-based text file (format v2; v1 files — keyed by
// raw class id — are rejected all-or-nothing, mirroring the PR 3
// hardening) so a serving process can carry statistics across restarts.

#ifndef EXSAMPLE_SERVE_STATS_CACHE_H_
#define EXSAMPLE_SERVE_STATS_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/chunk_stats.h"
#include "core/frame_source.h"
#include "core/predicate.h"
#include "detect/detection.h"
#include "util/status.h"

namespace exsample {
namespace serve {

/// Accumulates per-(repository, predicate) chunk statistics across queries
/// and produces scaled warm-start priors for new ones.
class StatsCache {
 public:
  /// Merges one finished query's statistics into the entry for
  /// (repo_key, predicate_key). Negative raw N1 values are clamped at zero
  /// before accumulation (a prior must not owe evidence). A stats object
  /// whose chunk count differs from the existing entry's replaces it (the
  /// repository was re-chunked; stale shapes are useless).
  ///
  /// `seeded` (may be empty) are the warm-start priors this query itself
  /// started from: they are subtracted first so only evidence the query
  /// actually observed enters the cache — otherwise each warm-started
  /// generation would re-deposit its inherited pseudo-counts and history
  /// would compound beyond the intended weight.
  void Record(const std::string& repo_key, const std::string& predicate_key,
              const core::ChunkStats& stats,
              const std::vector<core::ChunkPrior>& seeded = {});
  /// Single-class convenience: records under the canonical "c<id>" key.
  void Record(const std::string& repo_key, detect::ClassId class_id,
              const core::ChunkStats& stats,
              const std::vector<core::ChunkPrior>& seeded = {});

  /// Warm-start priors for a new query: per-chunk
  /// round(weight * accumulated / queries) from the exact row. Empty when
  /// no entry exists. `weight` in (0, 1] controls how much a new query
  /// trusts history.
  std::vector<core::ChunkPrior> Lookup(const std::string& repo_key,
                                       const std::string& predicate_key,
                                       double weight) const;
  /// Single-class convenience: the "c<id>" row.
  std::vector<core::ChunkPrior> Lookup(const std::string& repo_key,
                                       detect::ClassId class_id,
                                       double weight) const;

  /// Priors for a composite predicate: the exact row when one exists, else
  /// composed from the constituents' single-class rows (all must exist with
  /// equal chunk counts; per chunk n1 = min, n = max across constituents —
  /// see file comment). kSingleClass falls through to the exact lookup;
  /// kMultiClass constituents warm-start individually (the session manager
  /// looks each class up by "c<id>"), so composition never applies to them.
  std::vector<core::ChunkPrior> LookupPredicate(
      const std::string& repo_key, const core::QueryPredicate& predicate,
      double weight) const;

  /// Number of distinct (repo_key, predicate) entries.
  size_t size() const;
  /// Total queries recorded across all entries.
  int64_t queries_recorded() const;

  /// Writes the cache to a text file (overwrites).
  Status Save(const std::string& path) const;
  /// Merges a previously saved cache into this one. Missing file is
  /// NotFound; corrupted, truncated, or version-skewed content — including
  /// any pre-predicate v1 file and any entry whose key fails the canonical
  /// predicate-key grammar — is InvalidArgument and leaves the cache
  /// exactly as it was (all-or-nothing — the file is fully validated
  /// before anything merges).
  Status Load(const std::string& path);

 private:
  struct Entry {
    std::vector<int64_t> n1;
    std::vector<int64_t> n;
    int64_t queries = 0;
  };
  using Key = std::pair<std::string, std::string>;

  void MergeLocked(const Key& key, const Entry& entry);
  std::vector<core::ChunkPrior> LookupLocked(const Key& key,
                                             double weight) const;

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_STATS_CACHE_H_
