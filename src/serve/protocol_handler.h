// ProtocolHandler: the exsample_serve NDJSON command protocol, factored out
// of the tool's stdin loop so every transport (stdin pipe, TCP connection)
// speaks exactly the same dialect and is tested against the same code.
//
// One handler serves one client: it parses one protocol line at a time,
// dispatches open/poll/cancel/close/stats/quit against a shared
// serve::SessionManager, and tracks which sessions this client opened so
// (a) a network peer cannot poll or cancel another connection's sessions
// and (b) a disconnecting client's sessions can be closed and their
// admission slots freed. Lines may end in "\r" (CRLF clients — netcat on
// Windows, most line-oriented network tools); the trailing CR is stripped
// before parsing, in this one place, for every transport.
//
// Thread model: a handler is single-client, single-threaded — one
// connection's requests are handled in order on its owning event-loop
// shard. Handlers for *different* connections may run on different shard
// threads concurrently: everything they share is internally locked
// (SessionManager, StatsCache, and DatasetPool, whose generated datasets
// are immutable once built and therefore safe to read lock-free).

#ifndef EXSAMPLE_SERVE_PROTOCOL_HANDLER_H_
#define EXSAMPLE_SERVE_PROTOCOL_HANDLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "util/json.h"

namespace exsample {
namespace dist {
class WorkerState;
}  // namespace dist
namespace serve {

/// Datasets generated on demand and shared by every session (on any
/// connection) that names the same (preset, scale); they must outlive their
/// sessions, so the pool lives for the whole process. Internally locked:
/// handlers on different net::Server shards share one pool, and first-touch
/// generation serializes behind the mutex (two shards opening the same
/// never-seen preset wait rather than generate twice). The returned
/// Dataset is immutable after generation, so sessions read it without the
/// lock.
class DatasetPool {
 public:
  explicit DatasetPool(uint64_t seed) : seed_(seed) {}

  /// Returns the dataset for (preset, scale), generating it on first use,
  /// or nullptr for an unknown preset name. Thread-safe.
  const data::Dataset* Get(const std::string& preset, double scale);

 private:
  const uint64_t seed_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<data::Dataset>> datasets_;
};

/// One client's view of the serve protocol.
class ProtocolHandler {
 public:
  struct Options {
    /// Dataset scale used when an open omits "scale".
    double default_scale = 0.1;
    /// Echoed by the "stats" command (whether the manager warm-starts).
    bool warm_start = false;
    /// Close this handler's surviving sessions on destruction. Network
    /// connections set this so a disconnect frees admission slots; the
    /// stdin transport leaves it off to preserve the historical behavior
    /// that sessions still running at EOF are dropped un-recorded.
    bool close_sessions_on_destroy = false;
    /// Registry snapshotted by the "metrics" command (non-owning, may be
    /// null — the command then reports metrics as unavailable).
    obs::Registry* metrics = nullptr;
    /// Transport-level status merged into "stats" and "metrics" responses:
    /// uptime, shard count, per-shard connection counts. Supplied by the
    /// tool (which knows whether it serves stdin or TCP); must be
    /// thread-safe — handlers on different shards call it concurrently.
    std::function<Json()> server_info;
  };

  /// All pointers are non-owning and must outlive the handler.
  ProtocolHandler(SessionManager* manager, StatsCache* cache,
                  DatasetPool* datasets, Options options);
  ~ProtocolHandler();

  ProtocolHandler(const ProtocolHandler&) = delete;
  ProtocolHandler& operator=(const ProtocolHandler&) = delete;

  struct Outcome {
    /// Serialized JSON response, no trailing newline; empty when the line
    /// produced no response (blank line, or lone "\r").
    std::string response;
    /// True after a "quit": the transport should end this client's loop.
    bool quit = false;
  };

  /// Handles one protocol line (no trailing '\n'; a trailing '\r' is
  /// stripped here). Never throws; malformed input yields an error
  /// response.
  Outcome HandleLine(const std::string& line);

  /// Closes every session this handler still owns (frees their admission
  /// slots; partial results become unreachable). Used on disconnect and
  /// during server drain.
  void CloseAllSessions();

  /// Sessions opened by this handler and not yet closed.
  size_t owned_sessions() const { return owned_.size(); }

 private:
  Json Dispatch(const Json& cmd);
  Json HandleOpen(const Json& cmd);
  Json HandlePoll(const Json& cmd);
  /// Routes dist.* verbs to the lazily created worker state (one per
  /// connection, like the owned-session set: a coordinator's shards are
  /// private to its connection and torn down — statistics recorded —
  /// when it disconnects).
  Json DispatchDist(const std::string& name, const Json& cmd);
  /// Folds the transport's server_info fields (uptime, shards, per-shard
  /// connections) into a response object; no-op without a callback.
  void MergeServerInfo(Json* response) const;
  /// Shared poll/cancel/close guard: owned session id or an error. A
  /// session opened by another handler is reported exactly like one that
  /// does not exist, so clients cannot probe each other.
  bool CheckOwned(int64_t id, Json* error) const;

  SessionManager* const manager_;
  StatsCache* const cache_;
  DatasetPool* const datasets_;
  const Options options_;
  std::set<int64_t> owned_;
  /// Shard sessions opened by dist.* verbs (null until the first one).
  std::unique_ptr<dist::WorkerState> dist_worker_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_PROTOCOL_HANDLER_H_
