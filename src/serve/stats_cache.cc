#include "serve/stats_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace exsample {
namespace serve {
namespace {

std::string ClassKey(detect::ClassId class_id) {
  return "c" + std::to_string(class_id);
}

}  // namespace

void StatsCache::Record(const std::string& repo_key,
                        const std::string& predicate_key,
                        const core::ChunkStats& stats,
                        const std::vector<core::ChunkPrior>& seeded) {
  Entry incoming;
  const int32_t k = stats.num_chunks();
  const bool subtract = seeded.size() == static_cast<size_t>(k);
  incoming.n1.reserve(static_cast<size_t>(k));
  incoming.n.reserve(static_cast<size_t>(k));
  for (int32_t j = 0; j < k; ++j) {
    int64_t n1 = stats.ClampedN1(j);
    int64_t n = stats.n(j);
    if (subtract) {
      n1 -= seeded[static_cast<size_t>(j)].n1;
      n -= seeded[static_cast<size_t>(j)].n;
    }
    incoming.n1.push_back(n1 > 0 ? n1 : 0);
    incoming.n.push_back(n > 0 ? n : 0);
  }
  incoming.queries = 1;
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked(Key(repo_key, predicate_key), incoming);
}

void StatsCache::Record(const std::string& repo_key, detect::ClassId class_id,
                        const core::ChunkStats& stats,
                        const std::vector<core::ChunkPrior>& seeded) {
  Record(repo_key, ClassKey(class_id), stats, seeded);
}

void StatsCache::MergeLocked(const Key& key, const Entry& entry) {
  Entry& slot = entries_[key];
  if (slot.n1.size() != entry.n1.size()) {
    slot = entry;  // new entry, or the repository was re-chunked
    return;
  }
  for (size_t j = 0; j < entry.n1.size(); ++j) {
    slot.n1[j] += entry.n1[j];
    slot.n[j] += entry.n[j];
  }
  slot.queries += entry.queries;
}

std::vector<core::ChunkPrior> StatsCache::LookupLocked(const Key& key,
                                                       double weight) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.queries <= 0) return {};
  const Entry& entry = it->second;
  const double scale = weight / static_cast<double>(entry.queries);
  std::vector<core::ChunkPrior> priors(entry.n1.size());
  for (size_t j = 0; j < entry.n1.size(); ++j) {
    priors[j].n1 = static_cast<int64_t>(
        std::llround(scale * static_cast<double>(entry.n1[j])));
    priors[j].n = static_cast<int64_t>(
        std::llround(scale * static_cast<double>(entry.n[j])));
  }
  return priors;
}

std::vector<core::ChunkPrior> StatsCache::Lookup(
    const std::string& repo_key, const std::string& predicate_key,
    double weight) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LookupLocked(Key(repo_key, predicate_key), weight);
}

std::vector<core::ChunkPrior> StatsCache::Lookup(const std::string& repo_key,
                                                 detect::ClassId class_id,
                                                 double weight) const {
  return Lookup(repo_key, ClassKey(class_id), weight);
}

std::vector<core::ChunkPrior> StatsCache::LookupPredicate(
    const std::string& repo_key, const core::QueryPredicate& predicate,
    double weight) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::ChunkPrior> exact =
      LookupLocked(Key(repo_key, core::PredicateKey(predicate)), weight);
  if (!exact.empty() || predicate.is_single() ||
      predicate.kind == core::PredicateKind::kMultiClass) {
    return exact;
  }
  // Compose the constituents' single-class rows. All must exist and agree
  // on the chunk count — one cold or re-chunked constituent makes the
  // composition meaningless, so that is a cold start, not a partial one.
  std::vector<core::ChunkPrior> composed;
  for (size_t i = 0; i < predicate.classes.size(); ++i) {
    std::vector<core::ChunkPrior> part =
        LookupLocked(Key(repo_key, ClassKey(predicate.classes[i])), weight);
    if (part.empty() || (i > 0 && part.size() != composed.size())) return {};
    if (i == 0) {
      composed = std::move(part);
      continue;
    }
    for (size_t j = 0; j < composed.size(); ++j) {
      // A composite result needs every constituent: the scarcest class
      // bounds N1. Exploration effort is the most any constituent spent.
      composed[j].n1 = std::min(composed[j].n1, part[j].n1);
      composed[j].n = std::max(composed[j].n, part[j].n);
    }
  }
  return composed;
}

size_t StatsCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t StatsCache::queries_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.queries;
  return total;
}

Status StatsCache::Save(const std::string& path) const {
  // Write-then-rename so the file at `path` is always a complete snapshot:
  // a crash (or full disk) mid-write leaves at worst a stale .tmp behind,
  // never a truncated cache that the all-or-nothing Load would discard —
  // which used to silently cost a serving process its entire warm-start
  // history. The temp file lives in the same directory so the rename stays
  // within one filesystem and is atomic.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      return Status::InvalidArgument("cannot write stats cache: " + tmp);
    }
    std::lock_guard<std::mutex> lock(mu_);
    out << "exsample-stats-cache v2\n";
    for (const auto& [key, entry] : entries_) {
      // The predicate key is whitespace-free by grammar; the repo key may
      // contain spaces, so it goes last and runs to end of line.
      out << "entry " << key.second << ' ' << entry.queries << ' '
          << entry.n1.size() << ' ' << key.first << '\n';
      out << "n1";
      for (int64_t v : entry.n1) out << ' ' << v;
      out << "\nn";
      for (int64_t v : entry.n) out << ' ' << v;
      out << '\n';
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::InvalidArgument("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot replace stats cache: " + path);
  }
  return Status::Ok();
}

Status StatsCache::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("stats cache not found: " + path);
  }
  std::string line;
  // Exact-version match only: v1 rows were keyed by raw class id, which the
  // predicate-keyed cache cannot attribute — re-learning beats silently
  // merging history under the wrong key.
  if (!std::getline(in, line) || line != "exsample-stats-cache v2") {
    return Status::InvalidArgument(
        "bad stats cache header (expected 'exsample-stats-cache v2'): " +
        path);
  }
  // Parse the whole file into a staging area first: corrupted, truncated,
  // or version-skewed files must fail cleanly and leave the live cache
  // exactly as it was — a serving process would otherwise warm-start from
  // half a file.
  std::vector<std::pair<Key, Entry>> staged;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string tag, predicate_key;
    int64_t queries = 0, chunks = 0;
    header >> tag >> predicate_key >> queries >> chunks;
    std::string repo_key;
    std::getline(header, repo_key);
    if (!repo_key.empty() && repo_key.front() == ' ') repo_key.erase(0, 1);
    // Upper bound guards resize() against corrupted/hostile files; real
    // chunkings are a few hundred entries (§IV-C sweeps 16..512). The key
    // must be a canonical predicate spelling — anything else (including a
    // v1-style bare class id smuggled under a v2 header) is corruption.
    constexpr int64_t kMaxChunks = int64_t{1} << 20;
    if (tag != "entry" || header.fail() || chunks <= 0 ||
        chunks > kMaxChunks || queries <= 0 ||
        !core::ParsePredicateKey(predicate_key).ok()) {
      return Status::InvalidArgument("bad stats cache entry line: " + line);
    }
    Entry entry;
    entry.queries = queries;
    entry.n1.resize(static_cast<size_t>(chunks));
    entry.n.resize(static_cast<size_t>(chunks));
    const char* expected_tags[] = {"n1", "n"};
    int row_index = 0;
    for (std::vector<int64_t>* vec : {&entry.n1, &entry.n}) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated stats cache: " + path);
      }
      std::istringstream row(line);
      row >> tag;
      if (tag != expected_tags[row_index++]) {
        return Status::InvalidArgument("bad stats cache row tag: " + line);
      }
      for (int64_t& v : *vec) {
        row >> v;
        // Counts are non-negative by construction (negative N1 is clamped
        // before Record); a negative here means corruption.
        if (row.fail() || v < 0) {
          return Status::InvalidArgument("bad stats cache row: " + line);
        }
      }
      std::string extra;
      if (row >> extra) {
        return Status::InvalidArgument(
            "trailing data on stats cache row: " + line);
      }
    }
    staged.emplace_back(Key(repo_key, predicate_key), std::move(entry));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : staged) MergeLocked(key, entry);
  return Status::Ok();
}

}  // namespace serve
}  // namespace exsample
