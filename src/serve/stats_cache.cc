#include "serve/stats_cache.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace exsample {
namespace serve {

void StatsCache::Record(const std::string& repo_key, detect::ClassId class_id,
                        const core::ChunkStats& stats,
                        const std::vector<core::ChunkPrior>& seeded) {
  Entry incoming;
  const int32_t k = stats.num_chunks();
  const bool subtract = seeded.size() == static_cast<size_t>(k);
  incoming.n1.reserve(static_cast<size_t>(k));
  incoming.n.reserve(static_cast<size_t>(k));
  for (int32_t j = 0; j < k; ++j) {
    int64_t n1 = stats.ClampedN1(j);
    int64_t n = stats.n(j);
    if (subtract) {
      n1 -= seeded[static_cast<size_t>(j)].n1;
      n -= seeded[static_cast<size_t>(j)].n;
    }
    incoming.n1.push_back(n1 > 0 ? n1 : 0);
    incoming.n.push_back(n > 0 ? n : 0);
  }
  incoming.queries = 1;
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked(Key(repo_key, class_id), incoming);
}

void StatsCache::MergeLocked(const Key& key, const Entry& entry) {
  Entry& slot = entries_[key];
  if (slot.n1.size() != entry.n1.size()) {
    slot = entry;  // new entry, or the repository was re-chunked
    return;
  }
  for (size_t j = 0; j < entry.n1.size(); ++j) {
    slot.n1[j] += entry.n1[j];
    slot.n[j] += entry.n[j];
  }
  slot.queries += entry.queries;
}

std::vector<core::ChunkPrior> StatsCache::Lookup(const std::string& repo_key,
                                                 detect::ClassId class_id,
                                                 double weight) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(repo_key, class_id));
  if (it == entries_.end() || it->second.queries <= 0) return {};
  const Entry& entry = it->second;
  const double scale = weight / static_cast<double>(entry.queries);
  std::vector<core::ChunkPrior> priors(entry.n1.size());
  for (size_t j = 0; j < entry.n1.size(); ++j) {
    priors[j].n1 = static_cast<int64_t>(
        std::llround(scale * static_cast<double>(entry.n1[j])));
    priors[j].n = static_cast<int64_t>(
        std::llround(scale * static_cast<double>(entry.n[j])));
  }
  return priors;
}

size_t StatsCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t StatsCache::queries_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.queries;
  return total;
}

Status StatsCache::Save(const std::string& path) const {
  // Write-then-rename so the file at `path` is always a complete snapshot:
  // a crash (or full disk) mid-write leaves at worst a stale .tmp behind,
  // never a truncated cache that the all-or-nothing Load would discard —
  // which used to silently cost a serving process its entire warm-start
  // history. The temp file lives in the same directory so the rename stays
  // within one filesystem and is atomic.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      return Status::InvalidArgument("cannot write stats cache: " + tmp);
    }
    std::lock_guard<std::mutex> lock(mu_);
    out << "exsample-stats-cache v1\n";
    for (const auto& [key, entry] : entries_) {
      out << "entry " << key.second << ' ' << entry.queries << ' '
          << entry.n1.size() << ' ' << key.first << '\n';
      out << "n1";
      for (int64_t v : entry.n1) out << ' ' << v;
      out << "\nn";
      for (int64_t v : entry.n) out << ' ' << v;
      out << '\n';
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::InvalidArgument("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot replace stats cache: " + path);
  }
  return Status::Ok();
}

Status StatsCache::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("stats cache not found: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != "exsample-stats-cache v1") {
    return Status::InvalidArgument(
        "bad stats cache header (expected 'exsample-stats-cache v1'): " +
        path);
  }
  // Parse the whole file into a staging area first: corrupted, truncated,
  // or version-skewed files must fail cleanly and leave the live cache
  // exactly as it was — a serving process would otherwise warm-start from
  // half a file.
  std::vector<std::pair<Key, Entry>> staged;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string tag;
    int64_t class_id = 0, queries = 0, chunks = 0;
    header >> tag >> class_id >> queries >> chunks;
    std::string repo_key;
    std::getline(header, repo_key);
    if (!repo_key.empty() && repo_key.front() == ' ') repo_key.erase(0, 1);
    // Upper bound guards resize() against corrupted/hostile files; real
    // chunkings are a few hundred entries (§IV-C sweeps 16..512). The
    // class id must survive the cast to detect::ClassId (int32) unchanged,
    // else corrupted ids would silently merge into the wrong class.
    constexpr int64_t kMaxChunks = int64_t{1} << 20;
    if (tag != "entry" || header.fail() || chunks <= 0 ||
        chunks > kMaxChunks || queries <= 0 || class_id < 0 ||
        class_id > std::numeric_limits<detect::ClassId>::max()) {
      return Status::InvalidArgument("bad stats cache entry line: " + line);
    }
    Entry entry;
    entry.queries = queries;
    entry.n1.resize(static_cast<size_t>(chunks));
    entry.n.resize(static_cast<size_t>(chunks));
    const char* expected_tags[] = {"n1", "n"};
    int row_index = 0;
    for (std::vector<int64_t>* vec : {&entry.n1, &entry.n}) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated stats cache: " + path);
      }
      std::istringstream row(line);
      row >> tag;
      if (tag != expected_tags[row_index++]) {
        return Status::InvalidArgument("bad stats cache row tag: " + line);
      }
      for (int64_t& v : *vec) {
        row >> v;
        // Counts are non-negative by construction (negative N1 is clamped
        // before Record); a negative here means corruption.
        if (row.fail() || v < 0) {
          return Status::InvalidArgument("bad stats cache row: " + line);
        }
      }
      std::string extra;
      if (row >> extra) {
        return Status::InvalidArgument(
            "trailing data on stats cache row: " + line);
      }
    }
    staged.emplace_back(Key(repo_key, static_cast<detect::ClassId>(class_id)),
                        std::move(entry));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : staged) MergeLocked(key, entry);
  return Status::Ok();
}

}  // namespace serve
}  // namespace exsample
