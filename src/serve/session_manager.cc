#include "serve/session_manager.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace exsample {
namespace serve {

SessionManager::SessionManager(Options options)
    : options_(options), pool_(options.threads) {
  if (options_.metrics != nullptr) {
    // One cell per pool worker: concurrent slices land on different cells
    // (sessions are hashed by id), so the hot path never contends.
    metrics_ = ServeMetrics::Register(options_.metrics, pool_.num_threads());
  }
  scheduler_ = std::thread(&SessionManager::SchedulerLoop, this);
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
}

size_t SessionManager::LiveLocked() const {
  size_t live = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->state() == SessionState::kRunning) ++live;
  }
  return live;
}

Result<int64_t> SessionManager::Open(exec::QueryJob job,
                                     SessionOptions session_options,
                                     const std::string& repo_key) {
  const core::QueryPredicate predicate =
      core::EffectivePredicate(job.spec.predicate, job.spec.class_id);
  const bool multi = predicate.kind == core::PredicateKind::kMultiClass;
  if (job.repo == nullptr || !job.make_discriminator ||
      (multi ? !job.make_class_detector : !job.make_detector)) {
    return Status::InvalidArgument(
        "QueryJob needs a repository and detector/discriminator factories");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (LiveLocked() >= options_.max_live_sessions) {
    if (metrics_.admission_rejected != nullptr) {
      metrics_.admission_rejected->Add(1);
    }
    return Status::FailedPrecondition(
        "admission denied: " + std::to_string(options_.max_live_sessions) +
        " sessions already live");
  }
  job.id = next_id_++;
  ++total_opened_;

  std::vector<core::ChunkPrior> warm_priors;
  std::vector<std::vector<core::ChunkPrior>> multi_warm_priors;
  if (options_.warm_start && options_.stats_cache != nullptr &&
      !repo_key.empty() && job.config.strategy == core::Strategy::kExSample &&
      job.chunks != nullptr) {
    bool any_warm = false;
    if (multi) {
      // Each constituent class warm-starts independently from its own
      // "c<id>" row — the same row single-class queries read and write.
      multi_warm_priors.resize(predicate.classes.size());
      for (size_t i = 0; i < predicate.classes.size(); ++i) {
        multi_warm_priors[i] = options_.stats_cache->Lookup(
            repo_key, predicate.classes[i], options_.warm_start_weight);
        if (multi_warm_priors[i].size() != job.chunks->size()) {
          multi_warm_priors[i].clear();
        }
        any_warm = any_warm || !multi_warm_priors[i].empty();
      }
    } else {
      // Exact predicate row first; conjunctions/sequences with no history
      // of their own compose their constituents' single-class rows.
      warm_priors = options_.stats_cache->LookupPredicate(
          repo_key, predicate, options_.warm_start_weight);
      if (warm_priors.size() != job.chunks->size()) warm_priors.clear();
      any_warm = !warm_priors.empty();
    }
    obs::Counter* warm_counter =
        any_warm ? metrics_.warm_hits : metrics_.warm_misses;
    if (warm_counter != nullptr) warm_counter->Add(1);
  }

  const ServeMetrics* metrics =
      options_.metrics != nullptr ? &metrics_ : nullptr;
  auto session = std::make_shared<QuerySession>(
      job, options_.base_seed, session_options, std::move(warm_priors),
      repo_key, metrics,
      static_cast<size_t>(job.id) % std::max<size_t>(1, pool_.num_threads()),
      std::move(multi_warm_priors));
  if (metrics_.sessions_opened != nullptr) metrics_.sessions_opened->Add(1);
  const int64_t id = session->id();
  sessions_.emplace(id, std::move(session));
  work_cv_.notify_all();
  return id;
}

Result<PollResult> SessionManager::Poll(int64_t session_id) {
  std::shared_ptr<QuerySession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(session_id));
    }
    session = it->second;
  }
  return session->Poll();
}

Result<bool> SessionManager::WarmStarted(int64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  return it->second->warm_started();
}

void SessionManager::MaybeRecordStats(QuerySession* session) {
  if (options_.stats_cache == nullptr || session->repo_key().empty()) return;
  if (session->is_multi_class()) {
    // Record each constituent under its own "c<id>" row so multi-class
    // history is reusable by single-class queries (and vice versa).
    bool any = false;
    for (size_t i = 0; i < session->num_classes(); ++i) {
      const core::ChunkStats* stats = session->sub_chunk_stats(i);
      if (stats != nullptr && stats->total_samples() > 0) {
        any = true;
        break;
      }
    }
    if (!any || !session->MarkStatsRecorded()) return;
    for (size_t i = 0; i < session->num_classes(); ++i) {
      const core::ChunkStats* stats = session->sub_chunk_stats(i);
      if (stats == nullptr || stats->total_samples() == 0) continue;
      options_.stats_cache->Record(session->repo_key(),
                                   session->multi_classes()[i], *stats,
                                   session->sub_warm_priors(i));
    }
    return;
  }
  const core::ChunkStats* stats = session->chunk_stats();
  if (stats == nullptr || stats->total_samples() == 0) return;
  // The session itself owns the exactly-once guard: a finished session can
  // be harvested by both the scheduler round and a Cancel/Close.
  if (!session->MarkStatsRecorded()) return;
  // Single-class predicates key as "c<id>" — the exact row this cache has
  // always used — so legacy sessions read and write unchanged rows.
  options_.stats_cache->Record(session->repo_key(),
                               core::PredicateKey(session->predicate()),
                               *stats, session->warm_priors());
}

Status SessionManager::Cancel(int64_t session_id) {
  std::shared_ptr<QuerySession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(session_id));
    }
    session = it->second;
  }
  session->Cancel();
  MaybeRecordStats(session.get());
  idle_cv_.notify_all();
  return Status::Ok();
}

Status SessionManager::Close(int64_t session_id) {
  std::shared_ptr<QuerySession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(session_id));
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Blocks until any in-flight slice completes; an in-flight round's
  // shared_ptr keeps the session alive past this scope.
  session->Cancel();
  MaybeRecordStats(session.get());
  if (metrics_.sessions_closed != nullptr) metrics_.sessions_closed->Add(1);
  idle_cv_.notify_all();
  return Status::Ok();
}

size_t SessionManager::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return LiveLocked();
}

size_t SessionManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

int64_t SessionManager::total_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_opened_;
}

void SessionManager::WaitAllDone() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return !round_in_flight_ && LiveLocked() == 0; });
}

void SessionManager::SchedulerLoop() {
  while (true) {
    // Snapshot the running sessions for one fairness round.
    std::vector<std::shared_ptr<QuerySession>> live;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || LiveLocked() > 0; });
      if (stop_) return;
      live.reserve(sessions_.size());
      for (const auto& [id, session] : sessions_) {
        if (session->state() == SessionState::kRunning) {
          live.push_back(session);
        }
      }
      round_in_flight_ = true;
    }

    // One slice per session, in parallel. Sessions share no mutable state
    // and own their RNG streams, so the round's outcome is independent of
    // worker count and completion order.
    const int64_t slice = options_.slice_frames;
    for (const auto& session : live) {
      pool_.Submit([session, slice] { session->RunSlice(slice); });
    }
    pool_.Wait();

    // Harvest sessions that finished this round into the warm-start cache.
    for (const auto& session : live) {
      if (session->finished()) MaybeRecordStats(session.get());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_in_flight_ = false;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace serve
}  // namespace exsample
