#include "serve/session.h"

#include <cassert>
#include <utility>

#include "exec/multi_query_runner.h"
#include "util/rng.h"

namespace exsample {
namespace serve {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kLimitReached:
      return "limit";
    case StopReason::kSamplesExhausted:
      return "max_samples";
    case StopReason::kBudgetExhausted:
      return "budget";
    case StopReason::kSourceExhausted:
      return "exhausted";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExpired:
      return "deadline";
  }
  return "unknown";
}

namespace {

StopReason FromDone(core::StepStatus::Done done) {
  switch (done) {
    case core::StepStatus::Done::kRunning:
      return StopReason::kNone;
    case core::StepStatus::Done::kLimitReached:
      return StopReason::kLimitReached;
    case core::StepStatus::Done::kSamplesExhausted:
      return StopReason::kSamplesExhausted;
    case core::StepStatus::Done::kBudgetExhausted:
      return StopReason::kBudgetExhausted;
    case core::StepStatus::Done::kSourceExhausted:
      return StopReason::kSourceExhausted;
    case core::StepStatus::Done::kCancelled:
      return StopReason::kCancelled;
  }
  return StopReason::kNone;
}

}  // namespace

ServeMetrics ServeMetrics::Register(obs::Registry* registry, size_t cells) {
  ServeMetrics m;
  m.sessions_opened = registry->GetCounter("serve.sessions_opened");
  m.sessions_finished = registry->GetCounter("serve.sessions_finished");
  m.sessions_cancelled = registry->GetCounter("serve.sessions_cancelled");
  m.sessions_closed = registry->GetCounter("serve.sessions_closed");
  m.admission_rejected = registry->GetCounter("serve.admission_rejected");
  m.slices_run = registry->GetCounter("serve.slices_run", cells);
  m.slice_seconds = registry->GetHistogram("serve.slice_seconds", cells);
  m.polls = registry->GetCounter("serve.polls", cells);
  m.poll_results = registry->GetCounter("serve.poll_results", cells);
  m.ttfr_seconds =
      registry->GetHistogram("serve.time_to_first_result_seconds", cells);
  m.warm_hits = registry->GetCounter("serve.warm_start_hits");
  m.warm_misses = registry->GetCounter("serve.warm_start_misses");
  m.engine.frames_sampled =
      registry->GetCounter("core.frames_sampled", cells);
  m.engine.results_found = registry->GetCounter("core.results_found", cells);
  m.engine.pick_batches = registry->GetCounter("core.pick_batches", cells);
  m.engine.pick_seconds =
      registry->GetHistogram("core.pick_seconds", cells);
  m.engine.picks_by_policy = registry->GetCounter(
      "core.picks_by_policy",
      static_cast<size_t>(core::PolicyKind::kHierBayesUcb) + 1);
  m.engine.cost_per_frame_micros =
      registry->GetGauge("core.cost_per_frame_micros", cells);
  m.pipeline = exec::PipelineMetrics::Register(registry, cells);
  return m;
}

QuerySession::QuerySession(
    const exec::QueryJob& job, uint64_t base_seed, SessionOptions options,
    std::vector<core::ChunkPrior> warm_priors, std::string repo_key,
    const ServeMetrics* metrics, size_t metrics_cell,
    std::vector<std::vector<core::ChunkPrior>> multi_warm_priors)
    : id_(job.id),
      seed_(exec::MultiQueryRunner::JobSeed(base_seed, job.id)),
      repo_key_(std::move(repo_key)),
      class_id_(job.spec.class_id),
      predicate_(
          core::EffectivePredicate(job.spec.predicate, job.spec.class_id)),
      cost_budget_seconds_(job.spec.max_seconds),
      options_(options),
      warm_priors_(std::move(warm_priors)),
      multi_warm_priors_(std::move(multi_warm_priors)),
      metrics_(metrics),
      metrics_cell_(metrics_cell),
      opened_(std::chrono::steady_clock::now()) {
  assert(job.repo != nullptr);

  if (predicate_.kind == core::PredicateKind::kMultiClass) {
    // N per-class engines over one shared decode cache. The MultiClassEngine
    // derives each constituent's (engine seed, detector seed) pair from the
    // session seed with the same SplitMix64 split the single-class path uses.
    assert(job.make_class_detector && job.make_discriminator);
    core::MultiClassOptions mopt;
    mopt.config = job.config;
    mopt.classes = predicate_.classes;
    mopt.make_detector = job.make_class_detector;
    mopt.make_discriminator = job.make_discriminator;
    mopt.warm_start = multi_warm_priors_;
    multi_engine_ = std::make_unique<core::MultiClassEngine>(
        job.repo, job.chunks, std::move(mopt), seed_);
    if (metrics_ != nullptr) {
      multi_engine_->set_metrics(metrics_->engine, metrics_cell_);
    }
    multi_engine_->Begin(job.spec);
    return;
  }

  assert(job.make_detector && job.make_discriminator);

  // Same seed split as MultiQueryRunner::RunAll: engine and detector get
  // independent streams derived from (base_seed, id).
  SplitMix64 stream(seed_);
  const uint64_t engine_seed = stream.Next();
  const uint64_t detector_seed = stream.Next();

  detector_ = job.make_detector(detector_seed);
  discriminator_ = job.make_discriminator();
  core::EngineConfig config = job.config;
  if (!warm_priors_.empty()) config.warm_start = &warm_priors_;
  engine_ = std::make_unique<core::QueryEngine>(
      job.repo, job.chunks, detector_.get(), discriminator_.get(), config,
      engine_seed);
  if (metrics_ != nullptr) {
    engine_->set_metrics(metrics_->engine, metrics_cell_);
  }
  if (job.pipeline_depth > 0) {
    // Pipelined decode -> detect for this session's slices; bit-identical
    // to the serial path, so pipelined and serial sessions may coexist on
    // one manager (and in one determinism matrix).
    batched_detector_ =
        std::make_unique<detect::SerialDetectorAdapter>(detector_.get());
    exec::PipelineOptions popt;
    popt.queue_depth = job.pipeline_depth;
    popt.detect_batch = job.detect_batch;
    popt.decode_threads = job.pipeline_threads;
    pipeline_ = std::make_unique<exec::Pipeline>(
        job.repo, batched_detector_.get(), popt,
        metrics_ != nullptr ? &metrics_->pipeline : nullptr, metrics_cell_);
    engine_->set_executor(pipeline_.get());
  }
  engine_->Begin(job.spec);
}

double QuerySession::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       opened_)
      .count();
}

core::StepStatus QuerySession::StepEngineLocked(int64_t max_frames) {
  return multi_engine_ != nullptr ? multi_engine_->Step(max_frames)
                                  : engine_->Step(max_frames);
}

const core::QueryResult& QuerySession::CurrentResultLocked() const {
  return multi_engine_ != nullptr ? multi_engine_->result()
                                  : engine_->result();
}

void QuerySession::FinishLocked(SessionState state, StopReason reason) {
  stop_reason_ = reason;
  finished_wall_ = ElapsedSeconds();
  final_result_ = multi_engine_ != nullptr ? multi_engine_->TakeResult()
                                           : engine_->TakeResult();
  if (metrics_ != nullptr) {
    obs::Counter* counter = state == SessionState::kDone
                                ? metrics_->sessions_finished
                                : metrics_->sessions_cancelled;
    if (counter != nullptr) counter->Add(1);
  }
  // Published last: once observers see a non-running state, the final
  // result and stop reason are in place.
  state_.store(state, std::memory_order_release);
}

bool QuerySession::RunSlice(int64_t max_frames) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != SessionState::kRunning) {
    return false;
  }
  core::StepStatus status;
  if (metrics_ != nullptr && metrics_->slice_seconds != nullptr) {
    const auto slice_start = std::chrono::steady_clock::now();
    status = StepEngineLocked(max_frames);
    metrics_->slice_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      slice_start)
            .count(),
        metrics_cell_);
  } else {
    status = StepEngineLocked(max_frames);
  }
  if (metrics_ != nullptr && metrics_->slices_run != nullptr) {
    metrics_->slices_run->Add(1, metrics_cell_);
  }
  if (first_result_wall_ < 0.0 && status.total_results > 0) {
    first_result_wall_ = ElapsedSeconds();
    if (metrics_ != nullptr && metrics_->ttfr_seconds != nullptr) {
      metrics_->ttfr_seconds->Observe(first_result_wall_, metrics_cell_);
    }
  }
  if (!status.running()) {
    FinishLocked(SessionState::kDone, FromDone(status.done));
    return false;
  }
  if (options_.deadline_seconds > 0.0 &&
      ElapsedSeconds() >= options_.deadline_seconds) {
    FinishLocked(SessionState::kCancelled, StopReason::kDeadlineExpired);
    return false;
  }
  return true;
}

PollResult QuerySession::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionState state = state_.load(std::memory_order_relaxed);
  const core::QueryResult& current =
      state == SessionState::kRunning ? CurrentResultLocked() : final_result_;
  PollResult poll;
  poll.session_id = id_;
  poll.state = state;
  poll.stop_reason = stop_reason_;
  poll.new_results.assign(current.results.begin() +
                              static_cast<int64_t>(drained_),
                          current.results.end());
  drained_ = current.results.size();
  poll.total_results = static_cast<int64_t>(current.results.size());
  poll.frames_processed = current.frames_processed;
  poll.cost_seconds = current.total_seconds();
  poll.cost_budget_seconds = cost_budget_seconds_;
  poll.seconds_to_first_result = first_result_wall_;
  poll.wall_seconds =
      state == SessionState::kRunning ? ElapsedSeconds() : finished_wall_;
  poll.warm_started = warm_started();
  if (multi_engine_ != nullptr) {
    poll.multi_class = true;
    // Total reads minus unique decoded frames = reads the shared cache
    // absorbed. Computed from `current` so it stays right after finish,
    // when the merged result has been moved out of the engine.
    poll.cached_reads =
        current.frames_processed -
        static_cast<int64_t>(multi_engine_->decode_cache().size());
  }
  if (metrics_ != nullptr) {
    if (metrics_->polls != nullptr) metrics_->polls->Add(1, metrics_cell_);
    if (metrics_->poll_results != nullptr && !poll.new_results.empty()) {
      metrics_->poll_results->Add(
          static_cast<int64_t>(poll.new_results.size()), metrics_cell_);
    }
  }
  return poll;
}

void QuerySession::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != SessionState::kRunning) {
    return;
  }
  FinishLocked(SessionState::kCancelled, StopReason::kCancelled);
}

bool QuerySession::MarkStatsRecorded() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_recorded_) return false;
  stats_recorded_ = true;
  return true;
}

const core::QueryResult& QuerySession::result() const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(state_.load(std::memory_order_relaxed) != SessionState::kRunning &&
         "result() requires finished()");
  return final_result_;
}

const core::ChunkStats* QuerySession::chunk_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return multi_engine_ != nullptr ? nullptr : engine_->chunk_stats();
}

size_t QuerySession::num_classes() const {
  assert(multi_engine_ != nullptr);
  return multi_engine_->num_classes();
}

const std::vector<detect::ClassId>& QuerySession::multi_classes() const {
  assert(multi_engine_ != nullptr);
  return multi_engine_->classes();
}

const core::ChunkStats* QuerySession::sub_chunk_stats(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(multi_engine_ != nullptr);
  return multi_engine_->sub_chunk_stats(i);
}

const std::vector<core::ChunkPrior>& QuerySession::sub_warm_priors(
    size_t i) const {
  assert(multi_engine_ != nullptr);
  return multi_engine_->sub_warm_priors(i);
}

}  // namespace serve
}  // namespace exsample
