#include "serve/session.h"

#include <cassert>
#include <utility>

#include "exec/multi_query_runner.h"
#include "util/rng.h"

namespace exsample {
namespace serve {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kLimitReached:
      return "limit";
    case StopReason::kSamplesExhausted:
      return "max_samples";
    case StopReason::kBudgetExhausted:
      return "budget";
    case StopReason::kSourceExhausted:
      return "exhausted";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExpired:
      return "deadline";
  }
  return "unknown";
}

namespace {

StopReason FromDone(core::StepStatus::Done done) {
  switch (done) {
    case core::StepStatus::Done::kRunning:
      return StopReason::kNone;
    case core::StepStatus::Done::kLimitReached:
      return StopReason::kLimitReached;
    case core::StepStatus::Done::kSamplesExhausted:
      return StopReason::kSamplesExhausted;
    case core::StepStatus::Done::kBudgetExhausted:
      return StopReason::kBudgetExhausted;
    case core::StepStatus::Done::kSourceExhausted:
      return StopReason::kSourceExhausted;
    case core::StepStatus::Done::kCancelled:
      return StopReason::kCancelled;
  }
  return StopReason::kNone;
}

}  // namespace

QuerySession::QuerySession(const exec::QueryJob& job, uint64_t base_seed,
                           SessionOptions options,
                           std::vector<core::ChunkPrior> warm_priors,
                           std::string repo_key)
    : id_(job.id),
      seed_(exec::MultiQueryRunner::JobSeed(base_seed, job.id)),
      repo_key_(std::move(repo_key)),
      class_id_(job.spec.class_id),
      cost_budget_seconds_(job.spec.max_seconds),
      options_(options),
      warm_priors_(std::move(warm_priors)),
      opened_(std::chrono::steady_clock::now()) {
  assert(job.repo != nullptr);
  assert(job.make_detector && job.make_discriminator);

  // Same seed split as MultiQueryRunner::RunAll: engine and detector get
  // independent streams derived from (base_seed, id).
  SplitMix64 stream(seed_);
  const uint64_t engine_seed = stream.Next();
  const uint64_t detector_seed = stream.Next();

  detector_ = job.make_detector(detector_seed);
  discriminator_ = job.make_discriminator();
  core::EngineConfig config = job.config;
  if (!warm_priors_.empty()) config.warm_start = &warm_priors_;
  engine_ = std::make_unique<core::QueryEngine>(
      job.repo, job.chunks, detector_.get(), discriminator_.get(), config,
      engine_seed);
  engine_->Begin(job.spec);
}

double QuerySession::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       opened_)
      .count();
}

void QuerySession::FinishLocked(SessionState state, StopReason reason) {
  stop_reason_ = reason;
  finished_wall_ = ElapsedSeconds();
  final_result_ = engine_->TakeResult();
  // Published last: once observers see a non-running state, the final
  // result and stop reason are in place.
  state_.store(state, std::memory_order_release);
}

bool QuerySession::RunSlice(int64_t max_frames) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != SessionState::kRunning) {
    return false;
  }
  const core::StepStatus status = engine_->Step(max_frames);
  if (first_result_wall_ < 0.0 && status.total_results > 0) {
    first_result_wall_ = ElapsedSeconds();
  }
  if (!status.running()) {
    FinishLocked(SessionState::kDone, FromDone(status.done));
    return false;
  }
  if (options_.deadline_seconds > 0.0 &&
      ElapsedSeconds() >= options_.deadline_seconds) {
    FinishLocked(SessionState::kCancelled, StopReason::kDeadlineExpired);
    return false;
  }
  return true;
}

PollResult QuerySession::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionState state = state_.load(std::memory_order_relaxed);
  const core::QueryResult& current =
      state == SessionState::kRunning ? engine_->result() : final_result_;
  PollResult poll;
  poll.session_id = id_;
  poll.state = state;
  poll.stop_reason = stop_reason_;
  poll.new_results.assign(current.results.begin() +
                              static_cast<int64_t>(drained_),
                          current.results.end());
  drained_ = current.results.size();
  poll.total_results = static_cast<int64_t>(current.results.size());
  poll.frames_processed = current.frames_processed;
  poll.cost_seconds = current.total_seconds();
  poll.cost_budget_seconds = cost_budget_seconds_;
  poll.seconds_to_first_result = first_result_wall_;
  poll.wall_seconds =
      state == SessionState::kRunning ? ElapsedSeconds() : finished_wall_;
  poll.warm_started = !warm_priors_.empty();
  return poll;
}

void QuerySession::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != SessionState::kRunning) {
    return;
  }
  FinishLocked(SessionState::kCancelled, StopReason::kCancelled);
}

bool QuerySession::MarkStatsRecorded() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_recorded_) return false;
  stats_recorded_ = true;
  return true;
}

const core::QueryResult& QuerySession::result() const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(state_.load(std::memory_order_relaxed) != SessionState::kRunning &&
         "result() requires finished()");
  return final_result_;
}

const core::ChunkStats* QuerySession::chunk_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_->chunk_stats();
}

}  // namespace serve
}  // namespace exsample
