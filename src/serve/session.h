// QuerySession: one live anytime query.
//
// Wraps a core::QueryEngine driven through the incremental Step API so a
// client can stream results as they surface (ExSample is an anytime
// algorithm — distinct results appear continuously while sampling, §II of
// the paper) instead of waiting for run-to-completion. A session owns its
// detector, discriminator and engine; its randomness derives solely from
// (base_seed, session id) via the JobSeed idiom, so a session's trajectory
// is bit-identical no matter how its slices are scheduled.
//
// Thread model: SessionManager workers call RunSlice; clients call
// Poll/Cancel from any thread. One mutex serializes them — a slice and a
// poll never interleave mid-frame.

#ifndef EXSAMPLE_SERVE_SESSION_H_
#define EXSAMPLE_SERVE_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/frame_source.h"
#include "core/multi_engine.h"
#include "core/predicate.h"
#include "detect/batched_detector.h"
#include "exec/pipeline.h"
#include "exec/query_job.h"
#include "obs/metrics.h"

namespace exsample {
namespace serve {

/// Metric sinks for the serving layer (all pointers owned by an
/// obs::Registry and non-owning here; a default-constructed instance — all
/// null — disables everything). Sessions write the session-scoped families;
/// the SessionManager writes the manager-scoped ones. The nested
/// EngineMetrics are handed to each session's engine.
struct ServeMetrics {
  obs::Counter* sessions_opened = nullptr;
  obs::Counter* sessions_finished = nullptr;   // engine terminated on its own
  obs::Counter* sessions_cancelled = nullptr;  // cancel / deadline
  obs::Counter* sessions_closed = nullptr;     // explicit Close()
  obs::Counter* admission_rejected = nullptr;
  obs::Counter* slices_run = nullptr;
  obs::LatencyHistogram* slice_seconds = nullptr;
  obs::Counter* polls = nullptr;
  obs::Counter* poll_results = nullptr;  // results delivered via Poll
  /// Wall time from open to the first surfaced result.
  obs::LatencyHistogram* ttfr_seconds = nullptr;
  obs::Counter* warm_hits = nullptr;    // StatsCache lookup found priors
  obs::Counter* warm_misses = nullptr;  // lookup ran and came back empty
  core::EngineMetrics engine;
  /// Handed to each pipelined session's exec::Pipeline (queue depth gauge,
  /// decode/detect latency histograms, stall counters).
  exec::PipelineMetrics pipeline;

  /// Registers every serve.* and core.* family into `registry` (idempotent;
  /// shared names must agree on `cells`). Cells spread concurrent writers:
  /// the manager hashes session ids into them.
  static ServeMetrics Register(obs::Registry* registry, size_t cells);
};

/// Client-visible lifecycle state.
enum class SessionState {
  kRunning,    ///< scheduler is still slicing this session
  kDone,       ///< engine terminated (limit / budget / exhaustion)
  kCancelled,  ///< stopped early by Cancel() or a deadline
};

/// Why a session stopped (kNone while running).
enum class StopReason {
  kNone,
  kLimitReached,
  kSamplesExhausted,
  kBudgetExhausted,
  kSourceExhausted,
  kCancelled,
  kDeadlineExpired,
};

const char* SessionStateName(SessionState state);
const char* StopReasonName(StopReason reason);

/// Per-session serving options (the engine-level stopping rules — result
/// limit, frame cap, modeled-cost budget — live in core::QuerySpec).
struct SessionOptions {
  /// Wall-clock deadline in seconds since open; 0 = none. Checked at slice
  /// boundaries, so enforcement granularity is one slice. Unlike the
  /// modeled-cost budget this depends on host speed: turning it on trades
  /// determinism for latency control.
  double deadline_seconds = 0.0;
};

/// One Poll() snapshot: everything new since the previous poll plus
/// cumulative progress.
struct PollResult {
  int64_t session_id = 0;
  SessionState state = SessionState::kRunning;
  StopReason stop_reason = StopReason::kNone;
  /// Results surfaced since the last Poll, each delivered exactly once
  /// across the lifetime of the session. "Result" means a discriminator
  /// d0 verdict: with an imperfect discriminator the same object can
  /// appear more than once, exactly as QueryResult::results counts it.
  std::vector<detect::Detection> new_results;
  int64_t total_results = 0;
  int64_t frames_processed = 0;
  /// Modeled decode + inference seconds spent so far.
  double cost_seconds = 0.0;
  /// The modeled-cost budget this session runs under (QuerySpec::max_seconds
  /// at open; 0 = unlimited), echoed so clients can render spend-vs-budget
  /// without tracking the open request themselves.
  double cost_budget_seconds = 0.0;
  /// Wall seconds from open to the first result; -1 until one surfaces.
  double seconds_to_first_result = -1.0;
  /// Wall seconds from open to now (or to termination, once stopped).
  double wall_seconds = 0.0;
  /// True when the session was seeded from the cross-query stats cache.
  bool warm_started = false;
  /// True for kMultiClass sessions: new_results interleaves the per-class
  /// streams (each detection carries its class_id).
  bool multi_class = false;
  /// kMultiClass only: frames served from the shared decode cache so far —
  /// the decode work the constituent classes did NOT repeat.
  int64_t cached_reads = 0;
};

/// A live anytime query. Construction builds the engine exactly the way
/// exec::MultiQueryRunner would for a QueryJob with id = session id, so a
/// session reproduces the corresponding batch job bit for bit.
class QuerySession {
 public:
  /// `job.id` is the session id. `warm_priors` (possibly empty) are
  /// chunk-stat pseudo-counts seeded into an ExSample source; the session
  /// stores them so the engine's non-owning config pointer stays valid.
  /// `metrics` (non-owning, may be null) receives this session's slice /
  /// time-to-first-result observations on cell `metrics_cell` and is wired
  /// through to the engine; instruments must outlive the session.
  ///
  /// When `job.spec.predicate` is kMultiClass, the session drives a
  /// core::MultiClassEngine (per-class QueryEngines over one shared decode
  /// cache) instead of a single QueryEngine; `multi_warm_priors` — parallel
  /// to the predicate's classes — seeds each constituent and `warm_priors`
  /// is ignored. Multi-class sessions run the serial execution path
  /// (job.pipeline_depth does not apply).
  QuerySession(const exec::QueryJob& job, uint64_t base_seed,
               SessionOptions options = {},
               std::vector<core::ChunkPrior> warm_priors = {},
               std::string repo_key = {},
               const ServeMetrics* metrics = nullptr,
               size_t metrics_cell = 0,
               std::vector<std::vector<core::ChunkPrior>> multi_warm_priors =
                   {});

  int64_t id() const { return id_; }
  uint64_t seed() const { return seed_; }
  /// Cache key of the repository this session queried ("" = uncacheable).
  const std::string& repo_key() const { return repo_key_; }
  detect::ClassId class_id() const { return class_id_; }
  /// The (normalized) predicate this session answers; SingleClass(class_id)
  /// for legacy single-class opens.
  const core::QueryPredicate& predicate() const { return predicate_; }
  bool is_multi_class() const { return multi_engine_ != nullptr; }
  bool warm_started() const {
    if (!warm_priors_.empty()) return true;
    for (const auto& p : multi_warm_priors_) {
      if (!p.empty()) return true;
    }
    return false;
  }
  /// The priors this session was seeded with (empty = cold start); the
  /// manager subtracts them when recording the session into a StatsCache.
  const std::vector<core::ChunkPrior>& warm_priors() const {
    return warm_priors_;
  }

  /// Runs one slice of up to `max_frames` frames. Returns true while more
  /// work remains. Called by the SessionManager scheduler; a no-op once
  /// the session stopped.
  bool RunSlice(int64_t max_frames);

  /// Drains results found since the last poll and reports progress.
  PollResult Poll();

  /// Stops the session at the next slice boundary (immediately if idle).
  void Cancel();

  /// Lock-free: safe to call while a slice is executing (the manager's
  /// scheduler and admission control poll this for every session).
  SessionState state() const {
    return state_.load(std::memory_order_acquire);
  }
  /// Done or cancelled.
  bool finished() const { return state() != SessionState::kRunning; }

  /// Claims the one-time right to record this session's statistics into a
  /// StatsCache: true on the first call, false afterwards. Keeps a session
  /// that is harvested by both the scheduler round and a Cancel/Close from
  /// being double-counted.
  bool MarkStatsRecorded();

  /// The final result; requires finished(). For kMultiClass this is the
  /// merged stream (per-class streams via sub accessors below).
  const core::QueryResult& result() const;
  /// Per-chunk statistics (ExSample sources only, else nullptr). For
  /// kMultiClass sessions returns nullptr — the per-class statistics are
  /// the meaningful ones; use sub_chunk_stats. Valid for the session's
  /// lifetime.
  const core::ChunkStats* chunk_stats() const;

  // --- kMultiClass views (require is_multi_class()); the manager records
  // each constituent's statistics under its own "c<id>" cache row.
  size_t num_classes() const;
  const std::vector<detect::ClassId>& multi_classes() const;
  const core::ChunkStats* sub_chunk_stats(size_t i) const;
  const std::vector<core::ChunkPrior>& sub_warm_priors(size_t i) const;

 private:
  double ElapsedSeconds() const;
  void FinishLocked(SessionState state, StopReason reason);
  core::StepStatus StepEngineLocked(int64_t max_frames);
  const core::QueryResult& CurrentResultLocked() const;

  const int64_t id_;
  const uint64_t seed_;
  const std::string repo_key_;
  const detect::ClassId class_id_;
  const core::QueryPredicate predicate_;
  const double cost_budget_seconds_;
  const SessionOptions options_;
  const std::vector<core::ChunkPrior> warm_priors_;
  const std::vector<std::vector<core::ChunkPrior>> multi_warm_priors_;
  const ServeMetrics* const metrics_;  // non-owning; null = uninstrumented
  const size_t metrics_cell_;
  const std::chrono::steady_clock::time_point opened_;

  mutable std::mutex mu_;
  std::unique_ptr<detect::ObjectDetector> detector_;
  std::unique_ptr<track::Discriminator> discriminator_;
  /// Pipelined execution (job.pipeline_depth > 0 only; null otherwise).
  /// Declared before engine_ so the engine — whose destructor aborts any
  /// open batch — is destroyed first, then the pipeline joins its workers.
  std::unique_ptr<detect::SerialDetectorAdapter> batched_detector_;
  std::unique_ptr<exec::Pipeline> pipeline_;
  /// Exactly one of engine_ / multi_engine_ is non-null: multi_engine_ for
  /// kMultiClass predicates, engine_ for everything else (single-class,
  /// conjunction and sequence predicates are one engine with composite
  /// detector/discriminator — see exec::ConfigurePredicateJob).
  std::unique_ptr<core::QueryEngine> engine_;
  std::unique_ptr<core::MultiClassEngine> multi_engine_;
  /// Written under mu_, readable without it (see state()).
  std::atomic<SessionState> state_{SessionState::kRunning};
  StopReason stop_reason_ = StopReason::kNone;
  bool stats_recorded_ = false;
  core::QueryResult final_result_;  // moved out of the engine on finish
  size_t drained_ = 0;              // results already delivered via Poll
  double first_result_wall_ = -1.0;
  double finished_wall_ = 0.0;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_SESSION_H_
