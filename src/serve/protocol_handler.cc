#include "serve/protocol_handler.h"

#include <limits>
#include <utility>
#include <vector>

#include "core/predicate.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "dist/worker.h"
#include "exec/predicate_jobs.h"
#include "exec/query_job.h"
#include "track/discriminator.h"

namespace exsample {
namespace serve {
namespace {

Json Error(const std::string& message) {
  return Json::Object().Set("ok", false).Set("error", message);
}

}  // namespace

const data::Dataset* DatasetPool::Get(const std::string& preset,
                                      double scale) {
  const std::string key = preset + "@" + std::to_string(scale);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(key);
  if (it != datasets_.end()) return it->second.get();
  bool known = false;
  for (const std::string& name : data::PresetNames()) {
    if (name == preset) known = true;
  }
  if (!known) return nullptr;
  auto dataset =
      std::make_unique<data::Dataset>(data::MakePreset(preset, scale, seed_));
  return datasets_.emplace(key, std::move(dataset)).first->second.get();
}

ProtocolHandler::ProtocolHandler(SessionManager* manager, StatsCache* cache,
                                 DatasetPool* datasets, Options options)
    : manager_(manager), cache_(cache), datasets_(datasets),
      options_(options) {}

ProtocolHandler::~ProtocolHandler() {
  if (options_.close_sessions_on_destroy) CloseAllSessions();
}

void ProtocolHandler::CloseAllSessions() {
  for (int64_t id : owned_) manager_->Close(id);  // NotFound is fine
  owned_.clear();
  if (dist_worker_ != nullptr) {
    // Persist shard statistics before dropping the sessions, so a
    // coordinator that vanished mid-query leaves warm-start evidence for
    // its rejoin.
    dist_worker_->RecordAll();
    dist_worker_.reset();
  }
}

ProtocolHandler::Outcome ProtocolHandler::HandleLine(const std::string& line) {
  // CRLF clients send "...}\r"; the CR is transport framing, not JSON.
  // Copy the line only when there is actually a CR to strip — this runs
  // once per request on the event-loop thread.
  const bool has_cr = !line.empty() && line.back() == '\r';
  if (line.size() <= (has_cr ? 1u : 0u)) return Outcome{};
  const std::string stripped =
      has_cr ? line.substr(0, line.size() - 1) : std::string();
  const std::string& request = has_cr ? stripped : line;

  Outcome outcome;
  auto parsed = Json::Parse(request);
  if (!parsed.ok()) {
    outcome.response = Error(parsed.status().ToString()).Dump();
    return outcome;
  }
  const Json& cmd = parsed.value();
  if (cmd.GetString("cmd", "") == "quit") {
    outcome.response = Json::Object().Set("ok", true).Dump();
    outcome.quit = true;
    return outcome;
  }
  outcome.response = Dispatch(cmd).Dump();
  return outcome;
}

Json ProtocolHandler::Dispatch(const Json& cmd) {
  const std::string name = cmd.GetString("cmd", "");
  if (name == "open") return HandleOpen(cmd);
  if (name == "poll") return HandlePoll(cmd);
  if (name == "cancel" || name == "close") {
    const int64_t id = cmd.GetInt("session", -1);
    Json error;
    if (!CheckOwned(id, &error)) return error;
    Status status =
        name == "cancel" ? manager_->Cancel(id) : manager_->Close(id);
    if (name == "close") owned_.erase(id);
    return status.ok() ? Json::Object().Set("ok", true).Set("session", id)
                       : Error(status.ToString());
  }
  if (name == "stats") {
    Json response =
        Json::Object()
            .Set("ok", true)
            .Set("live_sessions",
                 static_cast<int64_t>(manager_->live_sessions()))
            .Set("open_sessions",
                 static_cast<int64_t>(manager_->open_sessions()))
            .Set("total_opened", manager_->total_opened())
            .Set("cache_entries", static_cast<int64_t>(cache_->size()))
            .Set("cache_queries", cache_->queries_recorded())
            .Set("warm_start", options_.warm_start)
            .Set("dist_shards",
                 static_cast<int64_t>(
                     dist_worker_ == nullptr ? 0
                                             : dist_worker_->open_shards()));
    MergeServerInfo(&response);
    return response;
  }
  if (name == "metrics") {
    if (options_.metrics == nullptr) {
      return Error("metrics not enabled on this server");
    }
    Json response = Json::Object().Set("ok", true);
    MergeServerInfo(&response);
    response.Set("metrics", options_.metrics->Snapshot());
    return response;
  }
  if (name.rfind("dist.", 0) == 0) return DispatchDist(name, cmd);
  return Error("unknown cmd: '" + name +
               "' (open|poll|cancel|close|stats|metrics|quit|dist.*)");
}

Json ProtocolHandler::DispatchDist(const std::string& name, const Json& cmd) {
  if (dist_worker_ == nullptr) {
    dist_worker_ = std::make_unique<dist::WorkerState>(
        datasets_, cache_, manager_->options().base_seed,
        options_.default_scale);
  }
  return dist_worker_->Handle(name, cmd);
}

void ProtocolHandler::MergeServerInfo(Json* response) const {
  if (!options_.server_info) return;
  const Json info = options_.server_info();
  if (!info.is_object()) return;
  for (const auto& member : info.members()) {
    response->Set(member.first, member.second);
  }
}

bool ProtocolHandler::CheckOwned(int64_t id, Json* error) const {
  if (owned_.count(id) > 0) return true;
  *error = Error("no session " + std::to_string(id));
  return false;
}

Json ProtocolHandler::HandleOpen(const Json& cmd) {
  const std::string preset = cmd.GetString("preset", "");
  const std::string class_name = cmd.GetString("class", "");
  const Json* predicate_json = cmd.Find("predicate");
  if (preset.empty() || (class_name.empty() && predicate_json == nullptr)) {
    return Error("open requires \"preset\" and \"class\" (or \"predicate\")");
  }
  if (!class_name.empty() && predicate_json != nullptr) {
    return Error("pass exactly one of \"class\" and \"predicate\"");
  }
  const double scale = cmd.GetDouble("scale", options_.default_scale);
  if (scale <= 0.0 || scale > 1.0) return Error("scale must be in (0, 1]");

  // Validate the protocol fields before paying for dataset generation:
  // unknown strategy/policy values are protocol errors, never silent
  // fallbacks to the default.
  exec::QueryJob job;
  const std::string strategy = cmd.GetString("strategy", "exsample");
  if (!core::ApplyStrategyName(strategy, &job.config)) {
    return Error("unknown strategy: " + strategy);
  }
  const std::string policy = cmd.GetString("policy", "");
  if (!policy.empty() && !core::ParsePolicyName(policy, &job.config.policy)) {
    return Error("unknown policy: " + policy);
  }
  const int64_t group_size = cmd.GetInt("group_size", 0);
  if (group_size < 0 || group_size > std::numeric_limits<int32_t>::max()) {
    return Error("group_size must be in [0, 2^31) (0 = auto)");
  }
  job.config.group_size = static_cast<int32_t>(group_size);

  // Structural predicate validation runs before dataset generation: a
  // malformed or unknown predicate is a protocol error — never a silent
  // single-class fallback, and never worth paying MakePreset for.
  core::PredicateRequest predicate_request;
  if (predicate_json != nullptr) {
    if (!predicate_json->is_object()) {
      return Error("\"predicate\" must be a JSON object");
    }
    auto parsed_predicate = core::ParsePredicateJson(*predicate_json);
    if (!parsed_predicate.ok()) {
      return Error(parsed_predicate.status().ToString());
    }
    predicate_request = parsed_predicate.value();
  }

  const data::Dataset* dataset = datasets_->Get(preset, scale);
  if (dataset == nullptr) return Error("unknown preset: " + preset);
  const data::ClassSpec* cls = nullptr;
  core::QueryPredicate predicate;
  if (predicate_json != nullptr) {
    auto resolved = exec::ResolvePredicate(*dataset, predicate_request);
    if (!resolved.ok()) return Error(resolved.status().ToString());
    predicate = resolved.value();
  } else {
    cls = dataset->FindClass(class_name);
    if (cls == nullptr) {
      return Error("class '" + class_name + "' not in " + preset);
    }
  }

  job.repo = &dataset->repo;
  job.chunks = &dataset->chunks;
  if (cls != nullptr) job.spec.class_id = cls->class_id;
  const int64_t limit = cmd.GetInt("limit", 0);
  if (limit < 0 || (cmd.Has("limit") && limit == 0)) {
    return Error("limit must be >= 1 (or omitted)");
  }
  if (limit > 0) job.spec.result_limit = limit;
  const int64_t max_samples = cmd.GetInt("max_samples", 0);
  if (max_samples < 0) return Error("max_samples must be >= 0");
  job.spec.max_samples = max_samples;
  if (cmd.Has("budget_seconds") && cmd.Has("cost_budget_seconds")) {
    return Error("budget_seconds and cost_budget_seconds are aliases; "
                 "pass only one");
  }
  const char* budget_key = cmd.Has("cost_budget_seconds")
                               ? "cost_budget_seconds"
                               : "budget_seconds";
  const double budget = cmd.GetDouble(budget_key, 0.0);
  if (budget < 0.0 || (cmd.Has(budget_key) && budget == 0.0)) {
    return Error(std::string(budget_key) + " must be > 0 (or omitted)");
  }
  job.spec.max_seconds = budget;
  job.config.cost_aware = cmd.GetBool("cost_aware", false);
  const int64_t gop_run = cmd.GetInt("gop_run", 1);
  if (gop_run < 1 || gop_run > std::numeric_limits<int32_t>::max()) {
    return Error("gop_run must be in [1, 2^31)");
  }
  job.config.gop_run_frames = static_cast<int32_t>(gop_run);
  // Pipelined decode -> detect execution (0 = serial path). Results are
  // bit-identical either way; the knobs shape wall-clock behaviour and the
  // pipeline.* metrics only.
  const int64_t pipeline_depth = cmd.GetInt("pipeline_depth", 0);
  if (pipeline_depth < 0 ||
      pipeline_depth > std::numeric_limits<int32_t>::max()) {
    return Error("pipeline_depth must be in [0, 2^31) (0 = serial)");
  }
  job.pipeline_depth = static_cast<int32_t>(pipeline_depth);
  const int64_t detect_batch = cmd.GetInt("detect_batch", 8);
  if (detect_batch < 1 ||
      detect_batch > std::numeric_limits<int32_t>::max()) {
    return Error("detect_batch must be in [1, 2^31)");
  }
  job.detect_batch = static_cast<int32_t>(detect_batch);

  const bool tracker = cmd.GetBool("tracker", false);
  if (cls != nullptr) {
    // Legacy single-class open: byte-for-byte the factories this handler
    // has always built (the pinned session fingerprints run through here).
    const detect::ClassId class_id = cls->class_id;
    job.make_detector = [dataset, class_id](uint64_t seed) {
      return std::make_unique<detect::SimulatedDetector>(
          &dataset->ground_truth, class_id, detect::DetectorConfig{}, seed);
    };
    job.make_discriminator =
        [tracker]() -> std::unique_ptr<track::Discriminator> {
      if (tracker) return std::make_unique<track::TrackerDiscriminator>();
      return std::make_unique<track::OracleDiscriminator>();
    };
  } else {
    exec::ConfigurePredicateJob(dataset, predicate, tracker,
                                detect::DetectorConfig{}, &job);
  }

  serve::SessionOptions session_options;
  session_options.deadline_seconds = cmd.GetDouble("deadline_seconds", 0.0);
  if (session_options.deadline_seconds < 0.0) {
    return Error("deadline_seconds must be >= 0");
  }

  // One cache entry per (preset, scale, class); the key survives restarts.
  const std::string repo_key = preset + "@" + std::to_string(scale);
  auto opened = manager_->Open(std::move(job), session_options, repo_key);
  if (!opened.ok()) return Error(opened.status().ToString());
  owned_.insert(opened.value());
  // WarmStarted (not Poll): polling here would drain results the scheduler
  // may already have found, stealing them from the client's first poll.
  auto warm = manager_->WarmStarted(opened.value());
  Json response =
      Json::Object().Set("ok", true).Set("session", opened.value());
  if (predicate_json != nullptr) {
    // Echo the canonical spelling so clients see exactly which normalized
    // predicate the session answers.
    response.Set("predicate", core::PredicateKey(predicate));
  }
  if (warm.ok()) response.Set("warm_started", warm.value());
  return response;
}

Json ProtocolHandler::HandlePoll(const Json& cmd) {
  const int64_t id = cmd.GetInt("session", -1);
  Json error;
  if (!CheckOwned(id, &error)) return error;
  auto poll = manager_->Poll(id);
  if (!poll.ok()) return Error(poll.status().ToString());
  const serve::PollResult& p = poll.value();
  Json response = Json::Object();
  response.Set("ok", true)
      .Set("session", p.session_id)
      .Set("state", serve::SessionStateName(p.state))
      .Set("stop_reason", serve::StopReasonName(p.stop_reason));
  Json results = Json::Array();
  for (const auto& d : p.new_results) {
    Json item = Json::Object()
                    .Set("frame", d.frame)
                    .Set("score", d.score)
                    .Set("x", d.box.x)
                    .Set("y", d.box.y)
                    .Set("w", d.box.w)
                    .Set("h", d.box.h);
    // Multi-class streams interleave classes, so each detection says whose
    // it is; single-class responses stay byte-identical to before.
    if (p.multi_class) {
      item.Set("class_id", static_cast<int64_t>(d.class_id));
    }
    results.Append(std::move(item));
  }
  response.Set("new_results", std::move(results))
      .Set("total_results", p.total_results)
      .Set("frames_processed", p.frames_processed)
      .Set("cost_seconds", p.cost_seconds)
      .Set("cost_budget_seconds", p.cost_budget_seconds)
      .Set("seconds_to_first_result", p.seconds_to_first_result)
      .Set("wall_seconds", p.wall_seconds)
      .Set("warm_started", p.warm_started);
  if (p.multi_class) {
    response.Set("multi_class", true).Set("cached_reads", p.cached_reads);
  }
  return response;
}

}  // namespace serve
}  // namespace exsample
