#include "detect/batched_detector.h"

namespace exsample {
namespace detect {

std::vector<std::vector<Detection>> SerialDetectorAdapter::DetectBatch(
    const video::FrameId* frames, size_t count) {
  std::vector<std::vector<Detection>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(detector_->Detect(frames[i]));
  }
  return out;
}

std::vector<std::vector<Detection>> LatencyModeledDetector::DetectBatch(
    const video::FrameId* frames, size_t count) {
  std::vector<std::vector<Detection>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(detector_->Detect(frames[i]));
  }
  return out;
}

}  // namespace detect
}  // namespace exsample
