#include "detect/composite_detector.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace exsample {
namespace detect {

CompositeDetector::CompositeDetector(
    std::vector<std::unique_ptr<ObjectDetector>> inner)
    : inner_(std::move(inner)) {
  assert(!inner_.empty());
}

std::vector<Detection> CompositeDetector::Detect(video::FrameId frame) {
  ++frames_processed_;
  std::vector<Detection> out;
  for (auto& detector : inner_) {
    std::vector<Detection> dets = detector->Detect(frame);
    out.insert(out.end(), dets.begin(), dets.end());
  }
  return out;
}

double CompositeDetector::InferenceSeconds() const {
  double widest = 0.0;
  for (const auto& detector : inner_) {
    widest = std::max(widest, detector->InferenceSeconds());
  }
  return widest;
}

}  // namespace detect
}  // namespace exsample
