// Axis-aligned bounding boxes and Intersection-over-Union, the geometric
// primitive behind both the detector output and the SORT-style matching in
// the discriminator (§II-B of the paper).

#ifndef EXSAMPLE_DETECT_BBOX_H_
#define EXSAMPLE_DETECT_BBOX_H_

namespace exsample {
namespace detect {

/// Axis-aligned box in pixel coordinates; (x, y) is the top-left corner.
struct BBox {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  double area() const { return w > 0.0 && h > 0.0 ? w * h : 0.0; }
  double cx() const { return x + w / 2.0; }
  double cy() const { return y + h / 2.0; }

  bool operator==(const BBox&) const = default;
};

/// Intersection-over-Union of two boxes; 0 when either is degenerate.
double IoU(const BBox& a, const BBox& b);

/// Linear interpolation between boxes: t=0 -> a, t=1 -> b. t outside [0,1]
/// extrapolates, which is how the tracker predicts positions beyond the
/// observed span.
BBox Interpolate(const BBox& a, const BBox& b, double t);

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_BBOX_H_
