// CompositeDetector: one inference pass over the union of a predicate's
// constituent classes. Real multi-class networks emit every class from a
// single forward pass; this models that by concatenating per-class inner
// detectors (each a noise-isolated stream keyed by its own seed) and
// charging the latency of the widest inner — one shared pass, not N serial
// ones.
//
// Determinism contract: each inner detector's noise is a pure function of
// (its seed, frame, instance) — see detect/simulated_detector.h — so
// per-class detections here are bit-identical to what the same inner would
// emit in a standalone single-class run with the same seed. The predicate
// property tests lean on exactly that.

#ifndef EXSAMPLE_DETECT_COMPOSITE_DETECTOR_H_
#define EXSAMPLE_DETECT_COMPOSITE_DETECTOR_H_

#include <memory>
#include <vector>

#include "detect/detector.h"

namespace exsample {
namespace detect {

/// Concatenates the detections of several single-class detectors, in the
/// order given (predicate-canonical class order by construction).
class CompositeDetector : public ObjectDetector {
 public:
  explicit CompositeDetector(std::vector<std::unique_ptr<ObjectDetector>> inner);

  std::vector<Detection> Detect(video::FrameId frame) override;
  /// One shared pass: the widest inner head dominates, heads run fused.
  double InferenceSeconds() const override;
  int64_t frames_processed() const override { return frames_processed_; }

 private:
  std::vector<std::unique_ptr<ObjectDetector>> inner_;
  int64_t frames_processed_ = 0;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_COMPOSITE_DETECTOR_H_
