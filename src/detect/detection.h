// Detection records returned by object detectors.

#ifndef EXSAMPLE_DETECT_DETECTION_H_
#define EXSAMPLE_DETECT_DETECTION_H_

#include <cstdint>
#include <vector>

#include "detect/bbox.h"
#include "video/types.h"

namespace exsample {
namespace detect {

/// Object class identifier (dataset-defined; e.g. "traffic light" = 3).
using ClassId = int32_t;

/// Ground-truth instance identifier, for simulation and evaluation only.
/// Real detectors have no notion of instance identity and set kNoInstance.
using InstanceId = int64_t;
inline constexpr InstanceId kNoInstance = -1;

/// One detected object in one frame.
struct Detection {
  video::FrameId frame = 0;
  ClassId class_id = 0;
  BBox box;
  /// Detector confidence in [0, 1].
  double score = 1.0;
  /// Simulation-only provenance: which ground-truth instance produced this
  /// detection (kNoInstance for false positives and for real detectors).
  /// The sampler and the tracking discriminator never read this field; it
  /// exists so evaluation code can compute exact distinct-instance recall.
  InstanceId instance = kNoInstance;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_DETECTION_H_
