// The black-box object detector abstraction. The paper treats detectors as
// expensive oracles ("we regard object detectors as a black box with a
// costly runtime", §II-A); ExSample only ever calls Detect() and pays the
// inference latency.

#ifndef EXSAMPLE_DETECT_DETECTOR_H_
#define EXSAMPLE_DETECT_DETECTOR_H_

#include <vector>

#include "detect/detection.h"
#include "video/types.h"

namespace exsample {
namespace detect {

/// Ground-truth view of a frame, implemented by the dataset layer
/// (data::GroundTruthIndex). Lets the simulated detector live below the
/// dataset module without a dependency cycle.
class FrameOracle {
 public:
  virtual ~FrameOracle() = default;

  /// Objects of `class_id` truly visible in `frame`, with their true boxes
  /// and instance ids.
  virtual std::vector<Detection> TrueObjectsAt(video::FrameId frame,
                                               ClassId class_id) const = 0;
};

/// Abstract object detector for a single target class (queries are
/// per-class; multi-class search runs one query per class).
class ObjectDetector {
 public:
  virtual ~ObjectDetector() = default;

  /// Runs inference on one frame; returns detections of the target class.
  virtual std::vector<Detection> Detect(video::FrameId frame) = 0;

  /// Per-frame inference latency in seconds (used by the cost accounting;
  /// the paper's reference detector runs at ~10 fps on a GPU, and the full
  /// sample-decode-detect loop sustains 20 fps in their measured setup).
  virtual double InferenceSeconds() const = 0;

  /// Number of Detect() calls so far.
  virtual int64_t frames_processed() const = 0;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_DETECTOR_H_
