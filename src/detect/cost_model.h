// Throughput model for query-time accounting (§V-B of the paper).
//
// The paper measures two sustained rates on its hardware and derives Table I
// from them:
//   * sample-and-detect: 20 frames/second (bound by the object detector),
//   * scan-and-score (proxy model over every frame): 100 frames/second
//     (bound by sequential I/O + decode).
// We keep the same two-rate model as the primary accounting, with the
// fine-grained decoder/detector latencies available for sensitivity studies.

#ifndef EXSAMPLE_DETECT_COST_MODEL_H_
#define EXSAMPLE_DETECT_COST_MODEL_H_

#include <cstdint>

namespace exsample {
namespace detect {

/// System throughput constants used to convert frame counts to wall time.
struct ThroughputModel {
  /// Frames/second sustained by the sampling loop (random decode + detector).
  double sample_detect_fps = 20.0;
  /// Frames/second sustained by a sequential proxy-scoring scan.
  double scan_score_fps = 100.0;

  /// Wall-clock seconds to sample-and-detect `frames` frames.
  double SampleSeconds(int64_t frames) const {
    return static_cast<double>(frames) / sample_detect_fps;
  }
  /// Wall-clock seconds to scan-and-score `frames` frames.
  double ScanSeconds(int64_t frames) const {
    return static_cast<double>(frames) / scan_score_fps;
  }
};

/// The configuration the paper measured (20 fps / 100 fps).
inline ThroughputModel PaperThroughputModel() { return ThroughputModel{}; }

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_COST_MODEL_H_
