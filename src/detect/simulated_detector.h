// SimulatedDetector: a ground-truth-backed stand-in for Faster-RCNN.
//
// Noise model:
//  * each truly visible object is missed independently with probability
//    `miss_rate` (per frame — re-sampling the same object in a different
//    frame gives a fresh chance, matching how marginal detections flicker);
//  * detected boxes are jittered by a relative localization error;
//  * false positives arrive per frame with rate `false_positive_rate`
//    (Poisson), with random boxes and no instance identity.
//
// Determinism: noise is a pure function of (seed, frame, instance), so
// re-detecting the same frame yields identical output — exactly like running
// a deterministic network twice.

#ifndef EXSAMPLE_DETECT_SIMULATED_DETECTOR_H_
#define EXSAMPLE_DETECT_SIMULATED_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "util/rng.h"

namespace exsample {
namespace detect {

/// Noise and latency configuration for the simulated detector.
struct DetectorConfig {
  /// Probability a truly visible object yields no detection in a frame.
  double miss_rate = 0.1;
  /// Expected false positives per frame (Poisson rate).
  double false_positive_rate = 0.02;
  /// Relative box jitter: each edge coordinate is perturbed by
  /// Normal(0, jitter * box size).
  double box_jitter = 0.05;
  /// Inference latency per frame, seconds. Default calibrated so that
  /// decode + detect sustains the paper's measured ~20 fps sampling loop.
  double inference_seconds = 0.040;
  /// Frame dimensions used to place false positives.
  double frame_width = 1920.0;
  double frame_height = 1080.0;
};

/// Ground-truth-backed detector for one object class.
class SimulatedDetector : public ObjectDetector {
 public:
  /// `oracle` must outlive the detector.
  SimulatedDetector(const FrameOracle* oracle, ClassId class_id,
                    DetectorConfig config, uint64_t seed);

  std::vector<Detection> Detect(video::FrameId frame) override;
  double InferenceSeconds() const override { return config_.inference_seconds; }
  int64_t frames_processed() const override { return frames_processed_; }

  ClassId class_id() const { return class_id_; }

 private:
  /// Deterministic per-(frame, salt) RNG stream.
  Rng StreamFor(video::FrameId frame, uint64_t salt) const;

  const FrameOracle* oracle_;
  ClassId class_id_;
  DetectorConfig config_;
  uint64_t seed_;
  int64_t frames_processed_ = 0;
};

/// A perfect detector: no misses, no false positives, no jitter. Useful to
/// isolate sampler behaviour from detector noise in tests and ablations.
DetectorConfig PerfectDetectorConfig();

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_SIMULATED_DETECTOR_H_
