// BatchedObjectDetector: the GPU-style batched inference interface.
//
// Real detectors amortize fixed per-invocation work (kernel launches, host
// <-> device transfers, preprocessing setup) across a batch, so per-batch
// latency is sublinear in batch size. The pipeline feeds decoded frames to
// this interface in decode-completion order, up to a configured max batch.
//
// Two cost notions, deliberately separate:
//   * FrameSeconds() — the deterministic per-frame inference charge used by
//     the engine's result accounting (QueryResult::inference_seconds and the
//     OnFrameCost feedback). Pure function of the backend, never of batch
//     shape or wall clock, so pipelined accounting matches the serial path
//     bit for bit.
//   * BatchSeconds(n) — the modeled wall cost of one n-frame invocation,
//     used for wall-clock emulation and latency metrics. Sublinear backends
//     make batching show up as real end-to-end speedup in bench_pipeline.
//
// Backends:
//   * SerialDetectorAdapter — wraps any ObjectDetector one frame at a time;
//     the reference backend the determinism matrix runs against.
//   * LatencyModeledDetector — same detections, but BatchSeconds models
//     setup + n * per_frame (sublinear per frame), the bench's GPU stand-in.

#ifndef EXSAMPLE_DETECT_BATCHED_DETECTOR_H_
#define EXSAMPLE_DETECT_BATCHED_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "video/types.h"

namespace exsample {
namespace detect {

/// Batched inference over decoded frames.
class BatchedObjectDetector {
 public:
  virtual ~BatchedObjectDetector() = default;

  /// Runs inference on `count` frames; returns one detection vector per
  /// input frame, in input order. Detections must depend only on the frame
  /// (not on batch shape or call order) — the pipeline reorders freely.
  virtual std::vector<std::vector<Detection>> DetectBatch(
      const video::FrameId* frames, size_t count) = 0;

  /// Deterministic per-frame inference charge (seconds) for result
  /// accounting; independent of batch shape.
  virtual double FrameSeconds() const = 0;

  /// Modeled wall cost (seconds) of one `count`-frame invocation.
  virtual double BatchSeconds(size_t count) const = 0;

  /// Frames inferred so far.
  virtual int64_t frames_processed() const = 0;
};

/// Wraps a per-frame ObjectDetector as a batch backend: DetectBatch calls
/// Detect once per frame, FrameSeconds and BatchSeconds both charge the
/// wrapped detector's per-frame latency (no batching win — the reference
/// backend for bit-identity against the serial engine path).
class SerialDetectorAdapter : public BatchedObjectDetector {
 public:
  /// `detector` is non-owning and must outlive the adapter.
  explicit SerialDetectorAdapter(ObjectDetector* detector)
      : detector_(detector) {}

  std::vector<std::vector<Detection>> DetectBatch(const video::FrameId* frames,
                                                  size_t count) override;
  double FrameSeconds() const override {
    return detector_->InferenceSeconds();
  }
  double BatchSeconds(size_t count) const override {
    return static_cast<double>(count) * detector_->InferenceSeconds();
  }
  int64_t frames_processed() const override {
    return detector_->frames_processed();
  }

 private:
  ObjectDetector* const detector_;
};

/// Latency model for a GPU-style backend: one invocation costs
/// setup + count * per_frame, so bigger batches cost less per frame.
struct BatchLatencyModel {
  /// Fixed per-invocation cost (launch + transfer + preprocessing).
  double batch_setup_seconds = 0.012;
  /// Marginal per-frame cost within a batch.
  double per_frame_seconds = 0.004;
};

/// Same detections as the wrapped detector, with modeled batch latency.
/// FrameSeconds charges the one-frame invocation cost (setup + per_frame) —
/// what a serial caller would pay per frame — so serial and pipelined runs
/// of this backend account identically while BatchSeconds rewards batching.
class LatencyModeledDetector : public BatchedObjectDetector {
 public:
  /// `detector` is non-owning and must outlive the adapter.
  LatencyModeledDetector(ObjectDetector* detector, BatchLatencyModel model)
      : detector_(detector), model_(model) {}

  std::vector<std::vector<Detection>> DetectBatch(const video::FrameId* frames,
                                                  size_t count) override;
  double FrameSeconds() const override {
    return model_.batch_setup_seconds + model_.per_frame_seconds;
  }
  double BatchSeconds(size_t count) const override {
    return count == 0 ? 0.0
                      : model_.batch_setup_seconds +
                            static_cast<double>(count) *
                                model_.per_frame_seconds;
  }
  int64_t frames_processed() const override {
    return detector_->frames_processed();
  }
  const BatchLatencyModel& model() const { return model_; }

 private:
  ObjectDetector* const detector_;
  const BatchLatencyModel model_;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_BATCHED_DETECTOR_H_
