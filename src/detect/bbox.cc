#include "detect/bbox.h"

#include <algorithm>

namespace exsample {
namespace detect {

double IoU(const BBox& a, const BBox& b) {
  const double ax2 = a.x + a.w, ay2 = a.y + a.h;
  const double bx2 = b.x + b.w, by2 = b.y + b.h;
  const double ix = std::max(0.0, std::min(ax2, bx2) - std::max(a.x, b.x));
  const double iy = std::max(0.0, std::min(ay2, by2) - std::max(a.y, b.y));
  const double inter = ix * iy;
  const double uni = a.area() + b.area() - inter;
  if (uni <= 0.0) return 0.0;
  return inter / uni;
}

BBox Interpolate(const BBox& a, const BBox& b, double t) {
  return BBox{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t,
              a.w + (b.w - a.w) * t, a.h + (b.h - a.h) * t};
}

}  // namespace detect
}  // namespace exsample
