#include "detect/simulated_detector.h"

#include <cassert>

#include "util/distributions.h"

namespace exsample {
namespace detect {

SimulatedDetector::SimulatedDetector(const FrameOracle* oracle,
                                     ClassId class_id, DetectorConfig config,
                                     uint64_t seed)
    : oracle_(oracle), class_id_(class_id), config_(config), seed_(seed) {
  assert(oracle_ != nullptr);
  assert(config_.miss_rate >= 0.0 && config_.miss_rate < 1.0);
  assert(config_.false_positive_rate >= 0.0);
}

Rng SimulatedDetector::StreamFor(video::FrameId frame, uint64_t salt) const {
  // Hash (seed, frame, salt) into an independent stream; SplitMix64 mixes
  // well enough that nearby frames decorrelate.
  SplitMix64 mix(seed_ ^ (static_cast<uint64_t>(frame) * 0x9E3779B97F4A7C15ULL) ^
                 (salt * 0xD1B54A32D192ED03ULL));
  return Rng(mix.Next());
}

std::vector<Detection> SimulatedDetector::Detect(video::FrameId frame) {
  ++frames_processed_;
  std::vector<Detection> out;
  const std::vector<Detection> truth = oracle_->TrueObjectsAt(frame, class_id_);
  for (const Detection& t : truth) {
    // Per-(frame, instance) stream: deterministic re-detection.
    Rng rng = StreamFor(frame, static_cast<uint64_t>(t.instance) + 1);
    if (rng.NextBernoulli(config_.miss_rate)) continue;
    Detection d = t;
    if (config_.box_jitter > 0.0) {
      const double sx = config_.box_jitter * t.box.w;
      const double sy = config_.box_jitter * t.box.h;
      d.box.x += SampleNormal(&rng, 0.0, sx);
      d.box.y += SampleNormal(&rng, 0.0, sy);
      d.box.w *= 1.0 + SampleNormal(&rng, 0.0, config_.box_jitter);
      d.box.h *= 1.0 + SampleNormal(&rng, 0.0, config_.box_jitter);
      if (d.box.w < 1.0) d.box.w = 1.0;
      if (d.box.h < 1.0) d.box.h = 1.0;
    }
    d.score = 0.5 + 0.5 * rng.NextDouble();
    out.push_back(d);
  }
  if (config_.false_positive_rate > 0.0) {
    Rng rng = StreamFor(frame, 0);
    int64_t fps = SamplePoisson(&rng, config_.false_positive_rate);
    for (int64_t i = 0; i < fps; ++i) {
      Detection d;
      d.frame = frame;
      d.class_id = class_id_;
      d.instance = kNoInstance;
      d.box.w = 20.0 + rng.NextDouble() * 100.0;
      d.box.h = 20.0 + rng.NextDouble() * 100.0;
      d.box.x = rng.NextDouble() * (config_.frame_width - d.box.w);
      d.box.y = rng.NextDouble() * (config_.frame_height - d.box.h);
      d.score = 0.5 + 0.3 * rng.NextDouble();
      out.push_back(d);
    }
  }
  return out;
}

DetectorConfig PerfectDetectorConfig() {
  DetectorConfig c;
  c.miss_rate = 0.0;
  c.false_positive_rate = 0.0;
  c.box_jitter = 0.0;
  return c;
}

}  // namespace detect
}  // namespace exsample
