// PredicateDiscriminator: composite-predicate matching as a discriminator
// composition, so the query engine's Algorithm-1 loop needs no changes for
// conjunction / sequence queries — d0/d1 it sees ARE predicate-level events,
// which keeps the bandit's N1 <- N1 + |d0| - |d1| feedback paper-faithful.
//
// Semantics (the "first-sighting-must-qualify" rule):
//  * A frame *qualifies* when the predicate's context holds there —
//    conjunction: every non-result constituent class is detected in the
//    frame; sequence(A, B, within): some sampled frame in
//    [frame - within, frame] (the frame itself included) contained an A.
//  * A result-class object becomes a predicate result iff its FIRST
//    processed sighting lands in a qualifying frame — mirroring how
//    single-class queries credit an object to its first sighting. An object
//    first seen in a non-qualifying frame is consumed (tracked, never
//    reported), exactly like a duplicate sighting in the single-class case.
//  * d1 events pass through only when the matched object's first sighting
//    was qualifying: the chunk that received the +1 gets the -1, and chunks
//    that never got a +1 never see a -1.
//
// Sequence state is the discriminator's memory of *sampled* A-presence
// frames: ExSample samples frames out of order, so "A then B" is judged
// against what the query has actually observed, not unseen ground truth —
// the same observability contract the single-class discriminator has.

#ifndef EXSAMPLE_TRACK_PREDICATE_DISCRIMINATOR_H_
#define EXSAMPLE_TRACK_PREDICATE_DISCRIMINATOR_H_

#include <functional>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/predicate.h"
#include "track/discriminator.h"

namespace exsample {
namespace track {

/// Makes the inner discriminator judging result-class novelty (typically a
/// TrackerDiscriminator or OracleDiscriminator, same as single-class runs).
using InnerDiscriminatorFactory =
    std::function<std::unique_ptr<Discriminator>()>;

/// Sentinel for an unbounded sequence window in frames.
inline constexpr int64_t kUnboundedWindowFrames = -1;

/// Wraps a single-class discriminator with predicate qualification for
/// kConjunction / kSequence predicates. The detections it receives are the
/// union across constituent classes (see detect::CompositeDetector); it
/// partitions them by class internally.
class PredicateDiscriminator : public Discriminator {
 public:
  /// `predicate` must be normalized + validated and of kind kConjunction or
  /// kSequence. `within_frames` is the sequence window converted to frames
  /// (kUnboundedWindowFrames = unbounded); ignored for conjunctions.
  PredicateDiscriminator(core::QueryPredicate predicate, int64_t within_frames,
                         const InnerDiscriminatorFactory& make_inner);

  MatchResult GetMatches(video::FrameId frame,
                         const std::vector<detect::Detection>& dets)
      const override;
  void Add(video::FrameId frame,
           const std::vector<detect::Detection>& dets) override;
  int64_t num_distinct() const override { return num_distinct_; }

  const core::QueryPredicate& predicate() const { return predicate_; }

 private:
  /// Does the predicate context hold at `frame` given its detections and
  /// the current observation state? Pure — called identically from the
  /// const GetMatches and (pre-mutation) from Add.
  bool Qualifies(video::FrameId frame,
                 const std::vector<detect::Detection>& dets) const;

  core::QueryPredicate predicate_;
  int64_t within_frames_;
  std::unique_ptr<Discriminator> inner_;
  /// Frames whose qualification was established at Add time; membership
  /// decides whether a d1's first sighting ever produced a predicate +1.
  std::unordered_set<video::FrameId> qualifying_frames_;
  /// kSequence only: sampled frames where the antecedent class was
  /// detected. Ordered for the window search.
  std::set<video::FrameId> antecedent_frames_;
  int64_t num_distinct_ = 0;
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_PREDICATE_DISCRIMINATOR_H_
