#include "track/discriminator.h"

#include <cassert>

#include "detect/bbox.h"

namespace exsample {
namespace track {

TrackerDiscriminator::TrackerDiscriminator(TrackerConfig config)
    : config_(config) {
  assert(config_.iou_threshold > 0.0 && config_.iou_threshold <= 1.0);
  assert(config_.extension_horizon >= 0);
}

int64_t TrackerDiscriminator::BestMatch(const detect::Detection& det) const {
  int64_t best = -1;
  double best_iou = config_.iou_threshold;
  for (size_t i = 0; i < tracks_.size(); ++i) {
    auto predicted = tracks_[i].PredictAt(det.frame, config_.extension_horizon);
    if (!predicted.has_value()) continue;
    double iou = detect::IoU(*predicted, det.box);
    if (iou >= best_iou) {
      best_iou = iou;
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

MatchResult TrackerDiscriminator::GetMatches(
    video::FrameId frame, const std::vector<detect::Detection>& dets) const {
  (void)frame;
  MatchResult result;
  for (const auto& det : dets) {
    int64_t m = BestMatch(det);
    if (m < 0) {
      result.d0.push_back(det);
    } else if (tracks_[static_cast<size_t>(m)].num_observations() == 1) {
      // The matched object had exactly one previous sighting: this
      // detection removes it from the seen-exactly-once set.
      ++result.num_d1;
      result.d1_first_frames.push_back(
          tracks_[static_cast<size_t>(m)].first_frame());
    }
  }
  return result;
}

void TrackerDiscriminator::Add(video::FrameId frame,
                               const std::vector<detect::Detection>& dets) {
  (void)frame;
  for (const auto& det : dets) {
    int64_t m = BestMatch(det);
    if (m < 0) {
      tracks_.emplace_back(static_cast<int64_t>(tracks_.size()), det);
    } else {
      tracks_[static_cast<size_t>(m)].AddObservation(det);
    }
  }
}

MatchResult OracleDiscriminator::GetMatches(
    video::FrameId frame, const std::vector<detect::Detection>& dets) const {
  (void)frame;
  MatchResult result;
  for (const auto& det : dets) {
    if (det.instance == detect::kNoInstance) {
      // False positive: no identity, always "new".
      result.d0.push_back(det);
      continue;
    }
    auto it = sightings_.find(det.instance);
    if (it == sightings_.end()) {
      result.d0.push_back(det);
    } else if (it->second == 1) {
      ++result.num_d1;
      result.d1_first_frames.push_back(first_frame_.at(det.instance));
    }
  }
  return result;
}

void OracleDiscriminator::Add(video::FrameId frame,
                              const std::vector<detect::Detection>& dets) {
  for (const auto& det : dets) {
    if (det.instance == detect::kNoInstance) {
      ++num_distinct_;  // each false positive pollutes the result set once
      continue;
    }
    int64_t& count = sightings_[det.instance];
    if (count == 0) {
      ++num_distinct_;
      first_frame_[det.instance] = frame;
    }
    ++count;
  }
}

}  // namespace track
}  // namespace exsample
