// Track: the discriminator's record of one distinct object, built from the
// (sparse) frames where the object was detected. Position at other frames is
// predicted by interpolation between, or constant-velocity extrapolation
// beyond, the observed detections — the "SORT backwards and forwards"
// behaviour described in §II-B of the paper.

#ifndef EXSAMPLE_TRACK_TRACK_H_
#define EXSAMPLE_TRACK_TRACK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/bbox.h"
#include "detect/detection.h"
#include "video/types.h"

namespace exsample {
namespace track {

/// One distinct object as understood by the discriminator.
class Track {
 public:
  /// Creates a track from its first observation.
  Track(int64_t track_id, const detect::Detection& first);

  /// Adds a later (or earlier) observation; keeps observations frame-sorted.
  void AddObservation(const detect::Detection& det);

  int64_t id() const { return id_; }
  int64_t num_observations() const {
    return static_cast<int64_t>(obs_.size());
  }
  video::FrameId first_frame() const { return obs_.front().frame; }
  video::FrameId last_frame() const { return obs_.back().frame; }
  const std::vector<detect::Detection>& observations() const { return obs_; }

  /// Predicted box at `frame`, or nullopt when `frame` is further than
  /// `horizon` frames outside the observed span (the object is assumed no
  /// longer / not yet visible). Interpolates between bracketing
  /// observations; extrapolates at constant velocity outside them (zero
  /// velocity when only one observation exists).
  std::optional<detect::BBox> PredictAt(video::FrameId frame,
                                        int64_t horizon) const;

 private:
  int64_t id_;
  std::vector<detect::Detection> obs_;
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_TRACK_H_
