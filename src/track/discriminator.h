// Discriminators decide whether each new detection corresponds to a distinct
// object not seen before (d0) or matches exactly one previous detection (d1)
// — the two quantities Algorithm 1 uses to maintain the per-chunk statistic
// N1 <- N1 + |d0| - |d1|.
//
// Two implementations:
//  * TrackerDiscriminator — the paper's approach: an IoU tracker predicts
//    the position of every known object at the queried frame and matches
//    detections by overlap. Operates purely on boxes.
//  * OracleDiscriminator — simulation-only: matches by ground-truth instance
//    id. Used in tests/evaluation to isolate sampler behaviour from tracker
//    error.

#ifndef EXSAMPLE_TRACK_DISCRIMINATOR_H_
#define EXSAMPLE_TRACK_DISCRIMINATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/detection.h"
#include "track/track.h"
#include "video/types.h"

namespace exsample {
namespace track {

/// Partition of one frame's detections by novelty.
struct MatchResult {
  /// Detections that matched no previous object: new, distinct results.
  std::vector<detect::Detection> d0;
  /// Number of detections whose matched object had been seen exactly once
  /// before (these remove the object from the seen-exactly-once set N1).
  int64_t num_d1 = 0;
  /// For each of the num_d1 matches: the frame of the matched object's
  /// first sighting. Lets the engine credit the N1 decrement to the chunk
  /// that received the original +1 (the technical-report adjustment for
  /// instances spanning chunks, paper footnote 1).
  std::vector<video::FrameId> d1_first_frames;
};

/// Interface used by the query engine (Algorithm 1 lines 10 and 13).
class Discriminator {
 public:
  virtual ~Discriminator() = default;

  /// Classifies `dets` (all from `frame`) against previously added
  /// detections, without mutating state.
  virtual MatchResult GetMatches(video::FrameId frame,
                                 const std::vector<detect::Detection>& dets)
      const = 0;

  /// Records the frame's detections into the discriminator state.
  virtual void Add(video::FrameId frame,
                   const std::vector<detect::Detection>& dets) = 0;

  /// Number of distinct objects discovered so far.
  virtual int64_t num_distinct() const = 0;
};

/// Configuration for the IoU tracking discriminator.
struct TrackerConfig {
  /// Minimum IoU between a detection and a track's predicted box to match.
  double iou_threshold = 0.5;
  /// How many frames beyond a track's observed span it is still considered
  /// matchable (the forward/backward tracking extension). Half a second of
  /// 30 fps video by default.
  int64_t extension_horizon = 15;
};

/// SORT-style IoU matching against predicted track positions.
class TrackerDiscriminator : public Discriminator {
 public:
  explicit TrackerDiscriminator(TrackerConfig config = {});

  MatchResult GetMatches(video::FrameId frame,
                         const std::vector<detect::Detection>& dets)
      const override;
  void Add(video::FrameId frame,
           const std::vector<detect::Detection>& dets) override;
  int64_t num_distinct() const override {
    return static_cast<int64_t>(tracks_.size());
  }

  const std::vector<Track>& tracks() const { return tracks_; }

 private:
  /// Index of the best-matching track for `det`, or -1.
  int64_t BestMatch(const detect::Detection& det) const;

  TrackerConfig config_;
  std::vector<Track> tracks_;
};

/// Ground-truth instance-id matching (simulation only). Detections carrying
/// detect::kNoInstance (false positives) are treated as never matching —
/// each one spuriously counts as a new result, exactly the failure mode a
/// real system has when the detector hallucinates an object.
class OracleDiscriminator : public Discriminator {
 public:
  MatchResult GetMatches(video::FrameId frame,
                         const std::vector<detect::Detection>& dets)
      const override;
  void Add(video::FrameId frame,
           const std::vector<detect::Detection>& dets) override;
  int64_t num_distinct() const override { return num_distinct_; }

  /// Times each instance has been sighted.
  const std::unordered_map<detect::InstanceId, int64_t>& sightings() const {
    return sightings_;
  }

 private:
  std::unordered_map<detect::InstanceId, int64_t> sightings_;
  std::unordered_map<detect::InstanceId, video::FrameId> first_frame_;
  int64_t num_distinct_ = 0;
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_DISCRIMINATOR_H_
