#include "track/track.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace track {

Track::Track(int64_t track_id, const detect::Detection& first) : id_(track_id) {
  obs_.push_back(first);
}

void Track::AddObservation(const detect::Detection& det) {
  auto it = std::upper_bound(
      obs_.begin(), obs_.end(), det.frame,
      [](video::FrameId f, const detect::Detection& d) { return f < d.frame; });
  obs_.insert(it, det);
}

std::optional<detect::BBox> Track::PredictAt(video::FrameId frame,
                                             int64_t horizon) const {
  assert(!obs_.empty());
  if (frame < first_frame() - horizon || frame > last_frame() + horizon) {
    return std::nullopt;
  }
  if (obs_.size() == 1) {
    // No velocity information; assume stationary within the horizon.
    return obs_.front().box;
  }
  // Find bracketing observations.
  auto it = std::lower_bound(
      obs_.begin(), obs_.end(), frame,
      [](const detect::Detection& d, video::FrameId f) { return d.frame < f; });
  if (it != obs_.end() && it->frame == frame) return it->box;
  const detect::Detection* a;
  const detect::Detection* b;
  if (it == obs_.begin()) {
    // Before the first observation: extrapolate backwards from the first two.
    a = &obs_[0];
    b = &obs_[1];
  } else if (it == obs_.end()) {
    // Beyond the last observation: extrapolate from the last two.
    a = &obs_[obs_.size() - 2];
    b = &obs_[obs_.size() - 1];
  } else {
    a = &*(it - 1);
    b = &*it;
  }
  const double span = static_cast<double>(b->frame - a->frame);
  assert(span > 0.0);
  const double t = static_cast<double>(frame - a->frame) / span;
  return detect::Interpolate(a->box, b->box, t);
}

}  // namespace track
}  // namespace exsample
