#include "track/predicate_discriminator.h"

#include <cassert>

namespace exsample {
namespace track {
namespace {

std::vector<detect::Detection> OfClass(
    const std::vector<detect::Detection>& dets, detect::ClassId cls) {
  std::vector<detect::Detection> out;
  for (const detect::Detection& det : dets) {
    if (det.class_id == cls) out.push_back(det);
  }
  return out;
}

bool HasClass(const std::vector<detect::Detection>& dets,
              detect::ClassId cls) {
  for (const detect::Detection& det : dets) {
    if (det.class_id == cls) return true;
  }
  return false;
}

}  // namespace

PredicateDiscriminator::PredicateDiscriminator(
    core::QueryPredicate predicate, int64_t within_frames,
    const InnerDiscriminatorFactory& make_inner)
    : predicate_(std::move(predicate)),
      within_frames_(within_frames),
      inner_(make_inner()) {
  assert(predicate_.kind == core::PredicateKind::kConjunction ||
         predicate_.kind == core::PredicateKind::kSequence);
  assert(!predicate_.classes.empty());
}

bool PredicateDiscriminator::Qualifies(
    video::FrameId frame, const std::vector<detect::Detection>& dets) const {
  if (predicate_.kind == core::PredicateKind::kConjunction) {
    // Every non-result constituent must be co-detected in this frame. (The
    // result class's own presence is implied by the detection under test.)
    for (size_t i = 0; i + 1 < predicate_.classes.size(); ++i) {
      if (!HasClass(dets, predicate_.classes[i])) return false;
    }
    return true;
  }
  // Sequence: an antecedent sighting at fa with frame - within <= fa <=
  // frame. The current frame's own detections count (fa == frame), which is
  // what makes seq(A, B, inf) on co-located instances coincide with and(A, B).
  if (HasClass(dets, predicate_.classes.front())) return true;
  auto it = antecedent_frames_.upper_bound(frame);
  if (it == antecedent_frames_.begin()) return false;
  const video::FrameId latest = *std::prev(it);
  if (within_frames_ == kUnboundedWindowFrames) return true;
  return latest >= frame - within_frames_;
}

MatchResult PredicateDiscriminator::GetMatches(
    video::FrameId frame, const std::vector<detect::Detection>& dets) const {
  const detect::ClassId result_class = predicate_.result_class();
  MatchResult inner =
      inner_->GetMatches(frame, OfClass(dets, result_class));
  MatchResult out;
  if (Qualifies(frame, dets)) out.d0 = std::move(inner.d0);
  // A -1 is only valid against an object whose first sighting produced a
  // predicate-level +1; anything else was consumed silently.
  for (size_t i = 0; i < inner.d1_first_frames.size(); ++i) {
    if (qualifying_frames_.count(inner.d1_first_frames[i]) > 0) {
      ++out.num_d1;
      out.d1_first_frames.push_back(inner.d1_first_frames[i]);
    }
  }
  return out;
}

void PredicateDiscriminator::Add(video::FrameId frame,
                                 const std::vector<detect::Detection>& dets) {
  // Qualification must be judged on pre-Add state, identically to the
  // GetMatches call the engine issued just before.
  const bool qualifies = Qualifies(frame, dets);
  if (qualifies) {
    const detect::ClassId result_class = predicate_.result_class();
    MatchResult inner =
        inner_->GetMatches(frame, OfClass(dets, result_class));
    num_distinct_ += static_cast<int64_t>(inner.d0.size());
    qualifying_frames_.insert(frame);
  }
  if (predicate_.kind == core::PredicateKind::kSequence &&
      HasClass(dets, predicate_.classes.front())) {
    antecedent_frames_.insert(frame);
  }
  inner_->Add(frame, OfClass(dets, predicate_.result_class()));
}

}  // namespace track
}  // namespace exsample
