// FusionEngine: the §VII "For scoring" extension — combining ExSample's
// chunk-level adaptive sampling with proxy-score-guided sampling *within*
// chunks, without the upfront full-dataset scan that makes BlazeIt-style
// systems slow on limit queries.
//
// Design. The paper notes (§VII) that the §III estimator theory "remains
// valid even if sampling within a chunk is non-uniform but based on a
// score", and that the missing piece is avoiding the full scan. Here
// scoring is *lazy, chunk-granular and commitment-gated*: a chunk is scored
// by the proxy only once the bandit has already invested
// `scan_after_samples` detector samples in it — i.e. the chunk has proven
// promising. Until then the chunk uses plain random+ sampling. Cold chunks,
// which Thompson visits only a handful of times, are never scanned at all;
// hot chunks upgrade to score-weighted without-replacement sampling
// (weight = exp(score/temperature)), skipping frames already processed.
//
// Accounting is wall-clock-progressive: every scan and inference charge
// advances a simulated clock, and the result carries a time-indexed results
// trajectory (milliseconds) so latency-to-k comparisons against pure
// ExSample and BlazeIt are direct.

#ifndef EXSAMPLE_PROXY_FUSION_H_
#define EXSAMPLE_PROXY_FUSION_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/chunk_stats.h"
#include "core/policy.h"
#include "core/query.h"
#include "detect/cost_model.h"
#include "detect/detector.h"
#include "proxy/proxy_model.h"
#include "track/discriminator.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/frame_sampler.h"
#include "video/repository.h"

namespace exsample {
namespace proxy {

/// Fusion engine configuration.
struct FusionConfig {
  core::PolicyKind policy = core::PolicyKind::kThompson;
  core::BeliefParams belief;
  /// A chunk is proxy-scored only after this many detector samples landed
  /// in it (commitment gate). 0 scores on first visit (scans everything the
  /// bandit touches — usually a bad idea; see the extension_fusion bench).
  int64_t scan_after_samples = 40;
  /// Softmax temperature applied to proxy scores; smaller = greedier
  /// ordering within a chunk. Scores are ~0/1, so 0.25 makes a positive
  /// frame e^4 ~ 55x more likely than a negative one.
  double score_temperature = 0.25;
  detect::ThroughputModel throughput;
};

/// Result: query outcome + lazy-scan accounting.
struct FusionResult {
  core::QueryResult query;
  /// Cumulative scan time spent scoring chunks.
  double scan_seconds = 0.0;
  /// Frames scored (<= repository size).
  int64_t frames_scored = 0;
  /// Chunks that were scored.
  int32_t chunks_scored = 0;
  /// Distinct results vs simulated wall-clock milliseconds (scan +
  /// inference), for latency-to-k curves.
  core::Trajectory reported_by_ms;
};

/// Runs distinct-object queries with chunk-level Thompson sampling,
/// random+ within cold chunks and score-weighted sampling within hot ones.
class FusionEngine {
 public:
  FusionEngine(const video::VideoRepository* repo,
               const std::vector<video::Chunk>* chunks,
               const SimulatedProxyModel* proxy,
               detect::ObjectDetector* detector,
               track::Discriminator* discriminator, FusionConfig config,
               uint64_t seed);

  FusionResult Run(const core::QuerySpec& spec);

  const core::ChunkStats& chunk_stats() const { return stats_; }

 private:
  /// Scores the chunk's frames (lazy scan) and swaps in a weighted sampler.
  void ScoreChunk(video::ChunkId j, FusionResult* result);

  const video::VideoRepository* repo_;
  const std::vector<video::Chunk>* chunks_;
  const SimulatedProxyModel* proxy_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  FusionConfig config_;
  Rng rng_;

  core::ChunkStats stats_;
  std::unique_ptr<core::ChunkPolicy> policy_;
  std::vector<std::unique_ptr<video::FrameSampler>> samplers_;
  std::vector<bool> scored_;
  core::AvailabilityIndex available_;
  /// Frames processed before a chunk was scored (the weighted sampler must
  /// not re-process them).
  std::vector<std::unordered_set<video::FrameId>> processed_before_scan_;
};

}  // namespace proxy
}  // namespace exsample

#endif  // EXSAMPLE_PROXY_FUSION_H_
