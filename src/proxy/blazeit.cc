#include "proxy/blazeit.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_set>

namespace exsample {
namespace proxy {

BlazeItBaseline::BlazeItBaseline(const video::VideoRepository* repo,
                                 const SimulatedProxyModel* proxy,
                                 detect::ObjectDetector* detector,
                                 track::Discriminator* discriminator,
                                 BlazeItConfig config)
    : repo_(repo),
      proxy_(proxy),
      detector_(detector),
      discriminator_(discriminator),
      config_(config) {
  assert(repo_ && proxy_ && detector_ && discriminator_);
  assert(config_.dedup_window >= 0);
}

BlazeItResult BlazeItBaseline::Run(const core::QuerySpec& spec) {
  BlazeItResult out;
  const int64_t total = repo_->total_frames();

  // Phase 1: score every frame (the upfront scan limit queries cannot skip).
  std::vector<std::pair<double, video::FrameId>> scored;
  scored.reserve(static_cast<size_t>(total));
  for (video::FrameId f = 0; f < total; ++f) {
    scored.emplace_back(-proxy_->Score(f), f);  // negate for ascending sort
  }
  out.frames_scored = total;
  out.scan_seconds = config_.throughput.ScanSeconds(total);
  // Stable sort keeps equal-score frames in temporal order, which matches
  // how a tie would be broken by frame id in practice.
  std::stable_sort(scored.begin(), scored.end());

  // Phase 2: process highest-score frames through the expensive detector.
  const int64_t max_samples =
      spec.max_samples > 0 ? spec.max_samples : total;
  std::set<video::FrameId> processed;
  std::unordered_set<detect::InstanceId> seen_instances;
  core::QueryResult& q = out.query;
  for (const auto& [neg_score, frame] : scored) {
    (void)neg_score;
    if (q.frames_processed >= max_samples) break;
    if (static_cast<int64_t>(q.results.size()) >= spec.result_limit) break;
    if (config_.dedup_window > 0 && !processed.empty()) {
      // Skip frames temporally close to one we already processed.
      auto it = processed.lower_bound(frame - config_.dedup_window);
      if (it != processed.end() &&
          *it <= frame + config_.dedup_window) {
        continue;
      }
    }
    processed.insert(frame);
    std::vector<detect::Detection> dets = detector_->Detect(frame);
    q.inference_seconds += 1.0 / config_.throughput.sample_detect_fps;
    track::MatchResult match = discriminator_->GetMatches(frame, dets);
    discriminator_->Add(frame, dets);
    ++q.frames_processed;
    if (!match.d0.empty()) {
      bool new_instance = false;
      for (const auto& d : match.d0) {
        q.results.push_back(d);
        if (d.instance != detect::kNoInstance &&
            seen_instances.insert(d.instance).second) {
          new_instance = true;
        }
      }
      q.reported.Record(q.frames_processed,
                        static_cast<int64_t>(q.results.size()));
      if (new_instance) {
        q.true_instances.Record(q.frames_processed,
                                static_cast<int64_t>(seen_instances.size()));
      }
    }
  }
  q.reported.Finish(q.frames_processed);
  q.true_instances.Finish(q.frames_processed);
  return out;
}

}  // namespace proxy
}  // namespace exsample
