// SimulatedProxyModel: a stand-in for the cheap specialized NNs proxy-based
// systems (BlazeIt/NoScope) train per query to score frames.
//
// Score model: frames containing a true object of the target class score
// Normal(1, noise); empty frames score Normal(0, noise). `noise = 0` gives
// the strongest possible proxy (perfect frame ranking) — the paper's
// comparison is deliberately generous to the baseline this way, since its
// argument is that even a perfect proxy loses to sampling on limit queries
// because of the upfront full-dataset scan.

#ifndef EXSAMPLE_PROXY_PROXY_MODEL_H_
#define EXSAMPLE_PROXY_PROXY_MODEL_H_

#include <cstdint>

#include "detect/detector.h"
#include "util/rng.h"
#include "video/types.h"

namespace exsample {
namespace proxy {

/// Proxy score quality knob.
struct ProxyConfig {
  /// Stddev of the score noise; 0 = perfect ranking of positive frames.
  double noise_sigma = 0.25;
};

/// Per-frame scorer backed by ground truth.
class SimulatedProxyModel {
 public:
  SimulatedProxyModel(const detect::FrameOracle* oracle,
                      detect::ClassId class_id, ProxyConfig config,
                      uint64_t seed);

  /// Score of one frame (deterministic per frame).
  double Score(video::FrameId frame) const;

  detect::ClassId class_id() const { return class_id_; }

 private:
  const detect::FrameOracle* oracle_;
  detect::ClassId class_id_;
  ProxyConfig config_;
  uint64_t seed_;
};

}  // namespace proxy
}  // namespace exsample

#endif  // EXSAMPLE_PROXY_PROXY_MODEL_H_
