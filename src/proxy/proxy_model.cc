#include "proxy/proxy_model.h"

#include <cassert>

#include "util/distributions.h"

namespace exsample {
namespace proxy {

SimulatedProxyModel::SimulatedProxyModel(const detect::FrameOracle* oracle,
                                         detect::ClassId class_id,
                                         ProxyConfig config, uint64_t seed)
    : oracle_(oracle), class_id_(class_id), config_(config), seed_(seed) {
  assert(oracle_ != nullptr);
  assert(config_.noise_sigma >= 0.0);
}

double SimulatedProxyModel::Score(video::FrameId frame) const {
  const bool positive = !oracle_->TrueObjectsAt(frame, class_id_).empty();
  double score = positive ? 1.0 : 0.0;
  if (config_.noise_sigma > 0.0) {
    SplitMix64 mix(seed_ ^
                   (static_cast<uint64_t>(frame) * 0x9E3779B97F4A7C15ULL));
    Rng rng(mix.Next());
    score += SampleNormal(&rng, 0.0, config_.noise_sigma);
  }
  return score;
}

}  // namespace proxy
}  // namespace exsample
