// BlazeItBaseline: the proxy-model execution strategy for distinct-object
// limit queries (§II-B, "Proxy-based methods"):
//
//   1. SCAN: run the proxy model over EVERY frame of the dataset (sequential
//      decode + cheap inference; cost = frames / scan_score_fps). No results
//      can be returned during this phase.
//   2. PROCESS: visit frames in descending proxy-score order, applying the
//      expensive detector + discriminator, skipping frames within a
//      duplicate-avoidance window of already-processed frames.
//
// The returned accounting separates scan_seconds from processing time so
// Table I can report the scan overhead on its own.

#ifndef EXSAMPLE_PROXY_BLAZEIT_H_
#define EXSAMPLE_PROXY_BLAZEIT_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "detect/cost_model.h"
#include "detect/detector.h"
#include "proxy/proxy_model.h"
#include "track/discriminator.h"
#include "video/repository.h"

namespace exsample {
namespace proxy {

/// Configuration of the proxy-ordered processing loop.
struct BlazeItConfig {
  /// Frames within +/- this distance of an already-processed frame are
  /// skipped (the duplicate-avoidance heuristic; 0 disables).
  int64_t dedup_window = 30;
  detect::ThroughputModel throughput;
};

/// Result of a BlazeIt run: a QueryResult plus the scan-phase cost.
struct BlazeItResult {
  core::QueryResult query;
  /// Upfront full-scan cost (seconds); total latency to the k-th result is
  /// scan_seconds + query-time seconds up to that result.
  double scan_seconds = 0.0;
  int64_t frames_scored = 0;
};

/// Executes distinct-object limit queries with proxy-score ordering.
class BlazeItBaseline {
 public:
  BlazeItBaseline(const video::VideoRepository* repo,
                  const SimulatedProxyModel* proxy,
                  detect::ObjectDetector* detector,
                  track::Discriminator* discriminator, BlazeItConfig config);

  /// Runs the scan phase + score-ordered processing until the limit or
  /// max_samples processed frames.
  BlazeItResult Run(const core::QuerySpec& spec);

 private:
  const video::VideoRepository* repo_;
  const SimulatedProxyModel* proxy_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  BlazeItConfig config_;
};

}  // namespace proxy
}  // namespace exsample

#endif  // EXSAMPLE_PROXY_BLAZEIT_H_
