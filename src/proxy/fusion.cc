#include "proxy/fusion.h"

#include <cassert>
#include <cmath>

namespace exsample {
namespace proxy {

FusionEngine::FusionEngine(const video::VideoRepository* repo,
                           const std::vector<video::Chunk>* chunks,
                           const SimulatedProxyModel* proxy,
                           detect::ObjectDetector* detector,
                           track::Discriminator* discriminator,
                           FusionConfig config, uint64_t seed)
    : repo_(repo),
      chunks_(chunks),
      proxy_(proxy),
      detector_(detector),
      discriminator_(discriminator),
      config_(config),
      rng_(seed),
      stats_(static_cast<int32_t>(chunks->size())),
      available_(static_cast<int64_t>(chunks->size())) {
  assert(repo_ && chunks_ && proxy_ && detector_ && discriminator_);
  assert(!chunks_->empty());
  assert(config_.score_temperature > 0.0);
  assert(config_.scan_after_samples >= 0);
  policy_ = core::MakePolicy(config_.policy, config_.belief);
  samplers_.resize(chunks_->size());
  scored_.assign(chunks_->size(), false);
  processed_before_scan_.resize(chunks_->size());
}

void FusionEngine::ScoreChunk(video::ChunkId j, FusionResult* result) {
  const video::Chunk& chunk = (*chunks_)[static_cast<size_t>(j)];
  const int64_t size = chunk.frames.size();
  std::vector<double> weights(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    const double score = proxy_->Score(chunk.frames.At(i));
    weights[static_cast<size_t>(i)] =
        std::exp(score / config_.score_temperature);
  }
  samplers_[static_cast<size_t>(j)] =
      std::make_unique<video::WeightedFrameSampler>(chunk.frames,
                                                    std::move(weights));
  scored_[static_cast<size_t>(j)] = true;
  result->scan_seconds += config_.throughput.ScanSeconds(size);
  result->frames_scored += size;
  ++result->chunks_scored;
}

FusionResult FusionEngine::Run(const core::QuerySpec& spec) {
  FusionResult result;
  std::unordered_set<detect::InstanceId> seen_instances;
  core::QueryResult& q = result.query;
  const int64_t max_samples =
      spec.max_samples > 0 ? spec.max_samples : repo_->total_frames();
  double clock_seconds = 0.0;

  while (q.frames_processed < max_samples &&
         static_cast<int64_t>(q.results.size()) < spec.result_limit) {
    if (available_.empty()) break;
    const video::ChunkId j = policy_->Pick(stats_, available_, &rng_);
    const size_t ji = static_cast<size_t>(j);

    if (!scored_[ji] && stats_.n(j) >= config_.scan_after_samples) {
      // Commitment gate passed: pay this chunk's scan once, upgrade to
      // score-weighted sampling.
      ScoreChunk(j, &result);
      clock_seconds += config_.throughput.ScanSeconds(
          (*chunks_)[ji].frames.size());
    }
    if (samplers_[ji] == nullptr) {
      samplers_[ji] = std::make_unique<video::RandomPlusFrameSampler>(
          (*chunks_)[ji].frames);
    }

    // Draw; a freshly-scored chunk's weighted sampler may emit frames that
    // were already processed pre-scan — skip those at zero cost.
    video::FrameId frame = -1;
    while (!samplers_[ji]->exhausted()) {
      video::FrameId candidate = samplers_[ji]->Next(&rng_);
      if (!processed_before_scan_[ji].count(candidate)) {
        frame = candidate;
        break;
      }
    }
    if (samplers_[ji]->exhausted()) available_.Clear(j);
    if (frame < 0) continue;
    if (!scored_[ji]) processed_before_scan_[ji].insert(frame);

    std::vector<detect::Detection> dets = detector_->Detect(frame);
    q.inference_seconds += 1.0 / config_.throughput.sample_detect_fps;
    clock_seconds += 1.0 / config_.throughput.sample_detect_fps;
    track::MatchResult match = discriminator_->GetMatches(frame, dets);
    discriminator_->Add(frame, dets);
    ++q.frames_processed;
    stats_.Update(j, static_cast<int64_t>(match.d0.size()), match.num_d1);

    if (!match.d0.empty()) {
      bool new_instance = false;
      for (const auto& d : match.d0) {
        q.results.push_back(d);
        if (d.instance != detect::kNoInstance &&
            seen_instances.insert(d.instance).second) {
          new_instance = true;
        }
      }
      q.reported.Record(q.frames_processed,
                        static_cast<int64_t>(q.results.size()));
      result.reported_by_ms.Record(
          static_cast<int64_t>(clock_seconds * 1000.0),
          static_cast<int64_t>(q.results.size()));
      if (new_instance) {
        q.true_instances.Record(q.frames_processed,
                                static_cast<int64_t>(seen_instances.size()));
      }
    }
  }
  q.reported.Finish(q.frames_processed);
  q.true_instances.Finish(q.frames_processed);
  result.reported_by_ms.Finish(
      static_cast<int64_t>(clock_seconds * 1000.0));
  return result;
}

}  // namespace proxy
}  // namespace exsample
