#include "net/event_loop.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <unordered_map>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#define EXSAMPLE_HAVE_EPOLL 1
#else
#define EXSAMPLE_HAVE_EPOLL 0
#endif

namespace exsample {
namespace net {
namespace {

Status Errno(const char* what) {
  return Status::InvalidArgument(std::string(what) + ": " + strerror(errno));
}

/// Portable fallback: poll(2) over a persistent vector. `fds_` and the
/// parallel `data_` are edited in place by Add/Modify/Remove (remove is
/// swap-with-last), so a tick allocates nothing once the vectors reach
/// their high-water size.
class PollLoop final : public EventLoop {
 public:
  Status Add(int fd, bool want_read, bool want_write, void* data) override {
    if (index_.count(fd) > 0) {
      return Status::InvalidArgument("poll loop: fd already registered");
    }
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, Events(want_read, want_write), 0});
    data_.push_back(data);
    return Status::Ok();
  }

  Status Modify(int fd, bool want_read, bool want_write,
                void* data) override {
    auto it = index_.find(fd);
    if (it == index_.end()) {
      return Status::InvalidArgument("poll loop: fd not registered");
    }
    fds_[it->second].events = Events(want_read, want_write);
    data_[it->second] = data;
    return Status::Ok();
  }

  Status Remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) {
      return Status::InvalidArgument("poll loop: fd not registered");
    }
    const size_t at = it->second;
    const size_t last = fds_.size() - 1;
    if (at != last) {
      fds_[at] = fds_[last];
      data_[at] = data_[last];
      index_[fds_[at].fd] = at;
    }
    fds_.pop_back();
    data_.pop_back();
    index_.erase(it);
    return Status::Ok();
  }

  Result<int> Wait(int timeout_ms, std::vector<Event>* events) override {
    events->clear();
    const int ready =
        poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return 0;
      return Errno("poll");
    }
    if (ready == 0) return 0;
    for (size_t i = 0; i < fds_.size(); ++i) {
      const short revents = fds_[i].revents;
      if (revents == 0) continue;
      Event event;
      event.data = data_[i];
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.error = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return static_cast<int>(events->size());
  }

  size_t size() const override { return fds_.size(); }
  const char* backend_name() const override { return "poll"; }

 private:
  static short Events(bool want_read, bool want_write) {
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    return events;
  }

  std::vector<pollfd> fds_;
  std::vector<void*> data_;
  std::unordered_map<int, size_t> index_;
};

#if EXSAMPLE_HAVE_EPOLL

class EpollLoop final : public EventLoop {
 public:
  static Result<std::unique_ptr<EventLoop>> Make() {
    const int fd = epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) return Errno("epoll_create1");
    auto loop = std::unique_ptr<EpollLoop>(new EpollLoop());
    loop->epoll_fd_ = fd;
    return std::unique_ptr<EventLoop>(std::move(loop));
  }

  ~EpollLoop() override {
    if (epoll_fd_ >= 0) close(epoll_fd_);
  }

  Status Add(int fd, bool want_read, bool want_write, void* data) override {
    epoll_event event = Spec(want_read, want_write, data);
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      return Errno("epoll_ctl(ADD)");
    }
    ++size_;
    return Status::Ok();
  }

  Status Modify(int fd, bool want_read, bool want_write,
                void* data) override {
    epoll_event event = Spec(want_read, want_write, data);
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
    return Status::Ok();
  }

  Status Remove(int fd) override {
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return Errno("epoll_ctl(DEL)");
    }
    --size_;
    return Status::Ok();
  }

  Result<int> Wait(int timeout_ms, std::vector<Event>* events) override {
    events->clear();
    epoll_event ready[256];
    const int n = epoll_wait(epoll_fd_, ready, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      Event event;
      event.data = ready[i].data.ptr;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return n;
  }

  size_t size() const override { return size_; }
  const char* backend_name() const override { return "epoll"; }

 private:
  EpollLoop() = default;

  static epoll_event Spec(bool want_read, bool want_write, void* data) {
    epoll_event event{};
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    event.data.ptr = data;
    return event;
  }

  int epoll_fd_ = -1;
  size_t size_ = 0;
};

#endif  // EXSAMPLE_HAVE_EPOLL

}  // namespace

bool EventLoop::EpollSupported() { return EXSAMPLE_HAVE_EPOLL != 0; }

Result<std::unique_ptr<EventLoop>> EventLoop::Create(Backend backend) {
#if EXSAMPLE_HAVE_EPOLL
  if (backend == Backend::kAuto || backend == Backend::kEpoll) {
    return EpollLoop::Make();
  }
#else
  if (backend == Backend::kEpoll) {
    return Status::InvalidArgument("epoll is not available on this platform");
  }
#endif
  return std::unique_ptr<EventLoop>(new PollLoop());
}

}  // namespace net
}  // namespace exsample
