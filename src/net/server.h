// net::Server: a sharded, epoll-based TCP front end for the serve protocol.
//
// The front end is N event-loop shards, each a thread running its own
// net::EventLoop (epoll where available, poll(2) fallback) over its own
// slice of connections. Each connection gets its own
// serve::ProtocolHandler (so its sessions are private and are closed when
// it disconnects) while all handlers, on all shards, share one
// serve::SessionManager — many network tenants amortizing one scheduler,
// one warm-start cache, one dataset pool.
//
// Sharding model (the lock-light path):
//   - A connection is owned by exactly one shard for its whole life:
//     its reads, protocol dispatch, and writes all happen on that shard's
//     thread, so per-connection state (LineBuffer, write buffer, handler)
//     needs no locking.
//   - Shards meet only in the shared serving layer: SessionManager and
//     StatsCache are internally locked with short critical sections, and
//     DatasetPool serializes first-touch generation behind its own mutex.
//   - Listener strategy: with SO_REUSEPORT (Linux), every shard owns its
//     own listening socket bound to the same address and the kernel
//     spreads accepts across them with zero cross-shard traffic. Where
//     SO_REUSEPORT is unavailable (or when forced via options), shard 0
//     accepts on a single listener and hands connections to shards
//     round-robin through a tiny mutexed inbox plus a wake-pipe byte —
//     the only cross-shard handoff in the data path.
//
// Layering: the server owns bytes, framing, and connection lifecycle;
// request semantics live entirely in the handler. The server's only
// protocol knowledge is the NDJSON envelope of its two transport-level
// errors ("server full", "line too long"), kept here so clients always
// receive well-formed response lines.
//
// Transport semantics per connection (identical at every shard count):
//   - NDJSON: one request per '\n'-terminated line, one response line per
//     request, in order. Requests may arrive fragmented or coalesced;
//     LineBuffer reassembles them.
//   - line-length limit: a line longer than max_line_bytes gets one error
//     response and the connection is closed (framing is unrecoverable).
//   - write backpressure: responses queue in a per-connection buffer;
//     while the queue exceeds max_write_buffer_bytes the shard stops
//     reading from that connection (requests-in naturally throttle to
//     responses-out; the buffer cannot grow without new requests).
//   - idle timeout: connections silent for idle_timeout_seconds are closed.
//   - "quit" (or EOF) ends only that connection, never the server.
//
// Shutdown: RequestStop() — also wired to SIGINT/SIGTERM through
// InstallSignalHandlers() — writes one byte to a stop pipe that every
// shard's event loop watches (and, being level-triggered, keeps reporting
// until each shard has seen it). Every shard then stops accepting, stops
// reading, flushes pending response buffers for up to
// drain_timeout_seconds, closes its connections (each handler closes its
// sessions, freeing admission slots and recording finished stats), and
// exits; Serve() joins them all and returns.
//
// Determinism: a connection's handler runs all of its requests in arrival
// order on one thread, and session results depend only on
// (base_seed, session id), so a given request script over one connection
// is bit-identical to stdin mode for ANY shard count — the JobSeed
// contract survives sharding (pinned by the shard determinism matrix in
// tests/tools/serve_net_test.cc).

#ifndef EXSAMPLE_NET_SERVER_H_
#define EXSAMPLE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "serve/protocol_handler.h"
#include "util/status.h"

namespace exsample {
namespace net {

struct ServerOptions {
  /// IPv4 address to bind, dotted-quad.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Accepted connections beyond this (summed across shards) are refused
  /// with a JSON error line.
  int max_connections = 256;
  /// Per-request line-length limit (bytes, '\n' excluded).
  size_t max_line_bytes = 1 << 20;
  /// Pending-response bytes per connection before reads pause.
  size_t max_write_buffer_bytes = 4 << 20;
  /// Close connections with no inbound traffic for this long; 0 = never.
  double idle_timeout_seconds = 0.0;
  /// Graceful-shutdown window for flushing pending responses.
  double drain_timeout_seconds = 5.0;

  /// Event-loop shard threads. 1 reproduces the single-threaded PR-5
  /// behavior exactly; tools default to hardware concurrency.
  int shards = 1;

  /// How accepted connections reach shards.
  enum class ListenerMode {
    kAuto,       ///< SO_REUSEPORT when it works and shards > 1, else handoff
    kReusePort,  ///< per-shard listeners; Create fails if unsupported
    kHandoff,    ///< one listener on shard 0, round-robin handoff
  };
  ListenerMode listener_mode = ListenerMode::kAuto;

  /// Readiness backend per shard (kAuto = epoll where available).
  EventLoop::Backend backend = EventLoop::Backend::kAuto;

  /// Optional metrics registry (non-owning; must outlive the server). When
  /// set, the server registers the net.* families with one cell per shard
  /// — accepts, refusals, bytes in/out, requests, request latency,
  /// backpressure pauses, idle reaps, live connections — and each shard
  /// writes only its own cell, preserving the lock-light sharding model.
  obs::Registry* metrics = nullptr;
};

class Server {
 public:
  /// Creates the per-connection protocol handler. Called on the owning
  /// shard's thread, once per accepted connection.
  using HandlerFactory =
      std::function<std::unique_ptr<serve::ProtocolHandler>()>;

  /// Binds and listens (so port() is valid immediately), or fails with a
  /// Status describing the socket error.
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options,
                                                HandlerFactory factory);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Runs shard 0 on the calling thread and shards 1..N-1 on their own
  /// threads until a stop is requested, then drains every shard, joins
  /// them, and returns (the first shard error, or Ok). Call at most once.
  Status Serve();

  /// Requests a graceful stop. Thread-safe and async-signal-safe (it only
  /// writes one byte to an internal pipe); returns immediately.
  void RequestStop();

  /// Routes SIGINT and SIGTERM to RequestStop() on this server. At most
  /// one server per process may install handlers at a time. The first
  /// signal triggers a graceful drain and re-arms the default disposition
  /// (a second signal terminates immediately); the destructor restores
  /// SIG_DFL for both, so signals behave normally once the server is gone
  /// and a later server may install handlers again.
  Status InstallSignalHandlers();

  /// Currently open connections across all shards (readable from any
  /// thread; tests use it).
  size_t active_connections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

  /// Number of event-loop shards.
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Per-shard open-connection counts (tests assert the distribution).
  std::vector<size_t> ConnectionsPerShard() const;

  /// The listener strategy actually in effect: "reuseport" or "handoff".
  const char* listener_mode_name() const {
    return reuseport_ ? "reuseport" : "handoff";
  }

  /// Wall seconds since Create() bound the listeners (the "stats" and
  /// "metrics" commands report this as server uptime).
  double uptime_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
        .count();
  }

 private:
  struct Connection;
  struct Shard;

  Server(ServerOptions options, HandlerFactory factory);
  Status Bind();
  Result<int> BindListener(uint16_t port, bool reuseport);

  /// The shard event loop, run on the shard's thread (shard 0: the
  /// Serve() caller's thread).
  void RunShard(Shard* shard);
  Status ShardLoop(Shard* shard);

  void AcceptNew(Shard* shard);
  /// Registers an accepted (already admitted + nonblocking) fd with this
  /// shard; closes it instead when the shard is already draining.
  void AdoptFd(Shard* shard, int fd);
  /// Reads once; returns false when the connection died.
  bool ReadAndHandle(Shard* shard, Connection* conn);
  /// Dispatches one request line through the connection's handler, with
  /// request counting / latency observation when metrics are attached.
  serve::ProtocolHandler::Outcome HandleRequest(Shard* shard,
                                                Connection* conn,
                                                const std::string& line);
  /// Flushes pending output; returns false when the connection died.
  bool FlushWrites(Shard* shard, Connection* conn);
  /// Re-arms the event-loop interest to match the connection state.
  void UpdateInterest(Shard* shard, Connection* conn);
  void DestroyConnection(Shard* shard, Connection* conn);

  const ServerOptions options_;
  const HandlerFactory factory_;
  uint16_t port_ = 0;
  bool reuseport_ = false;
  /// Stop pipe: RequestStop/signals write one byte; every shard watches
  /// the read end (level-triggered, never drained) and deregisters it
  /// once seen, so one byte fans out to all shards.
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  bool installed_signal_handlers_ = false;
  std::atomic<size_t> total_connections_{0};
  /// Round-robin cursor for handoff mode (touched only by the acceptor
  /// shard's thread).
  size_t next_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point started_{};

  /// net.* instruments, one cell per shard; all null when
  /// options_.metrics is null (every touch is null-guarded).
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_refused_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_backpressure_pauses_ = nullptr;
  obs::Counter* m_idle_reaps_ = nullptr;
  obs::Gauge* m_connections_ = nullptr;
  obs::LatencyHistogram* m_request_seconds_ = nullptr;
};

}  // namespace net
}  // namespace exsample

#endif  // EXSAMPLE_NET_SERVER_H_
