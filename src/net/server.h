// net::Server: a poll(2)-based TCP front end for the serve protocol.
//
// One event-loop thread multiplexes many concurrent client connections.
// Each connection gets its own serve::ProtocolHandler (so its sessions are
// private and are closed when it disconnects) while all handlers share one
// serve::SessionManager — the whole point: many network tenants amortizing
// one scheduler, one warm-start cache, one dataset pool.
//
// Layering: the server owns bytes, framing, and connection lifecycle;
// request semantics live entirely in the handler. The server's only
// protocol knowledge is the NDJSON envelope of its two transport-level
// errors ("server full", "line too long"), kept here so clients always
// receive well-formed response lines.
//
// Transport semantics per connection:
//   - NDJSON: one request per '\n'-terminated line, one response line per
//     request, in order. Requests may arrive fragmented or coalesced;
//     LineBuffer reassembles them.
//   - line-length limit: a line longer than max_line_bytes gets one error
//     response and the connection is closed (framing is unrecoverable).
//   - write backpressure: responses queue in a per-connection buffer;
//     while the queue exceeds max_write_buffer_bytes the server stops
//     reading from that connection (requests-in naturally throttle to
//     responses-out; the buffer cannot grow without new requests).
//   - idle timeout: connections silent for idle_timeout_seconds are closed.
//   - "quit" (or EOF) ends only that connection, never the server.
//
// Shutdown: RequestStop() — also wired to SIGINT/SIGTERM through
// InstallSignalHandlers() — makes Serve() stop accepting, stop reading,
// flush pending response buffers for up to drain_timeout_seconds, close
// every connection (each handler closes its sessions, freeing admission
// slots and recording finished stats), and return.
//
// The event loop is single-threaded by design: protocol work (including
// first-touch dataset generation on open) runs on the loop thread, while
// the actual query work runs on the SessionManager's pool. Handlers and
// the DatasetPool are therefore used from one thread only.

#ifndef EXSAMPLE_NET_SERVER_H_
#define EXSAMPLE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol_handler.h"
#include "util/status.h"

namespace exsample {
namespace net {

struct ServerOptions {
  /// IPv4 address to bind, dotted-quad.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Accepted connections beyond this are refused with a JSON error line.
  int max_connections = 256;
  /// Per-request line-length limit (bytes, '\n' excluded).
  size_t max_line_bytes = 1 << 20;
  /// Pending-response bytes per connection before reads pause.
  size_t max_write_buffer_bytes = 4 << 20;
  /// Close connections with no inbound traffic for this long; 0 = never.
  double idle_timeout_seconds = 0.0;
  /// Graceful-shutdown window for flushing pending responses.
  double drain_timeout_seconds = 5.0;
};

class Server {
 public:
  /// Creates the per-connection protocol handler. Called on the event-loop
  /// thread, once per accepted connection.
  using HandlerFactory =
      std::function<std::unique_ptr<serve::ProtocolHandler>()>;

  /// Binds and listens (so port() is valid immediately), or fails with a
  /// Status describing the socket error.
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options,
                                                HandlerFactory factory);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until a stop is requested,
  /// then drains and returns. Call at most once.
  Status Serve();

  /// Requests a graceful stop. Thread-safe and async-signal-safe (it only
  /// writes one byte to an internal pipe); returns immediately.
  void RequestStop();

  /// Routes SIGINT and SIGTERM to RequestStop() on this server. At most
  /// one server per process may install handlers at a time. The first
  /// signal triggers a graceful drain and re-arms the default disposition
  /// (a second signal terminates immediately); the destructor restores
  /// SIG_DFL for both, so signals behave normally once the server is gone
  /// and a later server may install handlers again.
  Status InstallSignalHandlers();

  /// Currently open connections (readable from any thread; tests use it).
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  Server(ServerOptions options, HandlerFactory factory);
  Status Bind();

  void AcceptNew();
  /// Reads once; returns false when the connection died.
  bool ReadAndHandle(Connection* conn);
  /// Flushes pending output; returns false when the connection died.
  bool FlushWrites(Connection* conn);
  void DestroyConnection(size_t index);

  const ServerOptions options_;
  const HandlerFactory factory_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  /// Spare fd burned to accept-and-drop under EMFILE (see AcceptNew).
  int reserve_fd_ = -1;
  bool installed_signal_handlers_ = false;
  bool draining_ = false;
  std::atomic<size_t> active_connections_{0};
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace net
}  // namespace exsample

#endif  // EXSAMPLE_NET_SERVER_H_
