#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "net/line_buffer.h"
#include "util/json.h"

namespace exsample {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

/// Write-end of the wake pipe of the server that installed signal
/// handlers. A signal handler may only touch async-signal-safe state, so
/// the handler just writes one byte here; the event loop interprets any
/// wake-pipe byte as a stop request.
std::atomic<int> g_signal_wake_fd{-1};

void OnStopSignal(int sig) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'q';
    // The pipe is non-blocking; if it is full a wake is already pending.
    [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
  }
  // One graceful stop per signal: re-arm the default disposition so a
  // second Ctrl-C / SIGTERM terminates immediately instead of being
  // swallowed while the drain runs (sigaction is async-signal-safe).
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(sig, &dfl, nullptr);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::InvalidArgument(std::string("fcntl(O_NONBLOCK): ") +
                                   strerror(errno));
  }
  return Status::Ok();
}

std::string ErrorLine(const std::string& message) {
  return Json::Object().Set("ok", false).Set("error", message).Dump() + "\n";
}

}  // namespace

struct Server::Connection {
  explicit Connection(size_t max_line_bytes) : in(max_line_bytes) {}

  int fd = -1;
  LineBuffer in;
  std::string out;        // pending response bytes
  size_t out_offset = 0;  // prefix of `out` already written
  std::unique_ptr<serve::ProtocolHandler> handler;
  Clock::time_point last_activity;
  /// Stop reading (quit / overflow / drain); close once `out` flushes.
  bool closing = false;

  size_t pending_out() const { return out.size() - out_offset; }
};

Server::Server(ServerOptions options, HandlerFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {}

Server::~Server() {
  if (installed_signal_handlers_) {
    // Hand SIGINT/SIGTERM back to the default disposition: once this
    // server is gone, termination signals must terminate again (e.g.
    // while the tool saves its stats file after Serve() returns).
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    sigemptyset(&dfl.sa_mask);
    sigaction(SIGINT, &dfl, nullptr);
    sigaction(SIGTERM, &dfl, nullptr);
  }
  if (g_signal_wake_fd.load(std::memory_order_relaxed) == wake_write_fd_) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  for (size_t i = connections_.size(); i > 0; --i) DestroyConnection(i - 1);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  if (reserve_fd_ >= 0) close(reserve_fd_);
}

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options,
                                               HandlerFactory factory) {
  if (!factory) {
    return Status::InvalidArgument("net::Server needs a handler factory");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.max_line_bytes < 2) {
    return Status::InvalidArgument("max_line_bytes must be >= 2");
  }
  std::unique_ptr<Server> server(
      new Server(options, std::move(factory)));
  Status bound = server->Bind();
  if (!bound.ok()) return bound;
  return server;
}

Status Server::Bind() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::InvalidArgument(std::string("pipe: ") + strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  for (int fd : pipe_fds) {
    Status status = SetNonBlocking(fd);
    if (!status.ok()) return status;
  }

  // Held in reserve so fd exhaustion can still accept-and-drop (see
  // AcceptNew); harmless if it fails to open.
  reserve_fd_ = open("/dev/null", O_RDONLY);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::InvalidArgument(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 bind address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::InvalidArgument("bind " + options_.host + ":" +
                                   std::to_string(options_.port) + ": " +
                                   strerror(errno));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::InvalidArgument(std::string("listen: ") + strerror(errno));
  }
  Status status = SetNonBlocking(listen_fd_);
  if (!status.ok()) return status;

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::InvalidArgument(std::string("getsockname: ") +
                                   strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

void Server::RequestStop() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
}

Status Server::InstallSignalHandlers() {
  int expected = -1;
  if (!g_signal_wake_fd.compare_exchange_strong(expected, wake_write_fd_,
                                                std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "another net::Server already installed signal handlers");
  }
  struct sigaction action {};
  action.sa_handler = OnStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // interrupt poll() so the stop is prompt
  if (sigaction(SIGINT, &action, nullptr) != 0 ||
      sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::InvalidArgument(std::string("sigaction: ") +
                                   strerror(errno));
  }
  installed_signal_handlers_ = true;
  return Status::Ok();
}

void Server::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        // Fd exhaustion: the queued connection stays pending, and
        // level-triggered poll would re-report the listen fd forever — a
        // busy spin that never serves anyone. Burn the reserve fd to
        // accept-and-drop the connection, then re-arm the reserve.
        if (reserve_fd_ >= 0) {
          close(reserve_fd_);
          reserve_fd_ = -1;
          const int victim = accept(listen_fd_, nullptr, nullptr);
          if (victim >= 0) close(victim);
          reserve_fd_ = open("/dev/null", O_RDONLY);
          continue;
        }
      }
      return;  // EAGAIN / transient error: try next round
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Best-effort refusal so the client sees why instead of a bare RST.
      const std::string refusal = ErrorLine(
          "server full (" + std::to_string(options_.max_connections) +
          " connections)");
      [[maybe_unused]] ssize_t n =
          send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_line_bytes);
    conn->fd = fd;
    conn->handler = factory_();
    conn->last_activity = Clock::now();
    connections_.push_back(std::move(conn));
    active_connections_.store(connections_.size(), std::memory_order_relaxed);
  }
}

bool Server::ReadAndHandle(Connection* conn) {
  char buffer[64 * 1024];
  const ssize_t n = recv(conn->fd, buffer, sizeof(buffer), 0);
  if (n == 0) {
    // Orderly half-close. A pipelining client (printf ... | nc) shuts its
    // write side down and then reads. Two stdin-parity obligations before
    // we hang up: a final unterminated line is still a request (getline
    // answers it on the stdin transport, so the socket must too), and
    // responses still queued must be flushed, exactly like the quit path.
    if (!conn->closing) {
      std::string line;
      if (conn->in.TakeRemainder(&line) == LineBuffer::Next::kLine) {
        serve::ProtocolHandler::Outcome outcome =
            conn->handler->HandleLine(line);
        if (!outcome.response.empty()) {
          conn->out += outcome.response;
          conn->out += '\n';
        }
      }
    }
    conn->closing = true;
    return FlushWrites(conn);
  }
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  conn->last_activity = Clock::now();
  conn->in.Append(buffer, static_cast<size_t>(n));

  std::string line;
  while (!conn->closing) {
    const LineBuffer::Next next = conn->in.Pop(&line);
    if (next == LineBuffer::Next::kNeedMore) break;
    if (next == LineBuffer::Next::kOverflow) {
      conn->out += ErrorLine(
          "line too long (max " + std::to_string(options_.max_line_bytes) +
          " bytes); closing connection");
      conn->closing = true;
      break;
    }
    serve::ProtocolHandler::Outcome outcome = conn->handler->HandleLine(line);
    if (!outcome.response.empty()) {
      conn->out += outcome.response;
      conn->out += '\n';
    }
    if (outcome.quit) conn->closing = true;
  }
  return FlushWrites(conn);
}

bool Server::FlushWrites(Connection* conn) {
  while (conn->pending_out() > 0) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_offset,
                           conn->pending_out(), MSG_NOSIGNAL);
    if (n < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    conn->out_offset += static_cast<size_t>(n);
    // Outbound progress counts as activity: a client draining a large
    // response backlog (possibly read-paused by backpressure) is alive,
    // not idle — it must not be reaped mid-stream.
    conn->last_activity = Clock::now();
  }
  conn->out.clear();
  conn->out_offset = 0;
  return !conn->closing;  // fully flushed: a closing connection is done
}

void Server::DestroyConnection(size_t index) {
  Connection* conn = connections_[index].get();
  if (conn->fd >= 0) close(conn->fd);
  // The handler closes this connection's sessions (freeing their admission
  // slots) before the Connection goes away.
  conn->handler.reset();
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  active_connections_.store(connections_.size(), std::memory_order_relaxed);
}

Status Server::Serve() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("server was not created via Create()");
  }
  Clock::time_point drain_deadline{};

  while (true) {
    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 2);
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    // Keep accepting even at capacity: AcceptNew refuses the overflow
    // connection with a JSON error line instead of leaving it queued.
    const bool accepting = !draining_;
    fds.push_back(pollfd{listen_fd_,
                         static_cast<short>(accepting ? POLLIN : 0), 0});
    for (const auto& conn : connections_) {
      short events = 0;
      const bool paused =
          conn->pending_out() > options_.max_write_buffer_bytes;
      if (!conn->closing && !draining_ && !paused) events |= POLLIN;
      if (conn->pending_out() > 0) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
    }

    // Block indefinitely unless a timer (idle timeout / drain deadline)
    // needs periodic checks; the wake pipe interrupts either way.
    const int timeout_ms =
        (options_.idle_timeout_seconds > 0.0 || draining_) ? 100 : -1;
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return Status::InvalidArgument(std::string("poll: ") + strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      char sink[64];
      while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
      if (!draining_) {
        draining_ = true;
        drain_deadline =
            Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                               options_.drain_timeout_seconds * 1e6));
      }
    }

    if (!draining_ && (fds[1].revents & POLLIN)) AcceptNew();

    const Clock::time_point now = Clock::now();
    // Walk only the connections this round's pollfds cover — AcceptNew may
    // just have appended new ones with no revents entry — and backwards,
    // because DestroyConnection erases by index.
    for (size_t i = fds.size() - 2; i > 0; --i) {
      const size_t index = i - 1;
      Connection* conn = connections_[index].get();
      const short revents = fds[index + 2].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer reset/vanished. Any queued responses are undeliverable.
        alive = false;
      } else {
        if (alive && (revents & POLLOUT)) alive = FlushWrites(conn);
        if (alive && (revents & POLLIN)) alive = ReadAndHandle(conn);
        if (alive && conn->closing && conn->pending_out() == 0) alive = false;
        if (alive && options_.idle_timeout_seconds > 0.0 && !draining_ &&
            now - conn->last_activity >
                std::chrono::microseconds(static_cast<int64_t>(
                    options_.idle_timeout_seconds * 1e6))) {
          alive = false;
        }
      }
      if (!alive) DestroyConnection(index);
    }

    if (draining_) {
      bool flush_pending = false;
      for (const auto& conn : connections_) {
        if (conn->pending_out() > 0) flush_pending = true;
      }
      if (!flush_pending || Clock::now() >= drain_deadline) {
        for (size_t i = connections_.size(); i > 0; --i) {
          DestroyConnection(i - 1);
        }
        return Status::Ok();
      }
    }
  }
}

}  // namespace net
}  // namespace exsample
