#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "net/line_buffer.h"
#include "util/json.h"

namespace exsample {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds Micros(double seconds) {
  return std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
}

/// Write-end of the stop pipe of the server that installed signal
/// handlers. A signal handler may only touch async-signal-safe state, so
/// the handler just writes one byte here; every shard interprets a
/// readable stop pipe as a drain request.
std::atomic<int> g_signal_wake_fd{-1};

void OnStopSignal(int sig) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'q';
    // The pipe is non-blocking; if it is full a wake is already pending.
    [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
  }
  // One graceful stop per signal: re-arm the default disposition so a
  // second Ctrl-C / SIGTERM terminates immediately instead of being
  // swallowed while the drain runs (sigaction is async-signal-safe).
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(sig, &dfl, nullptr);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::InvalidArgument(std::string("fcntl(O_NONBLOCK): ") +
                                   strerror(errno));
  }
  return Status::Ok();
}

std::string ErrorLine(const std::string& message) {
  return Json::Object().Set("ok", false).Set("error", message).Dump() + "\n";
}

}  // namespace

struct Server::Connection {
  explicit Connection(size_t max_line_bytes) : in(max_line_bytes) {}

  int fd = -1;
  /// Position in the owning shard's connection vector (swap-remove keeps
  /// it current).
  size_t index = 0;
  LineBuffer in;
  std::string out;        // pending response bytes
  size_t out_offset = 0;  // prefix of `out` already written
  std::unique_ptr<serve::ProtocolHandler> handler;
  Clock::time_point last_activity;
  /// Stop reading (quit / overflow / drain); close once `out` flushes.
  bool closing = false;
  /// Interest currently registered with the event loop (so UpdateInterest
  /// only issues a syscall when something changed).
  bool want_read = false;
  bool want_write = false;

  size_t pending_out() const { return out.size() - out_offset; }
};

struct Server::Shard {
  int index = 0;
  std::unique_ptr<EventLoop> loop;
  /// Own listener (every shard in reuseport mode; shard 0 in handoff).
  int listen_fd = -1;
  /// Handoff/wake pipe: the acceptor (or RequestStop racing an inbox
  /// push) writes a byte to nudge this shard's loop.
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  /// Spare fd burned to accept-and-drop under EMFILE (see AcceptNew).
  int reserve_fd = -1;
  /// Connections owned by this shard — touched only from its thread.
  std::vector<std::unique_ptr<Connection>> connections;
  /// Accepted fds handed off by the acceptor shard, awaiting adoption.
  std::mutex inbox_mu;
  std::vector<int> inbox;
  /// connections.size(), mirrored for cross-thread reads.
  std::atomic<size_t> active{0};
  std::thread thread;
  Status status = Status::Ok();
  bool draining = false;
  Clock::time_point drain_deadline{};
  /// Tag bytes: their addresses identify control events in the loop
  /// (everything else is a Connection*).
  char listener_tag = 0;
  char wake_tag = 0;
  char stop_tag = 0;
};

Server::Server(ServerOptions options, HandlerFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {}

Server::~Server() {
  if (installed_signal_handlers_) {
    // Hand SIGINT/SIGTERM back to the default disposition: once this
    // server is gone, termination signals must terminate again (e.g.
    // while the tool saves its stats file after Serve() returns).
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    sigemptyset(&dfl.sa_mask);
    sigaction(SIGINT, &dfl, nullptr);
    sigaction(SIGTERM, &dfl, nullptr);
  }
  if (g_signal_wake_fd.load(std::memory_order_relaxed) == stop_write_fd_) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    for (auto& conn : shard->connections) {
      if (conn->fd >= 0) close(conn->fd);
      conn->handler.reset();
    }
    for (int fd : shard->inbox) close(fd);
    if (shard->listen_fd >= 0) close(shard->listen_fd);
    if (shard->wake_read_fd >= 0) close(shard->wake_read_fd);
    if (shard->wake_write_fd >= 0) close(shard->wake_write_fd);
    if (shard->reserve_fd >= 0) close(shard->reserve_fd);
  }
  if (stop_read_fd_ >= 0) close(stop_read_fd_);
  // The write end is what OnStopSignal writes to. Even after the handler
  // is de-registered above, a signal that landed on another thread may
  // already be executing with the old fd value loaded — closing here
  // would race that in-flight write (and could hand the recycled fd
  // number to an unrelated file). If handlers were ever installed, leak
  // the single write end instead: InstallSignalHandlers is a
  // once-per-process affair and the process is on its way out.
  if (stop_write_fd_ >= 0 && !installed_signal_handlers_) {
    close(stop_write_fd_);
  }
}

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options,
                                               HandlerFactory factory) {
  if (!factory) {
    return Status::InvalidArgument("net::Server needs a handler factory");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.max_line_bytes < 2) {
    return Status::InvalidArgument("max_line_bytes must be >= 2");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(options, std::move(factory)));
  Status bound = server->Bind();
  if (!bound.ok()) return bound;
  return server;
}

Result<int> Server::BindListener(uint16_t port, bool reuseport) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::InvalidArgument(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      close(fd);
      return Status::InvalidArgument(std::string("setsockopt(SO_REUSEPORT): ") +
                                     strerror(errno));
    }
#else
    close(fd);
    return Status::InvalidArgument("SO_REUSEPORT is not available");
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad IPv4 bind address: " + options_.host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::InvalidArgument(
        "bind " + options_.host + ":" + std::to_string(port) + ": " +
        strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 128) != 0) {
    Status status =
        Status::InvalidArgument(std::string("listen: ") + strerror(errno));
    close(fd);
    return status;
  }
  Status status = SetNonBlocking(fd);
  if (!status.ok()) {
    close(fd);
    return status;
  }
  return fd;
}

Status Server::Bind() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::InvalidArgument(std::string("pipe: ") + strerror(errno));
  }
  stop_read_fd_ = pipe_fds[0];
  stop_write_fd_ = pipe_fds[1];
  for (int fd : pipe_fds) {
    Status status = SetNonBlocking(fd);
    if (!status.ok()) return status;
  }

  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    auto loop = EventLoop::Create(options_.backend);
    if (!loop.ok()) return loop.status();
    shard->loop = std::move(loop).value();
    int wake[2];
    if (pipe(wake) != 0) {
      return Status::InvalidArgument(std::string("pipe: ") + strerror(errno));
    }
    shard->wake_read_fd = wake[0];
    shard->wake_write_fd = wake[1];
    for (int fd : wake) {
      Status status = SetNonBlocking(fd);
      if (!status.ok()) return status;
    }
    shards_.push_back(std::move(shard));
  }

  // Listener strategy. SO_REUSEPORT gives every shard its own accept
  // queue with kernel-side load spreading; the handoff fallback (also the
  // shards == 1 shape, where they coincide) accepts on shard 0 and deals
  // connections round-robin.
  const bool try_reuseport =
      options_.shards > 1 &&
      options_.listener_mode != ServerOptions::ListenerMode::kHandoff;
  if (try_reuseport) {
    auto first = BindListener(options_.port, /*reuseport=*/true);
    if (first.ok()) {
      reuseport_ = true;
      shards_[0]->listen_fd = first.value();
    } else if (options_.listener_mode ==
               ServerOptions::ListenerMode::kReusePort) {
      return first.status();
    }
  }
  if (!reuseport_) {
    auto fd = BindListener(options_.port, /*reuseport=*/false);
    if (!fd.ok()) return fd.status();
    shards_[0]->listen_fd = fd.value();
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(shards_[0]->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                  &len) != 0) {
    return Status::InvalidArgument(std::string("getsockname: ") +
                                   strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  if (reuseport_) {
    // The remaining shards bind the now-resolved port.
    for (size_t i = 1; i < shards_.size(); ++i) {
      auto fd = BindListener(port_, /*reuseport=*/true);
      if (!fd.ok()) return fd.status();
      shards_[i]->listen_fd = fd.value();
    }
  }
  for (auto& shard : shards_) {
    // Held in reserve so fd exhaustion can still accept-and-drop (see
    // AcceptNew); harmless if it fails to open.
    if (shard->listen_fd >= 0) shard->reserve_fd = open("/dev/null", O_RDONLY);
  }

  if (options_.metrics != nullptr) {
    obs::Registry* reg = options_.metrics;
    const size_t cells = shards_.size();
    m_accepted_ = reg->GetCounter("net.accepted", cells);
    m_refused_ = reg->GetCounter("net.refused", cells);
    m_bytes_in_ = reg->GetCounter("net.bytes_in", cells);
    m_bytes_out_ = reg->GetCounter("net.bytes_out", cells);
    m_requests_ = reg->GetCounter("net.requests", cells);
    m_backpressure_pauses_ =
        reg->GetCounter("net.backpressure_pauses", cells);
    m_idle_reaps_ = reg->GetCounter("net.idle_reaps", cells);
    m_connections_ = reg->GetGauge("net.connections", cells);
    m_request_seconds_ = reg->GetHistogram("net.request_seconds", cells);
  }
  started_ = Clock::now();
  return Status::Ok();
}

void Server::RequestStop() {
  if (stop_write_fd_ < 0) return;
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = write(stop_write_fd_, &byte, 1);
}

Status Server::InstallSignalHandlers() {
  int expected = -1;
  if (!g_signal_wake_fd.compare_exchange_strong(expected, stop_write_fd_,
                                                std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "another net::Server already installed signal handlers");
  }
  struct sigaction action {};
  action.sa_handler = OnStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // interrupt the wait so the stop is prompt
  if (sigaction(SIGINT, &action, nullptr) != 0 ||
      sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::InvalidArgument(std::string("sigaction: ") +
                                   strerror(errno));
  }
  installed_signal_handlers_ = true;
  return Status::Ok();
}

std::vector<size_t> Server::ConnectionsPerShard() const {
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->active.load(std::memory_order_relaxed));
  }
  return counts;
}

void Server::AcceptNew(Shard* shard) {
  while (true) {
    const int fd = accept(shard->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        // Fd exhaustion: the queued connection stays pending, and
        // level-triggered readiness would re-report the listen fd forever
        // — a busy spin that never serves anyone. Burn the reserve fd to
        // accept-and-drop the connection, then re-arm the reserve.
        if (shard->reserve_fd >= 0) {
          close(shard->reserve_fd);
          shard->reserve_fd = -1;
          const int victim = accept(shard->listen_fd, nullptr, nullptr);
          if (victim >= 0) close(victim);
          shard->reserve_fd = open("/dev/null", O_RDONLY);
          continue;
        }
      }
      return;  // EAGAIN / transient error: try next round
    }
    // Claim a slot first so concurrent reuseport acceptors cannot
    // collectively overshoot the cap.
    if (total_connections_.fetch_add(1, std::memory_order_relaxed) >=
        static_cast<size_t>(options_.max_connections)) {
      total_connections_.fetch_sub(1, std::memory_order_relaxed);
      if (m_refused_ != nullptr) {
        m_refused_->Add(1, static_cast<size_t>(shard->index));
      }
      // Best-effort refusal so the client sees why instead of a bare RST.
      const std::string refusal = ErrorLine(
          "server full (" + std::to_string(options_.max_connections) +
          " connections)");
      [[maybe_unused]] ssize_t n =
          send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      total_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (m_accepted_ != nullptr) {
      m_accepted_->Add(1, static_cast<size_t>(shard->index));
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Shard* target = shard;
    if (!reuseport_ && shards_.size() > 1) {
      // Handoff mode: only the acceptor shard runs this, so the
      // round-robin cursor needs no lock.
      target = shards_[next_shard_++ % shards_.size()].get();
    }
    if (target == shard) {
      AdoptFd(shard, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(target->inbox_mu);
        target->inbox.push_back(fd);
      }
      const char byte = 'c';
      [[maybe_unused]] ssize_t n = write(target->wake_write_fd, &byte, 1);
    }
  }
}

void Server::AdoptFd(Shard* shard, int fd) {
  if (shard->draining) {
    // Raced a shutdown: the connection was admitted but its shard is
    // already going away.
    close(fd);
    total_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  auto conn = std::make_unique<Connection>(options_.max_line_bytes);
  conn->fd = fd;
  conn->handler = factory_();
  conn->last_activity = Clock::now();
  conn->want_read = true;
  conn->index = shard->connections.size();
  Status added = shard->loop->Add(fd, /*want_read=*/true,
                                  /*want_write=*/false, conn.get());
  if (!added.ok()) {
    close(fd);
    total_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  shard->connections.push_back(std::move(conn));
  shard->active.store(shard->connections.size(), std::memory_order_relaxed);
  if (m_connections_ != nullptr) {
    m_connections_->Set(static_cast<int64_t>(shard->connections.size()),
                        static_cast<size_t>(shard->index));
  }
}

bool Server::ReadAndHandle(Shard* shard, Connection* conn) {
  const size_t cell = static_cast<size_t>(shard->index);
  char buffer[64 * 1024];
  const ssize_t n = recv(conn->fd, buffer, sizeof(buffer), 0);
  if (n == 0) {
    // Orderly half-close. A pipelining client (printf ... | nc) shuts its
    // write side down and then reads. Two stdin-parity obligations before
    // we hang up: a final unterminated line is still a request (getline
    // answers it on the stdin transport, so the socket must too), and
    // responses still queued must be flushed, exactly like the quit path.
    if (!conn->closing) {
      std::string line;
      if (conn->in.TakeRemainder(&line) == LineBuffer::Next::kLine) {
        serve::ProtocolHandler::Outcome outcome =
            HandleRequest(shard, conn, line);
        if (!outcome.response.empty()) {
          conn->out += outcome.response;
          conn->out += '\n';
        }
      }
    }
    conn->closing = true;
    return FlushWrites(shard, conn);
  }
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  conn->last_activity = Clock::now();
  conn->in.Append(buffer, static_cast<size_t>(n));
  if (m_bytes_in_ != nullptr) m_bytes_in_->Add(n, cell);

  std::string line;
  while (!conn->closing && !shard->draining) {
    const LineBuffer::Next next = conn->in.Pop(&line);
    if (next == LineBuffer::Next::kNeedMore) break;
    if (next == LineBuffer::Next::kOverflow) {
      conn->out += ErrorLine(
          "line too long (max " + std::to_string(options_.max_line_bytes) +
          " bytes); closing connection");
      conn->closing = true;
      break;
    }
    serve::ProtocolHandler::Outcome outcome = HandleRequest(shard, conn, line);
    if (!outcome.response.empty()) {
      conn->out += outcome.response;
      conn->out += '\n';
    }
    if (outcome.quit) conn->closing = true;
  }
  return FlushWrites(shard, conn);
}

serve::ProtocolHandler::Outcome Server::HandleRequest(
    Shard* shard, Connection* conn, const std::string& line) {
  const size_t cell = static_cast<size_t>(shard->index);
  if (m_requests_ != nullptr) m_requests_->Add(1, cell);
  if (m_request_seconds_ == nullptr) return conn->handler->HandleLine(line);
  const Clock::time_point start = Clock::now();
  serve::ProtocolHandler::Outcome outcome = conn->handler->HandleLine(line);
  m_request_seconds_->Observe(
      std::chrono::duration<double>(Clock::now() - start).count(), cell);
  return outcome;
}

bool Server::FlushWrites(Shard* shard, Connection* conn) {
  while (conn->pending_out() > 0) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_offset,
                           conn->pending_out(), MSG_NOSIGNAL);
    if (n < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    conn->out_offset += static_cast<size_t>(n);
    if (m_bytes_out_ != nullptr) {
      m_bytes_out_->Add(n, static_cast<size_t>(shard->index));
    }
    // Outbound progress counts as activity: a client draining a large
    // response backlog (possibly read-paused by backpressure) is alive,
    // not idle — it must not be reaped mid-stream.
    conn->last_activity = Clock::now();
  }
  conn->out.clear();
  conn->out_offset = 0;
  return !conn->closing;  // fully flushed: a closing connection is done
}

void Server::UpdateInterest(Shard* shard, Connection* conn) {
  const bool paused = conn->pending_out() > options_.max_write_buffer_bytes;
  const bool want_read = !conn->closing && !shard->draining && !paused;
  const bool want_write = conn->pending_out() > 0;
  if (want_read == conn->want_read && want_write == conn->want_write) return;
  // A pause is the read-interest falling edge caused by backpressure (not
  // by closing or draining, which also clear want_read).
  if (m_backpressure_pauses_ != nullptr && conn->want_read && !want_read &&
      paused && !conn->closing && !shard->draining) {
    m_backpressure_pauses_->Add(1, static_cast<size_t>(shard->index));
  }
  conn->want_read = want_read;
  conn->want_write = want_write;
  // A Modify failure would leave the connection deaf; there is no
  // recovery short of dropping it, which the next event round does when
  // the peer gives up.
  [[maybe_unused]] Status status =
      shard->loop->Modify(conn->fd, want_read, want_write, conn);
}

void Server::DestroyConnection(Shard* shard, Connection* conn) {
  [[maybe_unused]] Status removed = shard->loop->Remove(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  // The handler closes this connection's sessions (freeing their admission
  // slots) before the Connection goes away.
  conn->handler.reset();
  const size_t at = conn->index;
  const size_t last = shard->connections.size() - 1;
  if (at != last) {
    std::swap(shard->connections[at], shard->connections[last]);
    shard->connections[at]->index = at;
  }
  shard->connections.pop_back();
  shard->active.store(shard->connections.size(), std::memory_order_relaxed);
  total_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (m_connections_ != nullptr) {
    m_connections_->Set(static_cast<int64_t>(shard->connections.size()),
                        static_cast<size_t>(shard->index));
  }
}

void Server::RunShard(Shard* shard) {
  shard->status = ShardLoop(shard);
  // A shard that died (loop registration failure, Wait error) must not
  // leave the others serving a half-alive server.
  if (!shard->status.ok()) RequestStop();
  // Whatever the exit path, this shard's connections are gone.
  for (size_t i = shard->connections.size(); i > 0; --i) {
    DestroyConnection(shard, shard->connections[i - 1].get());
  }
}

Status Server::ShardLoop(Shard* shard) {
  EventLoop* loop = shard->loop.get();
  Status status = loop->Add(stop_read_fd_, true, false, &shard->stop_tag);
  if (!status.ok()) return status;
  status = loop->Add(shard->wake_read_fd, true, false, &shard->wake_tag);
  if (!status.ok()) return status;
  bool listener_registered = false;
  if (shard->listen_fd >= 0) {
    status = loop->Add(shard->listen_fd, true, false, &shard->listener_tag);
    if (!status.ok()) return status;
    listener_registered = true;
  }

  std::vector<EventLoop::Event> events;
  while (true) {
    // Block indefinitely unless a timer (idle timeout / drain deadline)
    // needs periodic checks; the stop and wake pipes interrupt either way.
    const int timeout_ms =
        (options_.idle_timeout_seconds > 0.0 || shard->draining) ? 100 : -1;
    auto waited = loop->Wait(timeout_ms, &events);
    if (!waited.ok()) return waited.status();

    // Control events first. The drain transition only marks state — it
    // must not destroy connections that later entries of this same batch
    // still point at.
    bool accept_ready = false;
    bool wake_ready = false;
    for (const auto& event : events) {
      if (event.data == &shard->stop_tag) {
        if (!shard->draining) {
          shard->draining = true;
          shard->drain_deadline =
              Clock::now() + Micros(options_.drain_timeout_seconds);
          // One stop byte fans out to every shard because nobody drains
          // the pipe; each shard deregisters it after seeing it once.
          [[maybe_unused]] Status ignored = loop->Remove(stop_read_fd_);
          if (listener_registered) {
            ignored = loop->Remove(shard->listen_fd);
            listener_registered = false;
          }
          // Stop reading everywhere; pending responses keep flushing.
          for (auto& conn : shard->connections) {
            UpdateInterest(shard, conn.get());
          }
        }
      } else if (event.data == &shard->wake_tag) {
        wake_ready = true;
      } else if (event.data == &shard->listener_tag) {
        accept_ready = true;
      }
    }
    if (wake_ready) {
      char sink[64];
      while (read(shard->wake_read_fd, sink, sizeof(sink)) > 0) {
      }
      std::vector<int> adopted;
      {
        std::lock_guard<std::mutex> lock(shard->inbox_mu);
        adopted.swap(shard->inbox);
      }
      for (int fd : adopted) AdoptFd(shard, fd);
    }
    if (accept_ready && !shard->draining) AcceptNew(shard);

    for (const auto& event : events) {
      if (event.data == &shard->stop_tag || event.data == &shard->wake_tag ||
          event.data == &shard->listener_tag) {
        continue;
      }
      Connection* conn = static_cast<Connection*>(event.data);
      bool alive = true;
      if (event.error) {
        // Peer reset/vanished. Any queued responses are undeliverable.
        alive = false;
      } else {
        if (alive && event.writable) alive = FlushWrites(shard, conn);
        if (alive && event.readable && !shard->draining) {
          alive = ReadAndHandle(shard, conn);
        }
        if (alive && conn->closing && conn->pending_out() == 0) alive = false;
      }
      if (!alive) {
        DestroyConnection(shard, conn);
      } else {
        UpdateInterest(shard, conn);
      }
    }

    // Timers ride the 100 ms tick. Backwards: DestroyConnection
    // swap-removes from the vector.
    if (!shard->draining && options_.idle_timeout_seconds > 0.0) {
      const Clock::time_point now = Clock::now();
      for (size_t i = shard->connections.size(); i > 0; --i) {
        Connection* conn = shard->connections[i - 1].get();
        if (now - conn->last_activity >
            Micros(options_.idle_timeout_seconds)) {
          if (m_idle_reaps_ != nullptr) {
            m_idle_reaps_->Add(1, static_cast<size_t>(shard->index));
          }
          DestroyConnection(shard, conn);
        }
      }
    }

    if (shard->draining) {
      // Connections handed off but never adopted are closed unserved.
      std::vector<int> orphans;
      {
        std::lock_guard<std::mutex> lock(shard->inbox_mu);
        orphans.swap(shard->inbox);
      }
      for (int fd : orphans) {
        close(fd);
        total_connections_.fetch_sub(1, std::memory_order_relaxed);
      }
      const bool expired = Clock::now() >= shard->drain_deadline;
      for (size_t i = shard->connections.size(); i > 0; --i) {
        Connection* conn = shard->connections[i - 1].get();
        if (expired || conn->pending_out() == 0) {
          DestroyConnection(shard, conn);
        }
      }
      if (shard->connections.empty()) return Status::Ok();
    }
  }
}

Status Server::Serve() {
  if (shards_.empty() || shards_[0]->listen_fd < 0) {
    return Status::FailedPrecondition("server was not created via Create()");
  }
  for (size_t i = 1; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->thread = std::thread([this, shard] { RunShard(shard); });
  }
  RunShard(shards_[0].get());
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (shards_[i]->thread.joinable()) shards_[i]->thread.join();
  }
  for (const auto& shard : shards_) {
    if (!shard->status.ok()) return shard->status;
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace exsample
