#include "net/line_buffer.h"

namespace exsample {
namespace net {

void LineBuffer::Append(const char* data, size_t n) {
  if (overflowed_) return;
  // Reclaim the consumed prefix before growing, so a long-lived connection
  // streaming many small lines does not accrete an unbounded buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

LineBuffer::Next LineBuffer::TakeRemainder(std::string* line) {
  if (overflowed_) return Next::kOverflow;
  if (buffered() == 0) return Next::kNeedMore;
  if (buffered() > max_line_bytes_) {
    overflowed_ = true;
    return Next::kOverflow;
  }
  line->assign(buffer_, consumed_, buffer_.size() - consumed_);
  buffer_.clear();
  consumed_ = 0;
  return Next::kLine;
}

LineBuffer::Next LineBuffer::Pop(std::string* line) {
  if (overflowed_) return Next::kOverflow;
  const size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    if (buffered() > max_line_bytes_) {
      overflowed_ = true;
      return Next::kOverflow;
    }
    return Next::kNeedMore;
  }
  if (nl - consumed_ > max_line_bytes_) {
    overflowed_ = true;
    return Next::kOverflow;
  }
  line->assign(buffer_, consumed_, nl - consumed_);
  consumed_ = nl + 1;
  return Next::kLine;
}

}  // namespace net
}  // namespace exsample
