#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace exsample {
namespace net {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    in_ = std::move(other.in_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               double timeout_seconds,
                               size_t max_response_bytes) {
  Client client;
  client.in_ = LineBuffer(max_response_bytes);
  client.fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return Status::InvalidArgument(std::string("socket: ") + strerror(errno));
  }
  if (timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    setsockopt(client.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(client.fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (connect(client.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::InvalidArgument("connect " + host + ":" +
                                   std::to_string(port) + ": " +
                                   strerror(errno));
  }
  return client;
}

Status Client::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> Client::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string line;
  while (true) {
    switch (in_.Pop(&line)) {
      case LineBuffer::Next::kLine:
        return line;
      case LineBuffer::Next::kOverflow:
        return Status::InvalidArgument("response line too long");
      case LineBuffer::Next::kNeedMore:
        break;
    }
    char buffer[64 * 1024];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) return Status::NotFound("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::InvalidArgument("read timed out");
      }
      return Status::InvalidArgument(std::string("recv: ") + strerror(errno));
    }
    in_.Append(buffer, static_cast<size_t>(n));
  }
}

Result<Json> Client::Call(const Json& request) {
  Status sent = SendLine(request.Dump());
  if (!sent.ok()) return sent;
  auto line = ReadLine();
  if (!line.ok()) return line.status();
  return Json::Parse(line.value());
}

}  // namespace net
}  // namespace exsample
