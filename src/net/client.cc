#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>

namespace exsample {
namespace net {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    in_ = std::move(other.in_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               double timeout_seconds,
                               size_t max_response_bytes) {
  Client client;
  client.in_ = LineBuffer(max_response_bytes);
  client.fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return Status::InvalidArgument(std::string("socket: ") + strerror(errno));
  }
  if (timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    setsockopt(client.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(client.fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }

  const std::string where = host + ":" + std::to_string(port);
  if (timeout_seconds <= 0.0) {
    // No deadline requested: plain blocking connect.
    if (connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      return Status::InvalidArgument("connect " + where + ": " +
                                     strerror(errno));
    }
    return client;
  }

  // Bounded connect: SO_SNDTIMEO does not govern connect(2) on all
  // kernels, and an unreachable peer otherwise hangs for the SYN-retry
  // minutes. Go non-blocking for the handshake, then restore.
  const int flags = fcntl(client.fd_, F_GETFL, 0);
  if (flags < 0 ||
      fcntl(client.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::InvalidArgument(std::string("fcntl(O_NONBLOCK): ") +
                                   strerror(errno));
  }
  if (connect(client.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      return Status::InvalidArgument("connect " + where + ": " +
                                     strerror(errno));
    }
    pollfd waiter{client.fd_, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
    int ready;
    do {
      ready = poll(&waiter, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      return Status::InvalidArgument(std::string("poll: ") + strerror(errno));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("connect " + where + ": timed out after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (getsockopt(client.fd_, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      return Status::InvalidArgument("connect " + where + ": " +
                                     strerror(error != 0 ? error : errno));
    }
  }
  if (fcntl(client.fd_, F_SETFL, flags) < 0) {
    return Status::InvalidArgument(std::string("fcntl(restore): ") +
                                   strerror(errno));
  }
  return client;
}

Status Client::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status Client::EofStatus() const {
  // EOF on a line boundary is the peer finishing politely; EOF with a
  // partial line buffered means a response was torn off mid-flight.
  if (in_.buffered() > 0) {
    return Status::Unavailable("connection closed mid-line (" +
                               std::to_string(in_.buffered()) +
                               " bytes of a partial line discarded)");
  }
  return Status::NotFound("connection closed by peer");
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(std::string("send: ") + strerror(errno));
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out (connection I/O "
                                        "timeout)");
      }
      return Status::InvalidArgument(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> Client::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string line;
  while (true) {
    switch (in_.Pop(&line)) {
      case LineBuffer::Next::kLine:
        return line;
      case LineBuffer::Next::kOverflow:
        return Status::InvalidArgument("response line too long");
      case LineBuffer::Next::kNeedMore:
        break;
    }
    char buffer[64 * 1024];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) return EofStatus();
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("read timed out (connection I/O "
                                        "timeout)");
      }
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable(std::string("recv: ") + strerror(errno));
      }
      return Status::InvalidArgument(std::string("recv: ") + strerror(errno));
    }
    in_.Append(buffer, static_cast<size_t>(n));
  }
}

Result<std::string> Client::ReadLineWithTimeout(double timeout_seconds) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(
                         static_cast<int64_t>(timeout_seconds * 1e6));
  std::string line;
  while (true) {
    switch (in_.Pop(&line)) {
      case LineBuffer::Next::kLine:
        return line;
      case LineBuffer::Next::kOverflow:
        return Status::InvalidArgument("response line too long");
      case LineBuffer::Next::kNeedMore:
        break;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded("read timed out after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    pollfd waiter{fd_, POLLIN, 0};
    const int ready = poll(&waiter, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument(std::string("poll: ") + strerror(errno));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("read timed out after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    char buffer[64 * 1024];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) return EofStatus();
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable(std::string("recv: ") + strerror(errno));
      }
      return Status::InvalidArgument(std::string("recv: ") + strerror(errno));
    }
    in_.Append(buffer, static_cast<size_t>(n));
  }
}

namespace {

/// In a Call a response is owed, so "the peer closed politely" (NotFound
/// from ReadLine) still means the exchange failed in a retry-on-reconnect
/// way; timeouts pass through untouched.
Status OwedResponseStatus(const Status& status) {
  if (status.code() == Status::Code::kNotFound) {
    return Status::Unavailable("connection closed before the response: " +
                               status.message());
  }
  return status;
}

}  // namespace

Result<Json> Client::Call(const Json& request) {
  Status sent = SendLine(request.Dump());
  if (!sent.ok()) return OwedResponseStatus(sent);
  auto line = ReadLine();
  if (!line.ok()) return OwedResponseStatus(line.status());
  return Json::Parse(line.value());
}

Result<Json> Client::CallWithTimeout(const Json& request,
                                     double timeout_seconds) {
  Status sent = SendLine(request.Dump());
  if (!sent.ok()) return OwedResponseStatus(sent);
  auto line = ReadLineWithTimeout(timeout_seconds);
  if (!line.ok()) return OwedResponseStatus(line.status());
  return Json::Parse(line.value());
}

}  // namespace net
}  // namespace exsample
