// net::Client: a small blocking NDJSON client for the serve protocol.
//
// The counterpart of net::Server for tests and load generators: connect,
// send one JSON request per line, read one JSON response per line. All
// calls block (with an I/O timeout set at Connect); one Client is one
// connection and is not thread-safe — use one per client thread.

#ifndef EXSAMPLE_NET_CLIENT_H_
#define EXSAMPLE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "net/line_buffer.h"
#include "util/json.h"
#include "util/status.h"

namespace exsample {
namespace net {

class Client {
 public:
  /// Connects to host:port (IPv4 dotted-quad). `timeout_seconds` bounds
  /// the connect itself (non-blocking connect + poll, so a wedged or
  /// black-holed server fails the call instead of hanging the caller for
  /// the kernel's SYN-retry minutes) and every subsequent send/receive
  /// (0 = block forever). `max_response_bytes` bounds one response line —
  /// a poll of a session with tens of thousands of accumulated results
  /// can legitimately exceed a small cap, so the default is generous.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                double timeout_seconds = 10.0,
                                size_t max_response_bytes = 64 << 20);

  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Half-closes the write side (TCP FIN) while leaving reads open — the
  /// `printf requests | nc` pattern: send everything, then drain the
  /// responses until EOF.
  void ShutdownWrite();

  /// Writes `line` plus a trailing '\n'.
  Status SendLine(const std::string& line);

  /// Writes raw bytes with no framing added — lets tests and load
  /// generators exercise the server against fragmented or torn writes.
  Status SendRaw(const std::string& bytes);

  /// Blocks for the next '\n'-terminated line (returned without the '\n').
  /// Error taxonomy (callers' retry policies depend on the distinction):
  ///   - NotFound: orderly EOF on a line boundary — the server finished
  ///     talking and closed; nothing was lost.
  ///   - Unavailable: the connection died mid-line (EOF or reset with a
  ///     partial line buffered) — a response was torn off in flight.
  ///   - DeadlineExceeded: the connection's I/O timeout elapsed; the peer
  ///     may still be alive, just slow.
  Result<std::string> ReadLine();

  /// ReadLine with an explicit overall deadline: gives up with
  /// kDeadlineExceeded after `timeout_seconds` even if the connection's
  /// own I/O timeout is longer (or absent). Bytes already buffered still
  /// count; a deadline hit mid-line leaves the partial line buffered for
  /// a later read.
  Result<std::string> ReadLineWithTimeout(double timeout_seconds);

  /// SendLine(request.Dump()) + ReadLine() + parse: one protocol exchange.
  /// Because a request was sent, a response is owed: EOF before one full
  /// response line arrives is reported as Unavailable ("closed
  /// mid-response"), never NotFound, while a slow peer stays
  /// DeadlineExceeded — so retry policies can reconnect on the former and
  /// back off on the latter.
  Result<Json> Call(const Json& request);

  /// Call with an explicit per-exchange deadline (ReadLineWithTimeout
  /// underneath): kDeadlineExceeded after `timeout_seconds` without a
  /// complete response, same Unavailable mapping for a torn connection.
  Result<Json> CallWithTimeout(const Json& request, double timeout_seconds);

 private:
  /// NotFound for a clean EOF, Unavailable when a partial line was torn.
  Status EofStatus() const;

  int fd_ = -1;
  LineBuffer in_{64 << 20};
};

}  // namespace net
}  // namespace exsample

#endif  // EXSAMPLE_NET_CLIENT_H_
