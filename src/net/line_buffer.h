// LineBuffer: incremental newline framing for a byte stream.
//
// A TCP read returns whatever bytes are in flight — half a line, three
// lines and a half, one byte. The buffer accumulates reads and hands back
// complete '\n'-terminated lines one at a time, enforcing a maximum line
// length so a peer that never sends a newline cannot grow the buffer
// without bound. Trailing '\r' is NOT stripped here: CR handling is a
// protocol concern and lives in serve::ProtocolHandler, shared with the
// stdin transport.

#ifndef EXSAMPLE_NET_LINE_BUFFER_H_
#define EXSAMPLE_NET_LINE_BUFFER_H_

#include <cstddef>
#include <string>

namespace exsample {
namespace net {

class LineBuffer {
 public:
  /// `max_line_bytes` bounds one line (terminator excluded). Longer input
  /// trips kOverflow, after which the buffer is poisoned: framing is lost,
  /// so the connection must be torn down rather than resynchronized.
  explicit LineBuffer(size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes from the transport. No-op once overflowed.
  void Append(const char* data, size_t n);

  enum class Next {
    kLine,      ///< *line holds the next complete line (no '\n')
    kNeedMore,  ///< no complete line buffered yet
    kOverflow,  ///< line-length limit exceeded (sticky)
  };

  /// Pops the next complete line. Call until it stops returning kLine.
  Next Pop(std::string* line);

  /// Drains whatever is buffered as one final, unterminated line — what
  /// std::getline does at EOF. kLine with the remainder, kNeedMore when
  /// nothing is buffered, kOverflow past the limit. The buffer is left
  /// empty.
  Next TakeRemainder(std::string* line);

  /// Bytes buffered and not yet returned as lines.
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool overflowed() const { return overflowed_; }

 private:
  size_t max_line_bytes_;  // non-const so LineBuffer stays movable
  std::string buffer_;
  size_t consumed_ = 0;  // prefix already handed out as lines
  bool overflowed_ = false;
};

}  // namespace net
}  // namespace exsample

#endif  // EXSAMPLE_NET_LINE_BUFFER_H_
