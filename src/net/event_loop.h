// net::EventLoop: readiness notification behind one interface, so the
// server's shard loops are written once and run on the best mechanism the
// platform has.
//
// Two backends:
//   - kEpoll (Linux): O(ready) wait cost, no per-tick allocation, the
//     10k-connection regime. The default wherever epoll exists.
//   - kPoll (portable fallback): poll(2) over a *persistent* pollfd vector
//     that Add/Modify/Remove edit in place — the historical server rebuilt
//     the whole vector every iteration; the fallback keeps the vector
//     across ticks and only touches the entries that change.
//
// The loop maps fds to an opaque `void* data` supplied at Add; Wait hands
// back (data, readable, writable, error) triples. Level-triggered on both
// backends: an fd with buffered input or writable space is re-reported
// every Wait until the condition clears or interest is modified — the
// server relies on this for its pause-reads backpressure and for the
// never-drained stop pipe that fans one RequestStop out to every shard.
//
// Not thread-safe: one EventLoop belongs to one shard thread. (Waking a
// loop from outside is done by writing to an fd it watches, not by calling
// into it.)

#ifndef EXSAMPLE_NET_EVENT_LOOP_H_
#define EXSAMPLE_NET_EVENT_LOOP_H_

#include <memory>
#include <vector>

#include "util/status.h"

namespace exsample {
namespace net {

class EventLoop {
 public:
  enum class Backend {
    kAuto,   ///< epoll where available, poll otherwise
    kEpoll,  ///< fail on platforms without epoll
    kPoll,   ///< force the portable fallback (tests exercise it this way)
  };

  /// One ready fd, as reported by Wait.
  struct Event {
    void* data = nullptr;  ///< the pointer registered at Add
    bool readable = false;
    bool writable = false;
    /// Error/hangup (POLLERR/POLLHUP/POLLNVAL or EPOLLERR/EPOLLHUP). The
    /// fd is still registered; the caller decides whether to Remove it.
    bool error = false;
  };

  static Result<std::unique_ptr<EventLoop>> Create(
      Backend backend = Backend::kAuto);
  virtual ~EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest. `data` is returned verbatim
  /// in every Event for this fd. Registering an fd twice is an error.
  virtual Status Add(int fd, bool want_read, bool want_write, void* data) = 0;

  /// Changes interest for a registered fd (data is re-supplied because the
  /// epoll backend must rewrite it atomically with the event mask).
  virtual Status Modify(int fd, bool want_read, bool want_write,
                        void* data) = 0;

  /// Deregisters `fd`. Removing an unregistered fd is an error.
  virtual Status Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll-and-return) for
  /// readiness. Clears and fills `*events`; returns the number of ready
  /// fds (0 on timeout). EINTR is treated as a zero-event wakeup, not an
  /// error, so signal delivery never kills a shard.
  virtual Result<int> Wait(int timeout_ms, std::vector<Event>* events) = 0;

  /// Registered fd count (tests and the drain loop use it).
  virtual size_t size() const = 0;

  /// "epoll" or "poll" — surfaced in logs/bench output.
  virtual const char* backend_name() const = 0;

  /// Whether kEpoll is available on this platform.
  static bool EpollSupported();

 protected:
  EventLoop() = default;
};

}  // namespace net
}  // namespace exsample

#endif  // EXSAMPLE_NET_EVENT_LOOP_H_
