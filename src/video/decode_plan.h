// DecodePlan: a GOP-aware decode schedule for one batch of picked frames.
//
// The engine's pick batches address frames in bandit order, which scatters
// reads across GOPs and pays a container seek + keyframe decode almost every
// time. A DecodePlan reorders the batch before it reaches the decoder:
//
//   * picks are grouped by the GOP they live in, so same-GOP picks coalesce
//     into one seek + one keyframe + a single forward predicted chain (the
//     corrected SimulatedDecoder accounting makes this fall out naturally);
//   * groups are ordered I-frame-first — groups whose deepest pick sits on
//     (or nearest) the keyframe come first, so the cheapest frames reach the
//     detector earliest (EKO's observation: sample cheap I-frames before
//     paying full GOP decode), which matters when a downstream result limit
//     can end the batch early;
//   * within a group, frames are decoded in ascending order (the only order
//     the predicted chain supports without re-decoding).
//
// Building a plan replays the schedule against the caller's SimulatedDecoder
// — the same stateful decoder the run accounts with — so every entry carries
// the measured per-frame cost the pipeline actually pays, and the decoder is
// left positioned exactly where the plan ends (costs stay deterministic
// across consecutive batches).

#ifndef EXSAMPLE_VIDEO_DECODE_PLAN_H_
#define EXSAMPLE_VIDEO_DECODE_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "video/decoder.h"
#include "video/repository.h"
#include "video/types.h"

namespace exsample {
namespace video {

/// One scheduled decode. `pick_index` maps the entry back to the position of
/// the frame in the batch the plan was built from.
struct DecodePlanEntry {
  FrameId frame = -1;
  size_t pick_index = 0;
  /// Measured cost of this decode in plan order, in (modeled) seconds.
  double seconds = 0.0;
  /// Whether this decode paid a container seek.
  bool seek = false;
};

/// The schedule plus its aggregate accounting.
struct DecodePlan {
  std::vector<DecodePlanEntry> entries;
  double total_seconds = 0.0;
  int64_t seeks = 0;
  /// Distinct (video, GOP) groups in the batch.
  int64_t gop_groups = 0;
  /// Frames that shared a group with an earlier frame (each one is a seek
  /// the plan avoided relative to worst-case random access).
  int64_t coalesced_frames = 0;
};

/// Builds the schedule for `frames` and replays it against `decoder`,
/// recording per-entry measured costs. With `reorder` false the plan keeps
/// the original pick order (still measured through the decoder — the
/// serial-equivalent baseline the pipeline bench compares against).
DecodePlan BuildDecodePlan(const VideoRepository& repo,
                           const std::vector<FrameId>& frames,
                           SimulatedDecoder* decoder, bool reorder = true);

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_DECODE_PLAN_H_
