#include "video/frame_range.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace video {

FrameRangeSet::FrameRangeSet(std::vector<FrameRange> ranges)
    : ranges_(std::move(ranges)) {
  prefix_.reserve(ranges_.size());
  FrameId prev_hi = INT64_MIN;
  for (const auto& r : ranges_) {
    assert(r.hi > r.lo && "ranges must be non-empty");
    assert(r.lo >= prev_hi && "ranges must be sorted and disjoint");
    prev_hi = r.hi;
    prefix_.push_back(total_);
    total_ += r.size();
  }
  (void)prev_hi;
}

FrameRangeSet FrameRangeSet::Single(FrameId lo, FrameId hi) {
  return FrameRangeSet({FrameRange{lo, hi}});
}

FrameId FrameRangeSet::At(int64_t i) const {
  assert(i >= 0 && i < total_);
  // Last prefix <= i.
  auto it = std::upper_bound(prefix_.begin(), prefix_.end(), i);
  size_t r = static_cast<size_t>(it - prefix_.begin()) - 1;
  return ranges_[r].lo + (i - prefix_[r]);
}

int64_t FrameRangeSet::RankOf(FrameId f) const {
  // Last range whose lo <= f.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), f,
      [](FrameId v, const FrameRange& r) { return v < r.lo; });
  if (it == ranges_.begin()) return -1;
  size_t r = static_cast<size_t>(it - ranges_.begin()) - 1;
  if (!ranges_[r].Contains(f)) return -1;
  return prefix_[r] + (f - ranges_[r].lo);
}

}  // namespace video
}  // namespace exsample
