// FrameRangeSet: an ordered set of disjoint [lo, hi) global-frame ranges with
// O(log k) random access by rank. Chunks are FrameRangeSets; samplers draw
// the i-th frame of a chunk without materializing the frame list.

#ifndef EXSAMPLE_VIDEO_FRAME_RANGE_H_
#define EXSAMPLE_VIDEO_FRAME_RANGE_H_

#include <cstdint>
#include <vector>

#include "video/types.h"

namespace exsample {
namespace video {

/// Half-open frame interval [lo, hi).
struct FrameRange {
  FrameId lo = 0;
  FrameId hi = 0;

  int64_t size() const { return hi - lo; }
  bool Contains(FrameId f) const { return f >= lo && f < hi; }
  bool operator==(const FrameRange&) const = default;
};

/// Immutable ordered collection of disjoint frame ranges.
class FrameRangeSet {
 public:
  FrameRangeSet() = default;

  /// Builds from ranges; they must be non-empty, sorted and disjoint
  /// (assert-checked).
  explicit FrameRangeSet(std::vector<FrameRange> ranges);

  /// Convenience: a single contiguous range.
  static FrameRangeSet Single(FrameId lo, FrameId hi);

  /// Total number of frames.
  int64_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  const std::vector<FrameRange>& ranges() const { return ranges_; }

  /// Returns the frame of rank i (0-based, in increasing frame order).
  FrameId At(int64_t i) const;

  /// Returns the rank of frame f, or -1 if not contained.
  int64_t RankOf(FrameId f) const;

  bool Contains(FrameId f) const { return RankOf(f) >= 0; }

 private:
  std::vector<FrameRange> ranges_;
  std::vector<int64_t> prefix_;  // prefix_[i] = frames before ranges_[i]
  int64_t total_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_FRAME_RANGE_H_
