// Within-chunk frame sampling strategies.
//
// The paper's Algorithm 1 line 7 calls chunks[j].sample(); §III-F refines
// plain uniform sampling into "random+", which deliberately avoids sampling
// temporally near previous samples: one random frame from each large block,
// then one from each not-yet-visited half block, and so on until the chunk
// is exhausted. Both strategies sample every frame exactly once before
// running out (sampling without replacement).

#ifndef EXSAMPLE_VIDEO_FRAME_SAMPLER_H_
#define EXSAMPLE_VIDEO_FRAME_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "video/frame_range.h"

namespace exsample {
namespace video {

/// Draws frames from a fixed population without replacement.
class FrameSampler {
 public:
  virtual ~FrameSampler() = default;

  /// Frames remaining to be drawn.
  virtual int64_t remaining() const = 0;

  bool exhausted() const { return remaining() == 0; }

  /// Draws the next frame. Precondition: !exhausted().
  virtual FrameId Next(Rng* rng) = 0;
};

/// Uniform sampling without replacement via sparse Fisher-Yates: O(1) memory
/// per drawn sample, no materialized frame list, exact uniformity.
class UniformFrameSampler : public FrameSampler {
 public:
  explicit UniformFrameSampler(FrameRangeSet frames);

  int64_t remaining() const override { return remaining_; }
  FrameId Next(Rng* rng) override;

 private:
  FrameRangeSet frames_;
  std::unordered_map<int64_t, int64_t> displaced_;
  int64_t remaining_;
};

/// "random+" sampling (§III-F): midpoint-halving stratification, exactly the
/// paper's scheme — "sampling one random frame out of every hour, then
/// sampling one frame out of every not-yet sampled half hour at random, and
/// so on, until eventually sampling the full dataset."
///
/// The index space starts as `initial_segments` blocks; each round draws one
/// random frame from every sample-free block (in random order), then halves
/// all blocks at their midpoints — the half containing the earlier sample
/// keeps it, the other half becomes sample-free and is drawn from in the
/// next round. Early samples are therefore spread evenly across the whole
/// chunk, and coverage remains exactly without-replacement.
class RandomPlusFrameSampler : public FrameSampler {
 public:
  /// `initial_segments` controls the first round's stratification (e.g. one
  /// segment per hour of video); 1 treats the whole chunk as a single
  /// segment.
  explicit RandomPlusFrameSampler(FrameRangeSet frames,
                                  int64_t initial_segments = 1);

  int64_t remaining() const override { return remaining_; }
  FrameId Next(Rng* rng) override;

 private:
  struct Block {
    int64_t lo;      // index-space [lo, hi)
    int64_t hi;
    int64_t sample;  // index of the sample inside, or -1 if sample-free
  };

  /// Halves sampled blocks until at least one sample-free block exists.
  void Advance(Rng* rng);

  FrameRangeSet frames_;
  std::deque<Block> fresh_;      // sample-free blocks, this round, shuffled
  std::vector<Block> sampled_;   // blocks holding one sample, size > 1
  int64_t remaining_;
};

/// Uniform sampling without replacement that additionally supports claiming
/// a *specific* frame out of the remaining population. GOP-run draws need
/// this: after an anchor frame is drawn, the consecutive frames of its GOP
/// are claimed so a single seek amortizes across the run while the
/// without-replacement guarantee holds. A Fenwick tree over availability
/// bits gives O(log n) draws and claims with exact integer uniformity.
class ClaimableFrameSampler : public FrameSampler {
 public:
  explicit ClaimableFrameSampler(FrameRangeSet frames);

  int64_t remaining() const override { return remaining_; }
  FrameId Next(Rng* rng) override;

  /// Removes `frame` from the remaining population. Returns false (and
  /// changes nothing) when the frame is outside the population or was
  /// already drawn/claimed.
  bool Claim(FrameId frame);

 private:
  void FenwickAdd(int64_t i, int64_t delta);
  /// Rank of the k-th (0-based) still-available frame.
  int64_t SelectKth(int64_t k) const;
  void Remove(int64_t rank);

  FrameRangeSet frames_;
  std::vector<int64_t> tree_;   // Fenwick over availability bits
  std::vector<char> available_;  // per-rank availability
  int64_t remaining_;
};

/// Weighted sampling without replacement: each frame is drawn with
/// probability proportional to its weight among the not-yet-drawn frames
/// (a Fenwick tree gives O(log n) draws). Supports the paper's §VII
/// extension — score-guided sampling within a chunk — which leaves the
/// chunk-level estimator theory intact ("the equations in section III
/// remain valid even if sampling within a chunk is non-uniform").
class WeightedFrameSampler : public FrameSampler {
 public:
  /// `weights[i]` weighs the frame of rank i; weights must be non-negative
  /// and are floored at a small epsilon so every frame is eventually drawn.
  WeightedFrameSampler(FrameRangeSet frames, std::vector<double> weights);

  int64_t remaining() const override { return remaining_; }
  FrameId Next(Rng* rng) override;

 private:
  void FenwickAdd(int64_t i, double delta);
  double FenwickPrefix(int64_t i) const;  // sum of [0, i]
  /// Smallest index with prefix sum > target.
  int64_t FenwickSearch(double target) const;

  FrameRangeSet frames_;
  std::vector<double> weight_;  // current weight per rank (0 once drawn)
  std::vector<double> tree_;    // Fenwick tree over weight_
  double total_weight_ = 0.0;
  int64_t remaining_;
};

/// Factory selector used by configuration structs.
enum class WithinChunkStrategy {
  kUniform,
  kRandomPlus,
};

/// Creates the configured sampler over `frames`.
std::unique_ptr<FrameSampler> MakeFrameSampler(WithinChunkStrategy strategy,
                                               FrameRangeSet frames);

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_FRAME_SAMPLER_H_
