#include "video/frame_sampler.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace video {

UniformFrameSampler::UniformFrameSampler(FrameRangeSet frames)
    : frames_(std::move(frames)), remaining_(frames_.size()) {}

FrameId UniformFrameSampler::Next(Rng* rng) {
  assert(remaining_ > 0);
  // Sparse Fisher-Yates over index space [0, remaining_): pick r, read the
  // value at r (following displacement), then move the value at the last
  // position into r.
  int64_t r = static_cast<int64_t>(
      rng->NextBounded(static_cast<uint64_t>(remaining_)));
  auto read = [this](int64_t i) {
    auto it = displaced_.find(i);
    return it != displaced_.end() ? it->second : i;
  };
  int64_t value = read(r);
  int64_t last = remaining_ - 1;
  displaced_[r] = read(last);
  displaced_.erase(last);
  --remaining_;
  return frames_.At(value);
}

RandomPlusFrameSampler::RandomPlusFrameSampler(FrameRangeSet frames,
                                               int64_t initial_segments)
    : frames_(std::move(frames)), remaining_(frames_.size()) {
  assert(initial_segments >= 1);
  const int64_t n = frames_.size();
  if (n == 0) return;
  initial_segments = std::min(initial_segments, n);
  for (int64_t s = 0; s < initial_segments; ++s) {
    int64_t lo = n * s / initial_segments;
    int64_t hi = n * (s + 1) / initial_segments;
    if (hi > lo) fresh_.push_back(Block{lo, hi, -1});
  }
}

void RandomPlusFrameSampler::Advance(Rng* rng) {
  // Halve every sampled block at its midpoint: the half holding the sample
  // stays in sampled_ (if still splittable), the other half joins the new
  // round's sample-free set.
  std::vector<Block> next_fresh;
  while (next_fresh.empty()) {
    assert(!sampled_.empty());
    std::vector<Block> next_sampled;
    for (const Block& b : sampled_) {
      const int64_t mid = b.lo + (b.hi - b.lo) / 2;
      Block left{b.lo, mid, -1};
      Block right{mid, b.hi, -1};
      (b.sample < mid ? left : right).sample = b.sample;
      for (Block* child : {&left, &right}) {
        if (child->hi - child->lo <= 0) continue;
        if (child->sample < 0) {
          next_fresh.push_back(*child);
        } else if (child->hi - child->lo > 1) {
          next_sampled.push_back(*child);
        }
        // size-1 blocks holding their sample are fully consumed.
      }
    }
    sampled_ = std::move(next_sampled);
  }
  // Random visiting order within the round.
  for (size_t i = next_fresh.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->NextBounded(i));
    std::swap(next_fresh[i - 1], next_fresh[j]);
  }
  fresh_.assign(next_fresh.begin(), next_fresh.end());
}

FrameId RandomPlusFrameSampler::Next(Rng* rng) {
  assert(remaining_ > 0);
  if (fresh_.empty()) Advance(rng);
  Block b = fresh_.front();
  fresh_.pop_front();
  b.sample = b.lo + static_cast<int64_t>(rng->NextBounded(
                        static_cast<uint64_t>(b.hi - b.lo)));
  if (b.hi - b.lo > 1) sampled_.push_back(b);
  --remaining_;
  return frames_.At(b.sample);
}

ClaimableFrameSampler::ClaimableFrameSampler(FrameRangeSet frames)
    : frames_(std::move(frames)),
      available_(static_cast<size_t>(frames_.size()), 1),
      remaining_(frames_.size()) {
  // Fenwick tree initialized to all-ones: tree_[k] covers k & -k elements.
  tree_.assign(static_cast<size_t>(frames_.size()) + 1, 0);
  for (int64_t k = 1; k < static_cast<int64_t>(tree_.size()); ++k) {
    tree_[static_cast<size_t>(k)] = k & -k;
  }
}

void ClaimableFrameSampler::FenwickAdd(int64_t i, int64_t delta) {
  for (int64_t k = i + 1; k < static_cast<int64_t>(tree_.size());
       k += k & -k) {
    tree_[static_cast<size_t>(k)] += delta;
  }
}

int64_t ClaimableFrameSampler::SelectKth(int64_t k) const {
  // Descend the implicit tree: smallest rank whose availability prefix sum
  // exceeds k.
  int64_t pos = 0;
  int64_t mask = 1;
  while (mask * 2 < static_cast<int64_t>(tree_.size())) mask *= 2;
  for (; mask > 0; mask /= 2) {
    const int64_t next = pos + mask;
    if (next < static_cast<int64_t>(tree_.size()) &&
        tree_[static_cast<size_t>(next)] <= k) {
      k -= tree_[static_cast<size_t>(next)];
      pos = next;
    }
  }
  return pos;
}

void ClaimableFrameSampler::Remove(int64_t rank) {
  assert(available_[static_cast<size_t>(rank)]);
  available_[static_cast<size_t>(rank)] = 0;
  FenwickAdd(rank, -1);
  --remaining_;
}

FrameId ClaimableFrameSampler::Next(Rng* rng) {
  assert(remaining_ > 0);
  const int64_t k = static_cast<int64_t>(
      rng->NextBounded(static_cast<uint64_t>(remaining_)));
  const int64_t rank = SelectKth(k);
  Remove(rank);
  return frames_.At(rank);
}

bool ClaimableFrameSampler::Claim(FrameId frame) {
  const int64_t rank = frames_.RankOf(frame);
  if (rank < 0 || !available_[static_cast<size_t>(rank)]) return false;
  Remove(rank);
  return true;
}

WeightedFrameSampler::WeightedFrameSampler(FrameRangeSet frames,
                                           std::vector<double> weights)
    : frames_(std::move(frames)),
      weight_(std::move(weights)),
      remaining_(frames_.size()) {
  assert(static_cast<int64_t>(weight_.size()) == frames_.size());
  // Floor weights so zero-scored frames are still eventually drawn.
  double max_w = 0.0;
  for (double w : weight_) {
    assert(w >= 0.0);
    max_w = std::max(max_w, w);
  }
  const double floor = max_w > 0.0 ? max_w * 1e-9 : 1.0;
  for (double& w : weight_) w = std::max(w, floor);
  tree_.assign(weight_.size() + 1, 0.0);
  for (size_t i = 0; i < weight_.size(); ++i) {
    FenwickAdd(static_cast<int64_t>(i), weight_[i]);
  }
}

void WeightedFrameSampler::FenwickAdd(int64_t i, double delta) {
  total_weight_ += delta;
  for (int64_t k = i + 1; k < static_cast<int64_t>(tree_.size());
       k += k & -k) {
    tree_[static_cast<size_t>(k)] += delta;
  }
}

double WeightedFrameSampler::FenwickPrefix(int64_t i) const {
  double sum = 0.0;
  for (int64_t k = i + 1; k > 0; k -= k & -k) {
    sum += tree_[static_cast<size_t>(k)];
  }
  return sum;
}

int64_t WeightedFrameSampler::FenwickSearch(double target) const {
  // Descend the implicit tree to find the smallest index whose prefix sum
  // exceeds target.
  int64_t pos = 0;
  int64_t mask = 1;
  while (mask * 2 < static_cast<int64_t>(tree_.size())) mask *= 2;
  for (; mask > 0; mask /= 2) {
    int64_t next = pos + mask;
    if (next < static_cast<int64_t>(tree_.size()) &&
        tree_[static_cast<size_t>(next)] <= target) {
      target -= tree_[static_cast<size_t>(next)];
      pos = next;
    }
  }
  return pos;  // 0-based rank
}

FrameId WeightedFrameSampler::Next(Rng* rng) {
  assert(remaining_ > 0);
  // Guard against floating-point drift pushing the draw past the end.
  int64_t rank;
  do {
    const double target = rng->NextDouble() * total_weight_;
    rank = FenwickSearch(target);
  } while (weight_[static_cast<size_t>(rank)] == 0.0);
  FenwickAdd(rank, -weight_[static_cast<size_t>(rank)]);
  weight_[static_cast<size_t>(rank)] = 0.0;
  --remaining_;
  return frames_.At(rank);
}

std::unique_ptr<FrameSampler> MakeFrameSampler(WithinChunkStrategy strategy,
                                               FrameRangeSet frames) {
  switch (strategy) {
    case WithinChunkStrategy::kUniform:
      return std::make_unique<UniformFrameSampler>(std::move(frames));
    case WithinChunkStrategy::kRandomPlus:
      return std::make_unique<RandomPlusFrameSampler>(std::move(frames));
  }
  return nullptr;
}

}  // namespace video
}  // namespace exsample
