// Basic identifiers for the simulated video repository.

#ifndef EXSAMPLE_VIDEO_TYPES_H_
#define EXSAMPLE_VIDEO_TYPES_H_

#include <cstdint>
#include <string>

namespace exsample {
namespace video {

/// Global frame index across the whole repository (dense, 0-based).
using FrameId = int64_t;

/// Index of a video file within its repository.
using VideoIndex = int32_t;

/// Chunk identifier (dense, 0-based, assigned by the chunking policy).
using ChunkId = int32_t;

/// Static description of one (simulated) video file. Real deployments would
/// carry a path + container metadata; the sampler only ever consumes frame
/// counts, frame rate and GOP structure, which is what we keep.
struct VideoMeta {
  std::string name;
  int64_t num_frames = 0;
  double fps = 30.0;
  /// Keyframe (I-frame) period. The paper re-encodes video with a keyframe
  /// every 20 frames to make random access cheap; that is our default too.
  int32_t keyframe_interval = 20;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_TYPES_H_
