// Chunking policies (§III of the paper): how the repository's frames are
// partitioned into the temporal chunks ExSample scores and samples.
//
// The paper uses 20-minute chunks for long videos (dashcam, amsterdam,
// archie, night-street) and one chunk per clip for datasets of short clips
// (BDD). Both policies are provided; chunks never span video files, mirroring
// the paper's setup.

#ifndef EXSAMPLE_VIDEO_CHUNKING_H_
#define EXSAMPLE_VIDEO_CHUNKING_H_

#include <vector>

#include "video/frame_range.h"
#include "video/repository.h"
#include "video/types.h"

namespace exsample {
namespace video {

/// One temporal chunk: a set of frames scored together by the sampler.
struct Chunk {
  ChunkId id = 0;
  FrameRangeSet frames;
};

/// Checks that a chunking of `num_chunks` chunks is addressable: ChunkId is
/// 32-bit, so a repository chunked finer than ~2.1 billion chunks would
/// silently truncate ids. Returns OK or an InvalidArgument describing the
/// overflow. Every chunk constructor below applies this check and fails
/// cleanly instead of truncating.
Status CheckChunkCount(int64_t num_chunks);

/// Splits every video into consecutive chunks of at most
/// `frames_per_chunk` frames (the final chunk of each video may be shorter,
/// but never shorter than half the target unless the video itself is —
/// short tails merge into the preceding chunk, matching how 20-minute
/// chunking is done in practice). Fails (without materializing anything)
/// when the repository would produce more chunks than ChunkId can address.
Result<std::vector<Chunk>> MakeFixedLengthChunks(const VideoRepository& repo,
                                                 int64_t frames_per_chunk);

/// One chunk per video file (the BDD configuration: 1000 sub-minute clips
/// -> 1000 chunks). Fails when the repository has more videos than ChunkId
/// can address.
Result<std::vector<Chunk>> MakePerFileChunks(const VideoRepository& repo);

/// Partitions a bare frame count [0, n) into M equal chunks without a
/// repository (used by pure simulations, §IV). Fails unless M is in [1, n].
Result<std::vector<Chunk>> MakeUniformChunks(int64_t num_frames,
                                             int64_t num_chunks);

/// Validates a chunking: ids dense, frames disjoint, union covers exactly
/// [0, total_frames). Returns OK or a description of the violation.
Status ValidateChunking(const std::vector<Chunk>& chunks,
                        int64_t total_frames);

/// O(log k) frame -> chunk lookup built once over a chunking.
class ChunkLookup {
 public:
  explicit ChunkLookup(const std::vector<Chunk>& chunks);

  /// Chunk containing `frame`, or -1 when no chunk covers it.
  ChunkId Find(FrameId frame) const;

 private:
  struct Entry {
    FrameId lo;
    FrameId hi;
    ChunkId chunk;
  };
  std::vector<Entry> entries_;  // sorted by lo
};

/// Automatic chunk-length selection (the §VII "automating chunking" future
/// work): starts from the paper's 20-minute default and clamps so the chunk
/// count lands in [min_chunks, max_chunks] — few enough that each chunk
/// accumulates meaningful (N1, n) evidence within a typical query budget,
/// many enough that skew at the scale present in real repositories remains
/// exploitable (§IV-C shows good behaviour across ~16..512 chunks).
int64_t SuggestChunkFrames(int64_t total_frames, double fps,
                           int64_t min_chunks = 16, int64_t max_chunks = 512);

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_CHUNKING_H_
