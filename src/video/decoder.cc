#include "video/decoder.h"

#include <cassert>

namespace exsample {
namespace video {

SimulatedDecoder::SimulatedDecoder(const VideoRepository* repo,
                                   DecodeCostModel model)
    : repo_(repo), model_(model) {
  assert(repo_ != nullptr);
}

double SimulatedDecoder::CostFor(FrameId frame, bool* is_seek) const {
  assert(frame >= 0 && frame < repo_->total_frames());
  const FrameLocation loc = repo_->Locate(frame);
  const int32_t gop = repo_->video(loc.video).keyframe_interval;
  const int64_t offset_in_gop = loc.local_frame % gop;

  // Forward read inside the GOP the decoder is parked in: the container is
  // already positioned and the reference chain up to the current position is
  // already decoded, so the target costs only the remaining predicted-frame
  // chain — no seek, no keyframe re-decode (unless the position is parked
  // exactly on the GOP start, where the keyframe itself is still unpaid).
  // Charging the full seek + keyframe here double-counted work the decoder
  // had already done, which also hid the value of coalescing same-GOP picks.
  if (next_sequential_ >= 0 && frame >= next_sequential_) {
    const FrameLocation pos = repo_->Locate(next_sequential_);
    if (pos.video == loc.video &&
        pos.local_frame / gop == loc.local_frame / gop) {
      if (is_seek != nullptr) *is_seek = false;
      const int64_t steps = loc.local_frame - pos.local_frame;
      if (pos.local_frame % gop == 0) {
        return model_.keyframe_decode_seconds +
               static_cast<double>(steps) * model_.predicted_decode_seconds;
      }
      return static_cast<double>(steps + 1) *
             model_.predicted_decode_seconds;
    }
  }
  // Random access: seek to the preceding keyframe, decode it, then decode
  // forward to the target.
  if (is_seek != nullptr) *is_seek = true;
  return model_.seek_seconds + model_.keyframe_decode_seconds +
         static_cast<double>(offset_in_gop) * model_.predicted_decode_seconds;
}

double SimulatedDecoder::PeekCost(FrameId frame) const {
  if (cache_ != nullptr && cache_->Contains(frame)) return 0.0;
  return CostFor(frame, nullptr);
}

double SimulatedDecoder::Read(FrameId frame) {
  if (cache_ != nullptr && cache_->Contains(frame)) {
    // Already resident from an earlier constituent's read: free, and the
    // decoder position is deliberately untouched so the miss-path costs of
    // this stream stay exactly what they'd be without the cache.
    ++stats_.cached_reads;
    return 0.0;
  }
  bool is_seek = false;
  const double cost = CostFor(frame, &is_seek);
  if (is_seek) ++stats_.seeks;
  ++stats_.frames_decoded;
  stats_.total_seconds += cost;
  next_sequential_ = frame + 1;
  if (next_sequential_ >= repo_->total_frames()) next_sequential_ = -1;
  // A sequential successor must live in the same video; crossing into the
  // next file is a seek.
  if (next_sequential_ >= 0) {
    const FrameLocation cur = repo_->Locate(frame);
    if (cur.local_frame + 1 >= repo_->video(cur.video).num_frames) {
      next_sequential_ = -1;
    }
  }
  if (cache_ != nullptr) cache_->Insert(frame);
  return cost;
}

}  // namespace video
}  // namespace exsample
