#include "video/decoder.h"

#include <cassert>

namespace exsample {
namespace video {

SimulatedDecoder::SimulatedDecoder(const VideoRepository* repo,
                                   DecodeCostModel model)
    : repo_(repo), model_(model) {
  assert(repo_ != nullptr);
}

double SimulatedDecoder::PeekCost(FrameId frame) const {
  assert(frame >= 0 && frame < repo_->total_frames());
  const FrameLocation loc = repo_->Locate(frame);
  const int32_t gop = repo_->video(loc.video).keyframe_interval;
  const int64_t offset_in_gop = loc.local_frame % gop;

  if (frame == next_sequential_) {
    // Sequential read: keyframe decode at GOP starts, predicted otherwise.
    return offset_in_gop == 0 ? model_.keyframe_decode_seconds
                              : model_.predicted_decode_seconds;
  }
  // Random access: seek to the preceding keyframe, decode it, then decode
  // forward to the target.
  return model_.seek_seconds + model_.keyframe_decode_seconds +
         static_cast<double>(offset_in_gop) * model_.predicted_decode_seconds;
}

double SimulatedDecoder::Read(FrameId frame) {
  const double cost = PeekCost(frame);
  if (frame != next_sequential_) ++stats_.seeks;
  ++stats_.frames_decoded;
  stats_.total_seconds += cost;
  next_sequential_ = frame + 1;
  if (next_sequential_ >= repo_->total_frames()) next_sequential_ = -1;
  // A sequential successor must live in the same video; crossing into the
  // next file is a seek.
  if (next_sequential_ >= 0) {
    const FrameLocation cur = repo_->Locate(frame);
    if (cur.local_frame + 1 >= repo_->video(cur.video).num_frames) {
      next_sequential_ = -1;
    }
  }
  return cost;
}

}  // namespace video
}  // namespace exsample
