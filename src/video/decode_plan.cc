#include "video/decode_plan.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace exsample {
namespace video {

namespace {

/// A pick annotated with its GOP coordinates.
struct Annotated {
  FrameId frame = -1;
  size_t pick_index = 0;
  VideoIndex video = 0;
  int64_t gop = 0;     // GOP index within the video
  int64_t offset = 0;  // offset within the GOP
};

}  // namespace

DecodePlan BuildDecodePlan(const VideoRepository& repo,
                           const std::vector<FrameId>& frames,
                           SimulatedDecoder* decoder, bool reorder) {
  assert(decoder != nullptr);
  DecodePlan plan;
  plan.entries.reserve(frames.size());

  std::vector<Annotated> picks(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    const FrameLocation loc = repo.Locate(frames[i]);
    const int32_t gop = repo.video(loc.video).keyframe_interval;
    picks[i] = Annotated{frames[i], i, loc.video, loc.local_frame / gop,
                         loc.local_frame % gop};
  }

  std::vector<size_t> order(picks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (reorder) {
    // Cluster same-GOP picks and decode each cluster front to back; the
    // pick index tiebreak keeps the order a pure function of the batch.
    std::sort(order.begin(), order.end(), [&picks](size_t a, size_t b) {
      const Annotated& x = picks[a];
      const Annotated& y = picks[b];
      if (x.video != y.video) return x.video < y.video;
      if (x.gop != y.gop) return x.gop < y.gop;
      if (x.frame != y.frame) return x.frame < y.frame;
      return x.pick_index < y.pick_index;
    });
    // Slice the sorted picks into (video, GOP) groups.
    struct Group {
      size_t begin = 0, end = 0;  // range in `order`
      int64_t max_offset = 0;     // deepest predicted chain the group needs
      FrameId first_frame = 0;
    };
    std::vector<Group> groups;
    for (size_t i = 0; i < order.size();) {
      const Annotated& head = picks[order[i]];
      Group g;
      g.begin = i;
      g.first_frame = head.frame;
      while (i < order.size() && picks[order[i]].video == head.video &&
             picks[order[i]].gop == head.gop) {
        g.max_offset = picks[order[i]].offset;  // ascending within the group
        ++i;
      }
      g.end = i;
      groups.push_back(g);
    }
    // I-frame-first: groups whose deepest pick sits nearest the keyframe
    // decode first (a keyframe-only group costs one seek + one keyframe);
    // first_frame breaks ties deterministically.
    std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
      if (a.max_offset != b.max_offset) return a.max_offset < b.max_offset;
      return a.first_frame < b.first_frame;
    });
    std::vector<size_t> grouped;
    grouped.reserve(order.size());
    for (const Group& g : groups) {
      for (size_t i = g.begin; i < g.end; ++i) grouped.push_back(order[i]);
    }
    order = std::move(grouped);
  }

  // Replay the schedule against the run's decoder: entry costs are exactly
  // what the decoder charges in this order, and the decoder ends positioned
  // for the next batch.
  for (size_t i = 0; i < order.size(); ++i) {
    const Annotated& pick = picks[order[i]];
    DecodePlanEntry entry;
    entry.frame = pick.frame;
    entry.pick_index = pick.pick_index;
    const int64_t seeks_before = decoder->stats().seeks;
    entry.seconds = decoder->Read(pick.frame);
    entry.seek = decoder->stats().seeks > seeks_before;
    plan.total_seconds += entry.seconds;
    if (entry.seek) ++plan.seeks;
    plan.entries.push_back(entry);
    const bool new_group =
        i == 0 || picks[order[i - 1]].video != pick.video ||
        picks[order[i - 1]].gop != pick.gop;
    if (new_group) {
      ++plan.gop_groups;
    } else {
      ++plan.coalesced_frames;
    }
  }
  return plan;
}

}  // namespace video
}  // namespace exsample
