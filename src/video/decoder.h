// SimulatedDecoder: charges wall-clock cost for frame reads according to a
// GOP-aware cost model, reproducing the I/O+decode behaviour that makes
// random access more expensive than sequential scanning (the asymmetry
// behind the paper's measured 20 fps sample-vs-detect and 100 fps
// scan-and-score throughputs).

#ifndef EXSAMPLE_VIDEO_DECODER_H_
#define EXSAMPLE_VIDEO_DECODER_H_

#include <cstdint>
#include <unordered_set>

#include "video/repository.h"
#include "video/types.h"

namespace exsample {
namespace video {

/// Cost model for one decoder. All values in seconds.
struct DecodeCostModel {
  /// Container seek + I/O when jumping to a new GOP.
  double seek_seconds = 0.004;
  /// Decoding the keyframe that starts a GOP.
  double keyframe_decode_seconds = 0.003;
  /// Decoding each predicted frame after the nearest preceding keyframe.
  double predicted_decode_seconds = 0.0015;
};

/// Cost presets for the two repository regimes the cost-aware bench
/// exercises (bench/bench_cost_aware.cc). Combined with per-video GOP
/// lengths they produce repositories whose chunks differ sharply in
/// cost-per-frame, which is what cost-normalized scoring exploits.

/// Seek-dominated access: cold storage / network-attached video where the
/// container seek dwarfs per-frame decode work.
inline DecodeCostModel SeekHeavyCostModel() {
  return DecodeCostModel{/*seek_seconds=*/0.030,
                         /*keyframe_decode_seconds=*/0.003,
                         /*predicted_decode_seconds=*/0.0008};
}

/// Decode-dominated access: local fast storage but expensive decoding
/// (high-resolution video, software decode), where reaching a mid-GOP
/// frame pays mostly for the predicted-frame chain.
inline DecodeCostModel DecodeHeavyCostModel() {
  return DecodeCostModel{/*seek_seconds=*/0.002,
                         /*keyframe_decode_seconds=*/0.006,
                         /*predicted_decode_seconds=*/0.004};
}

/// Cumulative decoder accounting.
struct DecodeStats {
  int64_t frames_decoded = 0;
  int64_t seeks = 0;
  /// Reads satisfied by a SharedDecodeCache at zero modeled cost (not
  /// included in frames_decoded — nothing was decoded).
  int64_t cached_reads = 0;
  double total_seconds = 0.0;
};

/// Frames already decoded once this session and still resident: the shared
/// decode stream of a multi-class session (core/multi_engine.h). The first
/// constituent query to touch a frame pays the modeled decode; every other
/// constituent reads it back for free. Membership only — the simulation
/// never materializes pixels. Not thread-safe: a multi-class session steps
/// its sub-engines from one thread by construction.
class SharedDecodeCache {
 public:
  bool Contains(FrameId frame) const { return frames_.count(frame) > 0; }
  void Insert(FrameId frame) { frames_.insert(frame); }
  int64_t size() const { return static_cast<int64_t>(frames_.size()); }

 private:
  std::unordered_set<FrameId> frames_;
};

/// Simulates reads against a repository. The decoder remembers its position;
/// any forward read within the GOP it is parked in is cheap (only the
/// remaining predicted-frame chain — the seek and keyframe were already paid
/// when the decoder entered the GOP), while a jump to another GOP, another
/// video, or backwards pays seek + keyframe + predicted decodes from the
/// preceding keyframe to the target.
class SimulatedDecoder {
 public:
  SimulatedDecoder(const VideoRepository* repo, DecodeCostModel model);

  /// Reads (simulates decoding) the given global frame and returns the
  /// simulated cost in seconds for this read.
  double Read(FrameId frame);

  const DecodeStats& stats() const { return stats_; }

  /// Cost of reading `frame` given the current decoder position, without
  /// performing the read.
  double PeekCost(FrameId frame) const;

  /// Attaches a shared decode cache (nullptr detaches). With a cache, a
  /// Read of a cached frame costs 0.0 and leaves the decoder position
  /// untouched; a miss pays the normal model and publishes the frame. The
  /// cache must outlive the decoder.
  void set_decode_cache(SharedDecodeCache* cache) { cache_ = cache; }

 private:
  /// Shared Read/PeekCost costing; sets *is_seek (when non-null) to whether
  /// the read pays a container seek.
  double CostFor(FrameId frame, bool* is_seek) const;

  const VideoRepository* repo_;
  DecodeCostModel model_;
  DecodeStats stats_;
  SharedDecodeCache* cache_ = nullptr;
  // Position after the last read: global id of the next sequential frame,
  // or -1 when unpositioned.
  FrameId next_sequential_ = -1;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_DECODER_H_
