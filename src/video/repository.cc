#include "video/repository.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace video {

Result<VideoRepository> VideoRepository::Create(std::vector<VideoMeta> videos) {
  if (videos.empty()) {
    return Status::InvalidArgument("repository requires at least one video");
  }
  VideoRepository repo;
  repo.videos_ = std::move(videos);
  repo.starts_.reserve(repo.videos_.size());
  int64_t cursor = 0;
  for (const auto& v : repo.videos_) {
    if (v.num_frames <= 0) {
      return Status::InvalidArgument("video '" + v.name +
                                     "' has no frames");
    }
    if (v.fps <= 0.0) {
      return Status::InvalidArgument("video '" + v.name +
                                     "' has non-positive fps");
    }
    if (v.keyframe_interval <= 0) {
      return Status::InvalidArgument("video '" + v.name +
                                     "' has non-positive keyframe interval");
    }
    repo.starts_.push_back(cursor);
    cursor += v.num_frames;
  }
  repo.total_frames_ = cursor;
  return repo;
}

FrameLocation VideoRepository::Locate(FrameId id) const {
  assert(id >= 0 && id < total_frames_);
  // Last start <= id.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), id);
  VideoIndex v = static_cast<VideoIndex>(it - starts_.begin() - 1);
  return FrameLocation{v, id - starts_[v]};
}

double VideoRepository::TotalSeconds() const {
  double total = 0.0;
  for (const auto& v : videos_) {
    total += static_cast<double>(v.num_frames) / v.fps;
  }
  return total;
}

}  // namespace video
}  // namespace exsample
