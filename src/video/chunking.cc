#include "video/chunking.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace exsample {
namespace video {

Status CheckChunkCount(int64_t num_chunks) {
  if (num_chunks > std::numeric_limits<ChunkId>::max()) {
    return Status::InvalidArgument(
        "chunking would produce " + std::to_string(num_chunks) +
        " chunks, more than ChunkId can address (max " +
        std::to_string(std::numeric_limits<ChunkId>::max()) +
        "); use coarser chunks");
  }
  return Status::Ok();
}

namespace {

/// Chunks MakeFixedLengthChunks would emit for one video of `n` frames,
/// computed arithmetically (must mirror the loop below, including the
/// short-tail merge rule).
int64_t FixedLengthChunkCount(int64_t n, int64_t frames_per_chunk) {
  const int64_t full = n / frames_per_chunk;
  const int64_t rem = n % frames_per_chunk;
  // A remainder becomes its own chunk only when it is at least half a
  // chunk (or the whole video is shorter than one chunk); shorter tails
  // merge into the preceding chunk.
  if (rem > 0 && (full == 0 || rem >= frames_per_chunk / 2)) return full + 1;
  return full;
}

}  // namespace

Result<std::vector<Chunk>> MakeFixedLengthChunks(const VideoRepository& repo,
                                                 int64_t frames_per_chunk) {
  if (frames_per_chunk <= 0) {
    return Status::InvalidArgument("frames_per_chunk must be >= 1");
  }
  // Count before materializing: a pathological (repo, chunk-length) pair
  // must fail with a Status, not truncate ChunkIds after allocating
  // billions of chunks.
  int64_t total = 0;
  for (VideoIndex v = 0; v < static_cast<VideoIndex>(repo.num_videos());
       ++v) {
    total += FixedLengthChunkCount(repo.video(v).num_frames,
                                   frames_per_chunk);
  }
  Status count_ok = CheckChunkCount(total);
  if (!count_ok.ok()) return count_ok;

  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<size_t>(total));
  for (VideoIndex v = 0; v < static_cast<VideoIndex>(repo.num_videos()); ++v) {
    const FrameId start = repo.VideoStart(v);
    const int64_t n = repo.video(v).num_frames;
    FrameId lo = 0;
    while (lo < n) {
      FrameId hi = std::min<int64_t>(lo + frames_per_chunk, n);
      // Merge a short tail (< half a chunk) into this chunk rather than
      // creating a tiny chunk whose estimates would stay noisy forever.
      if (n - hi > 0 && n - hi < frames_per_chunk / 2) hi = n;
      chunks.push_back(Chunk{static_cast<ChunkId>(chunks.size()),
                             FrameRangeSet::Single(start + lo, start + hi)});
      lo = hi;
    }
  }
  assert(static_cast<int64_t>(chunks.size()) == total);
  return chunks;
}

Result<std::vector<Chunk>> MakePerFileChunks(const VideoRepository& repo) {
  Status count_ok =
      CheckChunkCount(static_cast<int64_t>(repo.num_videos()));
  if (!count_ok.ok()) return count_ok;
  std::vector<Chunk> chunks;
  chunks.reserve(repo.num_videos());
  for (VideoIndex v = 0; v < static_cast<VideoIndex>(repo.num_videos()); ++v) {
    const FrameId start = repo.VideoStart(v);
    chunks.push_back(
        Chunk{static_cast<ChunkId>(chunks.size()),
              FrameRangeSet::Single(start, start + repo.video(v).num_frames)});
  }
  return chunks;
}

Result<std::vector<Chunk>> MakeUniformChunks(int64_t num_frames,
                                             int64_t num_chunks) {
  if (num_chunks < 1 || num_chunks > num_frames) {
    return Status::InvalidArgument(
        "num_chunks must be in [1, num_frames]; got " +
        std::to_string(num_chunks) + " chunks for " +
        std::to_string(num_frames) + " frames");
  }
  Status count_ok = CheckChunkCount(num_chunks);
  if (!count_ok.ok()) return count_ok;
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<size_t>(num_chunks));
  for (int64_t j = 0; j < num_chunks; ++j) {
    FrameId lo = num_frames * j / num_chunks;
    FrameId hi = num_frames * (j + 1) / num_chunks;
    chunks.push_back(
        Chunk{static_cast<ChunkId>(j), FrameRangeSet::Single(lo, hi)});
  }
  return chunks;
}

Status ValidateChunking(const std::vector<Chunk>& chunks,
                        int64_t total_frames) {
  if (chunks.empty()) return Status::InvalidArgument("no chunks");
  int64_t covered = 0;
  std::vector<FrameRange> all;
  for (size_t j = 0; j < chunks.size(); ++j) {
    if (chunks[j].id != static_cast<ChunkId>(j)) {
      return Status::InvalidArgument("chunk ids must be dense and ordered");
    }
    if (chunks[j].frames.empty()) {
      return Status::InvalidArgument("chunk " + std::to_string(j) +
                                     " is empty");
    }
    covered += chunks[j].frames.size();
    for (const auto& r : chunks[j].frames.ranges()) all.push_back(r);
  }
  std::sort(all.begin(), all.end(),
            [](const FrameRange& a, const FrameRange& b) { return a.lo < b.lo; });
  FrameId cursor = 0;
  for (const auto& r : all) {
    if (r.lo != cursor) {
      return Status::InvalidArgument("gap or overlap at frame " +
                                     std::to_string(cursor));
    }
    cursor = r.hi;
  }
  if (covered != total_frames || cursor != total_frames) {
    return Status::InvalidArgument("chunking does not cover repository");
  }
  return Status::Ok();
}

ChunkLookup::ChunkLookup(const std::vector<Chunk>& chunks) {
  for (const auto& chunk : chunks) {
    for (const auto& range : chunk.frames.ranges()) {
      entries_.push_back(Entry{range.lo, range.hi, chunk.id});
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
}

ChunkId ChunkLookup::Find(FrameId frame) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), frame,
      [](FrameId f, const Entry& e) { return f < e.lo; });
  if (it == entries_.begin()) return -1;
  --it;
  return frame < it->hi ? it->chunk : -1;
}

int64_t SuggestChunkFrames(int64_t total_frames, double fps,
                           int64_t min_chunks, int64_t max_chunks) {
  assert(total_frames >= 1 && fps > 0.0);
  assert(min_chunks >= 1 && max_chunks >= min_chunks);
  int64_t chunk = static_cast<int64_t>(20.0 * 60.0 * fps);  // 20 minutes
  // Too few chunks: shrink the chunk so at least min_chunks exist (unless
  // the repository itself is tiny).
  if (total_frames / chunk < min_chunks) {
    chunk = std::max<int64_t>(1, total_frames / min_chunks);
  }
  // Too many chunks: grow the chunk to cap learning overhead.
  if (total_frames / chunk > max_chunks) {
    chunk = (total_frames + max_chunks - 1) / max_chunks;
  }
  return chunk;
}

}  // namespace video
}  // namespace exsample
