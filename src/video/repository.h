// VideoRepository: a collection of video files addressed by one dense global
// frame index, the address space every sampler operates on.

#ifndef EXSAMPLE_VIDEO_REPOSITORY_H_
#define EXSAMPLE_VIDEO_REPOSITORY_H_

#include <vector>

#include "util/status.h"
#include "video/types.h"

namespace exsample {
namespace video {

/// Location of a global frame inside a specific video file.
struct FrameLocation {
  VideoIndex video = 0;
  int64_t local_frame = 0;
};

/// An immutable collection of videos with global frame addressing.
class VideoRepository {
 public:
  /// Builds a repository; rejects empty input or videos with no frames.
  static Result<VideoRepository> Create(std::vector<VideoMeta> videos);

  int64_t total_frames() const { return total_frames_; }
  size_t num_videos() const { return videos_.size(); }
  const VideoMeta& video(VideoIndex i) const { return videos_[i]; }

  /// Global index of the first frame of video i.
  FrameId VideoStart(VideoIndex i) const { return starts_[i]; }

  /// Maps a global frame id to (video, local frame). Precondition: id in
  /// [0, total_frames()).
  FrameLocation Locate(FrameId id) const;

  /// Inverse of Locate.
  FrameId GlobalIndex(VideoIndex video, int64_t local_frame) const {
    return starts_[video] + local_frame;
  }

  /// Total wall-clock duration of the repository in seconds.
  double TotalSeconds() const;

 private:
  VideoRepository() = default;

  std::vector<VideoMeta> videos_;
  std::vector<FrameId> starts_;  // starts_[i] = global id of video i frame 0
  int64_t total_frames_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_REPOSITORY_H_
