// VideoRepository: a collection of video files addressed by one dense global
// frame index, the address space every sampler operates on.

#ifndef EXSAMPLE_VIDEO_REPOSITORY_H_
#define EXSAMPLE_VIDEO_REPOSITORY_H_

#include <cassert>
#include <vector>

#include "util/status.h"
#include "video/types.h"

namespace exsample {
namespace video {

/// Location of a global frame inside a specific video file.
struct FrameLocation {
  VideoIndex video = 0;
  int64_t local_frame = 0;
};

/// An immutable collection of videos with global frame addressing.
class VideoRepository {
 public:
  /// Builds a repository; rejects empty input or videos with no frames.
  static Result<VideoRepository> Create(std::vector<VideoMeta> videos);

  int64_t total_frames() const { return total_frames_; }
  size_t num_videos() const { return videos_.size(); }

  // Indexed accessors assert their preconditions in debug builds: a
  // VideoIndex that reaches here from external input (a protocol field, a
  // tool flag) without being range-checked is a caller bug, and an
  // out-of-range read of videos_/starts_ must not fail silently. Audit
  // note: in-tree callers (video/chunking.cc, bench/bench_cost_aware.cc)
  // iterate [0, num_videos()); the serve protocol and tool flags never
  // accept raw video ids — presets/classes are validated by name before
  // any index is formed.

  /// Precondition: i in [0, num_videos()).
  const VideoMeta& video(VideoIndex i) const {
    assert(i >= 0 && static_cast<size_t>(i) < videos_.size());
    return videos_[static_cast<size_t>(i)];
  }

  /// Global index of the first frame of video i. Precondition: i in
  /// [0, num_videos()).
  FrameId VideoStart(VideoIndex i) const {
    assert(i >= 0 && static_cast<size_t>(i) < starts_.size());
    return starts_[static_cast<size_t>(i)];
  }

  /// Maps a global frame id to (video, local frame). Precondition: id in
  /// [0, total_frames()).
  FrameLocation Locate(FrameId id) const;

  /// Inverse of Locate. Preconditions: video in [0, num_videos()),
  /// local_frame in [0, video's num_frames).
  FrameId GlobalIndex(VideoIndex video, int64_t local_frame) const {
    assert(video >= 0 && static_cast<size_t>(video) < starts_.size());
    assert(local_frame >= 0 &&
           local_frame < videos_[static_cast<size_t>(video)].num_frames);
    return starts_[static_cast<size_t>(video)] + local_frame;
  }

  /// Total wall-clock duration of the repository in seconds.
  double TotalSeconds() const;

 private:
  VideoRepository() = default;

  std::vector<VideoMeta> videos_;
  std::vector<FrameId> starts_;  // starts_[i] = global id of video i frame 0
  int64_t total_frames_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_REPOSITORY_H_
