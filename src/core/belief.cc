#include "core/belief.h"

#include <cassert>

#include "util/distributions.h"

namespace exsample {
namespace core {

GammaBelief::GammaBelief(BeliefParams params) : params_(params) {
  assert(params_.alpha0 > 0.0 && params_.beta0 > 0.0);
}

double GammaBelief::Sample(int64_t n1, int64_t n, Rng* rng) const {
  assert(n1 >= 0 && n >= 0);
  return SampleGamma(rng, static_cast<double>(n1) + params_.alpha0,
                     static_cast<double>(n) + params_.beta0);
}

double GammaBelief::Mean(int64_t n1, int64_t n) const {
  return (static_cast<double>(n1) + params_.alpha0) /
         (static_cast<double>(n) + params_.beta0);
}

double GammaBelief::Quantile(int64_t n1, int64_t n, double q) const {
  return GammaQuantile(q, static_cast<double>(n1) + params_.alpha0,
                       static_cast<double>(n) + params_.beta0);
}

}  // namespace core
}  // namespace exsample
