#include "core/chunk_stats.h"

#include <cassert>

namespace exsample {
namespace core {

ChunkStats::ChunkStats(int32_t num_chunks, int32_t group_size)
    : n1_(static_cast<size_t>(num_chunks), 0),
      n_(static_cast<size_t>(num_chunks), 0),
      cost_ewma_(static_cast<size_t>(num_chunks), 0.0),
      cost_n_(static_cast<size_t>(num_chunks), 0),
      group_size_(group_size > 0 ? group_size
                                 : DefaultChunkGroupSize(num_chunks)) {
  assert(num_chunks > 0);
  const size_t groups =
      static_cast<size_t>((num_chunks + group_size_ - 1) / group_size_);
  group_n1_.assign(groups, 0);
  group_n_.assign(groups, 0);
  group_cost_.assign(groups, 0.0);
  group_cost_n_.assign(groups, 0);
}

void ChunkStats::AddN1(video::ChunkId j, int64_t delta) {
  int64_t& v = n1_[static_cast<size_t>(j)];
  const int64_t old_clamped = v > 0 ? v : 0;
  v += delta;
  const int64_t new_clamped = v > 0 ? v : 0;
  group_n1_[static_cast<size_t>(GroupOf(j))] += new_clamped - old_clamped;
}

void ChunkStats::Update(video::ChunkId j, int64_t d0, int64_t d1) {
  assert(j >= 0 && j < num_chunks());
  assert(d0 >= 0 && d1 >= 0);
  AddN1(j, d0 - d1);
  n_[static_cast<size_t>(j)] += 1;
  group_n_[static_cast<size_t>(GroupOf(j))] += 1;
  ++total_samples_;
}

void ChunkStats::UpdateSplit(video::ChunkId j, int64_t d0,
                             const std::vector<video::ChunkId>& d1_chunks) {
  assert(j >= 0 && j < num_chunks());
  assert(d0 >= 0);
  AddN1(j, d0);
  for (video::ChunkId c : d1_chunks) {
    assert(c >= 0 && c < num_chunks());
    AddN1(c, -1);
  }
  n_[static_cast<size_t>(j)] += 1;
  group_n_[static_cast<size_t>(GroupOf(j))] += 1;
  ++total_samples_;
}

void ChunkStats::SeedPrior(video::ChunkId j, int64_t n1, int64_t n) {
  assert(j >= 0 && j < num_chunks());
  assert(n1 >= 0 && n >= 0);
  AddN1(j, n1);
  n_[static_cast<size_t>(j)] += n;
  group_n_[static_cast<size_t>(GroupOf(j))] += n;
}

void ChunkStats::RecordCost(video::ChunkId j, double seconds) {
  assert(j >= 0 && j < num_chunks());
  assert(seconds >= 0.0);
  double& ewma = cost_ewma_[static_cast<size_t>(j)];
  if (cost_n_[static_cast<size_t>(j)] == 0) {
    ewma = seconds;
  } else {
    ewma += kCostEwmaAlpha * (seconds - ewma);
  }
  ++cost_n_[static_cast<size_t>(j)];
  total_cost_ += seconds;
  ++total_cost_frames_;
  group_cost_[static_cast<size_t>(GroupOf(j))] += seconds;
  group_cost_n_[static_cast<size_t>(GroupOf(j))] += 1;
}

double ChunkStats::CostPerFrame(video::ChunkId j) const {
  assert(j >= 0 && j < num_chunks());
  if (cost_n_[static_cast<size_t>(j)] > 0) {
    return cost_ewma_[static_cast<size_t>(j)];
  }
  if (total_cost_frames_ > 0) {
    return total_cost_ / static_cast<double>(total_cost_frames_);
  }
  return 1.0;
}

double ChunkStats::GroupCostPerFrame(int32_t g) const {
  assert(g >= 0 && g < num_groups());
  if (group_cost_n_[static_cast<size_t>(g)] > 0) {
    return group_cost_[static_cast<size_t>(g)] /
           static_cast<double>(group_cost_n_[static_cast<size_t>(g)]);
  }
  if (total_cost_frames_ > 0) {
    return total_cost_ / static_cast<double>(total_cost_frames_);
  }
  return 1.0;
}

double ChunkStats::PointEstimate(video::ChunkId j) const {
  const int64_t nj = n(j);
  if (nj == 0) return 0.0;
  return static_cast<double>(ClampedN1(j)) / static_cast<double>(nj);
}

}  // namespace core
}  // namespace exsample
