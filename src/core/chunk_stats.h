// Per-chunk sampling statistics: the (N1_j, n_j) pairs behind the estimator
// R̂_j(n+1) = N1_j / n_j (Eq III.1 of the paper).
//
// The statistics live in a flat structure-of-arrays arena (one contiguous
// array per field) and additionally maintain group-level aggregates over
// fixed-size runs of `group_size` consecutive chunks: per-group sums of
// clamped N1, of n, and of recorded cost. The aggregates are updated
// incrementally by every mutation, so the hierarchical policies can score a
// group in O(1) instead of summing its chunks — the key to O(n/G + G)
// picks on repositories with 10^5..10^7 chunks. Flat policies never read
// the aggregates; maintaining them costs a few adds per update.

#ifndef EXSAMPLE_CORE_CHUNK_STATS_H_
#define EXSAMPLE_CORE_CHUNK_STATS_H_

#include <cstdint>
#include <vector>

#include "core/availability_index.h"
#include "video/types.h"

namespace exsample {
namespace core {

/// Mutable statistics for all chunks of one query.
///
/// N1_j counts results whose only sighting so far came from a sample in
/// chunk j. It is updated with |d0| - |d1| after each processed frame
/// (Algorithm 1 line 11): new results increment it, second sightings
/// decrement it. Because an object's first and second sightings may come
/// from samples in different chunks, an individual N1_j can dip below zero
/// (footnote 1 of the paper); the belief layer clamps at zero.
class ChunkStats {
 public:
  /// `group_size` fixes the span of the group aggregates; 0 selects
  /// DefaultChunkGroupSize(num_chunks). Use the same size as the query's
  /// AvailabilityIndex so group g covers the same chunks in both.
  explicit ChunkStats(int32_t num_chunks, int32_t group_size = 0);

  int32_t num_chunks() const { return static_cast<int32_t>(n1_.size()); }

  /// Records a processed frame from chunk j with |d0| new detections and
  /// |d1| exactly-once-matched detections.
  void Update(video::ChunkId j, int64_t d0, int64_t d1);

  /// Cross-chunk variant (paper footnote 1 / technical report): the frame
  /// sampled from chunk j contributed |d0| new results to j, while each d1
  /// decrement is credited to the chunk of the matched object's first
  /// sighting.
  void UpdateSplit(video::ChunkId j, int64_t d0,
                   const std::vector<video::ChunkId>& d1_chunks);

  /// Seeds warm-start pseudo-counts into chunk j before sampling begins
  /// (cross-query warm start, EKO-style: scaled-down statistics from a
  /// previous query on the same repository). Adds to N1_j and n_j without
  /// advancing the total-samples clock, so time-indexed policies
  /// (Bayes-UCB's quantile schedule) still start at t = 0.
  void SeedPrior(video::ChunkId j, int64_t n1, int64_t n);

  /// Raw N1 (may be negative; see class comment).
  int64_t n1(video::ChunkId j) const { return n1_[static_cast<size_t>(j)]; }
  /// N1 clamped at zero, the value fed to the belief distribution.
  int64_t ClampedN1(video::ChunkId j) const {
    int64_t v = n1_[static_cast<size_t>(j)];
    return v > 0 ? v : 0;
  }
  /// Frames sampled from chunk j.
  int64_t n(video::ChunkId j) const { return n_[static_cast<size_t>(j)]; }

  /// Total frames sampled across all chunks.
  int64_t total_samples() const { return total_samples_; }

  /// Point estimate R̂_j = N1_j / n_j (Eq III.1); 0 when n_j = 0.
  double PointEstimate(video::ChunkId j) const;

  // --- group-level aggregates (hierarchical policies). Group g spans
  // chunks [g * group_size, min((g+1) * group_size, num_chunks)); the sums
  // below are maintained incrementally by Update/UpdateSplit/SeedPrior/
  // RecordCost, never recomputed by scanning.

  int32_t group_size() const { return group_size_; }
  int32_t num_groups() const {
    return static_cast<int32_t>(group_n1_.size());
  }
  /// Group containing chunk j.
  int32_t GroupOf(video::ChunkId j) const {
    return static_cast<int32_t>(j / group_size_);
  }

  /// Sum of ClampedN1 over the chunks of group g. Clamped per chunk (not
  /// per group) so the group belief sees exactly the evidence its chunks
  /// would feed their own beliefs.
  int64_t GroupClampedN1(int32_t g) const {
    return group_n1_[static_cast<size_t>(g)];
  }
  /// Sum of n over the chunks of group g.
  int64_t GroupN(int32_t g) const { return group_n_[static_cast<size_t>(g)]; }

  /// Mean recorded cost-per-frame over group g's frames, with the same
  /// fallbacks as CostPerFrame: the global mean when the group has no
  /// observations, 1.0 before any observation at all.
  double GroupCostPerFrame(int32_t g) const;

  // --- per-chunk cost tracking (cost-aware sampling). Frames in different
  // chunks can cost very different wall-clock to obtain: a chunk inside a
  // long-GOP video pays seek + keyframe + many predicted decodes per random
  // access. Cost-normalized policies divide the sampled rate by this
  // estimate to score E[new results per *second*] instead of per frame.

  /// Smoothing factor of the per-chunk cost EWMA: each observation moves
  /// the estimate 1/8 of the way to the new value, enough inertia to ride
  /// out the within-GOP offset variance of individual random accesses.
  static constexpr double kCostEwmaAlpha = 0.125;

  /// Folds the modeled cost (seconds) of one processed frame from chunk j
  /// into the chunk's EWMA cost-per-frame. Pure bookkeeping: recording
  /// costs never changes the (N1, n) statistics or any RNG stream.
  void RecordCost(video::ChunkId j, double seconds);

  /// EWMA cost-per-frame of chunk j, seconds. Chunks with no observations
  /// yet fall back to the mean cost over all observed frames, and to 1.0
  /// before any frame has a cost — so cost-normalized scores are always
  /// defined and, under uniform costs, rank chunks exactly like the
  /// frame-denominated scores they divide.
  double CostPerFrame(video::ChunkId j) const;

  /// Frames with recorded costs in chunk j.
  int64_t cost_samples(video::ChunkId j) const {
    return cost_n_[static_cast<size_t>(j)];
  }

 private:
  /// Applies a raw N1 delta to chunk j and folds the change of its clamped
  /// value into the group aggregate.
  void AddN1(video::ChunkId j, int64_t delta);

  std::vector<int64_t> n1_;
  std::vector<int64_t> n_;
  int64_t total_samples_ = 0;
  std::vector<double> cost_ewma_;
  std::vector<int64_t> cost_n_;
  double total_cost_ = 0.0;
  int64_t total_cost_frames_ = 0;

  int32_t group_size_ = 1;
  std::vector<int64_t> group_n1_;        // sum of per-chunk clamped N1
  std::vector<int64_t> group_n_;         // sum of per-chunk n
  std::vector<double> group_cost_;       // sum of recorded costs
  std::vector<int64_t> group_cost_n_;    // frames with recorded costs
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_CHUNK_STATS_H_
