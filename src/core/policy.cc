#include "core/policy.h"

#include <cassert>
#include <limits>

#include "util/distributions.h"

namespace exsample {
namespace core {
namespace {

// Uniformly random available chunk; used for tie-breaks and UniformPolicy.
video::ChunkId RandomAvailable(const std::vector<bool>& available, Rng* rng) {
  int64_t count = 0;
  for (bool a : available) count += a ? 1 : 0;
  assert(count > 0);
  int64_t target = static_cast<int64_t>(
      rng->NextBounded(static_cast<uint64_t>(count)));
  for (size_t j = 0; j < available.size(); ++j) {
    if (!available[j]) continue;
    if (target-- == 0) return static_cast<video::ChunkId>(j);
  }
  assert(false && "unreachable");
  return 0;
}

}  // namespace

std::vector<video::ChunkId> ChunkPolicy::PickBatch(
    const ChunkStats& stats, const std::vector<bool>& available,
    int32_t batch_size, Rng* rng) {
  assert(batch_size > 0);
  std::vector<video::ChunkId> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int32_t b = 0; b < batch_size; ++b) {
    batch.push_back(Pick(stats, available, rng));
  }
  return batch;
}

ThompsonPolicy::ThompsonPolicy(BeliefParams params, bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId ThompsonPolicy::Pick(const ChunkStats& stats,
                                    const std::vector<bool>& available,
                                    Rng* rng) {
  assert(available.size() == static_cast<size_t>(stats.num_chunks()));
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int32_t j = 0; j < stats.num_chunks(); ++j) {
    if (!available[static_cast<size_t>(j)]) continue;
    double score = belief_.Sample(stats.ClampedN1(j), stats.n(j), rng);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  assert(best >= 0);
  return best;
}

BayesUcbPolicy::BayesUcbPolicy(BeliefParams params, bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId BayesUcbPolicy::Pick(const ChunkStats& stats,
                                    const std::vector<bool>& available,
                                    Rng* rng) {
  // Quantile schedule q_t = 1 - 1/(t+1), t = total samples so far.
  const double t = static_cast<double>(stats.total_samples());
  const double q = 1.0 - 1.0 / (t + 2.0);
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  for (int32_t j = 0; j < stats.num_chunks(); ++j) {
    if (!available[static_cast<size_t>(j)]) continue;
    // The fast Wilson-Hilferty quantile keeps the per-pick cost comparable
    // to Thompson sampling (the exact bisection is ~100x slower).
    double score =
        GammaQuantileFast(q, static_cast<double>(stats.ClampedN1(j)) +
                                 belief_.params().alpha0,
                          static_cast<double>(stats.n(j)) +
                              belief_.params().beta0);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
      ties = 1;
    } else if (score == best_score) {
      // Reservoir tie-break keeps the choice uniform among ties.
      ++ties;
      if (rng->NextBounded(static_cast<uint64_t>(ties)) == 0) best = j;
    }
  }
  assert(best >= 0);
  return best;
}

video::ChunkId GreedyPolicy::Pick(const ChunkStats& stats,
                                  const std::vector<bool>& available,
                                  Rng* rng) {
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  for (int32_t j = 0; j < stats.num_chunks(); ++j) {
    if (!available[static_cast<size_t>(j)]) continue;
    double score = stats.PointEstimate(j);
    if (score > best_score) {
      best_score = score;
      best = j;
      ties = 1;
    } else if (score == best_score) {
      ++ties;
      if (rng->NextBounded(static_cast<uint64_t>(ties)) == 0) best = j;
    }
  }
  assert(best >= 0);
  return best;
}

video::ChunkId UniformPolicy::Pick(const ChunkStats& stats,
                                   const std::vector<bool>& available,
                                   Rng* rng) {
  (void)stats;
  return RandomAvailable(available, rng);
}

std::unique_ptr<ChunkPolicy> MakePolicy(PolicyKind kind, BeliefParams params,
                                        bool cost_normalized) {
  switch (kind) {
    case PolicyKind::kThompson:
      return std::make_unique<ThompsonPolicy>(params, cost_normalized);
    case PolicyKind::kBayesUcb:
      return std::make_unique<BayesUcbPolicy>(params, cost_normalized);
    case PolicyKind::kGreedy:
      return std::make_unique<GreedyPolicy>();
    case PolicyKind::kUniform:
      return std::make_unique<UniformPolicy>();
  }
  return nullptr;
}

}  // namespace core
}  // namespace exsample
