#include "core/policy.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "util/distributions.h"

namespace exsample {
namespace core {
namespace {

/// Checks the contract the hierarchical policies rely on: the statistics'
/// group aggregates and the availability index partition the chunks into
/// the same groups.
void AssertAligned(const ChunkStats& stats, const AvailabilityIndex& avail) {
  assert(stats.num_chunks() == static_cast<int32_t>(avail.size()));
  assert(stats.group_size() == avail.group_size());
  (void)stats;
  (void)avail;
}

}  // namespace

std::vector<video::ChunkId> ChunkPolicy::PickBatch(
    const ChunkStats& stats, const AvailabilityIndex& available,
    int32_t batch_size, Rng* rng) {
  assert(batch_size > 0);
  std::vector<video::ChunkId> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int32_t b = 0; b < batch_size; ++b) {
    batch.push_back(Pick(stats, available, rng));
  }
  return batch;
}

ThompsonPolicy::ThompsonPolicy(BeliefParams params, bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId ThompsonPolicy::Pick(const ChunkStats& stats,
                                    const AvailabilityIndex& available,
                                    Rng* rng) {
  assert(available.size() == static_cast<int64_t>(stats.num_chunks()));
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  available.ForEachAvailable([&](video::ChunkId j) {
    double score = belief_.Sample(stats.ClampedN1(j), stats.n(j), rng);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  });
  assert(best >= 0);
  return best;
}

BayesUcbPolicy::BayesUcbPolicy(BeliefParams params, bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId BayesUcbPolicy::Pick(const ChunkStats& stats,
                                    const AvailabilityIndex& available,
                                    Rng* rng) {
  // Quantile schedule q_t = 1 - 1/(t+1), t = total samples so far.
  const double t = static_cast<double>(stats.total_samples());
  const double q = 1.0 - 1.0 / (t + 2.0);
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  available.ForEachAvailable([&](video::ChunkId j) {
    // The fast Wilson-Hilferty quantile keeps the per-pick cost comparable
    // to Thompson sampling (the exact bisection is ~100x slower).
    double score =
        GammaQuantileFast(q, static_cast<double>(stats.ClampedN1(j)) +
                                 belief_.params().alpha0,
                          static_cast<double>(stats.n(j)) +
                              belief_.params().beta0);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
      ties = 1;
    } else if (score == best_score) {
      // Reservoir tie-break keeps the choice uniform among ties.
      ++ties;
      if (rng->NextBounded(static_cast<uint64_t>(ties)) == 0) best = j;
    }
  });
  assert(best >= 0);
  return best;
}

video::ChunkId GreedyPolicy::Pick(const ChunkStats& stats,
                                  const AvailabilityIndex& available,
                                  Rng* rng) {
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  available.ForEachAvailable([&](video::ChunkId j) {
    double score = stats.PointEstimate(j);
    if (score > best_score) {
      best_score = score;
      best = j;
      ties = 1;
    } else if (score == best_score) {
      ++ties;
      if (rng->NextBounded(static_cast<uint64_t>(ties)) == 0) best = j;
    }
  });
  assert(best >= 0);
  return best;
}

video::ChunkId UniformPolicy::Pick(const ChunkStats& stats,
                                   const AvailabilityIndex& available,
                                   Rng* rng) {
  (void)stats;
  // One bounded draw, then a popcount-guided select: the same single
  // NextBounded consumption (and the same result) as the historical
  // count-then-scan, without the O(num_chunks) scans.
  assert(!available.empty());
  const int64_t target = static_cast<int64_t>(
      rng->NextBounded(static_cast<uint64_t>(available.available())));
  return available.SelectNth(target);
}

// --------------------------------------------------------- hierarchical

HierThompsonPolicy::HierThompsonPolicy(BeliefParams params,
                                       bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId HierThompsonPolicy::Pick(const ChunkStats& stats,
                                        const AvailabilityIndex& available,
                                        Rng* rng) {
  AssertAligned(stats, available);
  // Stage 1: Thompson over the group aggregates, skipping empty groups.
  int32_t best_group = -1;
  double best_group_score = -std::numeric_limits<double>::infinity();
  const int32_t groups = available.num_groups();
  for (int32_t g = 0; g < groups; ++g) {
    if (available.GroupAvailable(g) == 0) continue;
    double score = belief_.Sample(stats.GroupClampedN1(g), stats.GroupN(g),
                                  rng);
    if (cost_normalized_) score /= stats.GroupCostPerFrame(g);
    if (score > best_group_score) {
      best_group_score = score;
      best_group = g;
    }
  }
  assert(best_group >= 0);
  // Stage 2: Thompson over the winning group's available chunks.
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  available.ForEachAvailableInGroup(best_group, [&](video::ChunkId j) {
    double score = belief_.Sample(stats.ClampedN1(j), stats.n(j), rng);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  });
  assert(best >= 0);
  return best;
}

std::vector<video::ChunkId> HierThompsonPolicy::PickBatch(
    const ChunkStats& stats, const AvailabilityIndex& available,
    int32_t batch_size, Rng* rng) {
  assert(batch_size > 0);
  AssertAligned(stats, available);
  const size_t B = static_cast<size_t>(batch_size);

  // Stage 1, single pass over the group aggregates: draw all B group
  // samples for a group while its aggregate row is hot, maintaining the
  // per-batch-element argmax. Each element's draws are independent, so the
  // batch is B i.i.d. posterior draws exactly as sequential picks are.
  std::vector<int32_t> win_group(B, -1);
  std::vector<double> win_score(B,
                                -std::numeric_limits<double>::infinity());
  const int32_t groups = available.num_groups();
  for (int32_t g = 0; g < groups; ++g) {
    if (available.GroupAvailable(g) == 0) continue;
    const int64_t gn1 = stats.GroupClampedN1(g);
    const int64_t gn = stats.GroupN(g);
    const double cost = cost_normalized_ ? stats.GroupCostPerFrame(g) : 1.0;
    for (size_t b = 0; b < B; ++b) {
      double score = belief_.Sample(gn1, gn, rng);
      if (cost_normalized_) score /= cost;
      if (score > win_score[b]) {
        win_score[b] = score;
        win_group[b] = g;
      }
    }
  }

  // Stage 2: bucket the batch elements by winning group, then for each
  // group (ascending) one pass over its available chunks, drawing each
  // element's chunk samples chunk-major so a chunk's statistics load once
  // per batch rather than once per element.
  std::vector<std::pair<int32_t, size_t>> by_group;  // (group, element)
  by_group.reserve(B);
  for (size_t b = 0; b < B; ++b) {
    assert(win_group[b] >= 0);
    by_group.emplace_back(win_group[b], b);
  }
  std::stable_sort(by_group.begin(), by_group.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  std::vector<video::ChunkId> batch(B, -1);
  std::vector<double> best_chunk_score(
      B, -std::numeric_limits<double>::infinity());
  size_t i = 0;
  while (i < by_group.size()) {
    const int32_t g = by_group[i].first;
    size_t end = i;
    while (end < by_group.size() && by_group[end].first == g) ++end;
    available.ForEachAvailableInGroup(g, [&](video::ChunkId j) {
      const int64_t n1 = stats.ClampedN1(j);
      const int64_t n = stats.n(j);
      const double cost = cost_normalized_ ? stats.CostPerFrame(j) : 1.0;
      for (size_t k = i; k < end; ++k) {
        const size_t b = by_group[k].second;
        double score = belief_.Sample(n1, n, rng);
        if (cost_normalized_) score /= cost;
        if (score > best_chunk_score[b]) {
          best_chunk_score[b] = score;
          batch[b] = j;
        }
      }
    });
    i = end;
  }
  for (size_t b = 0; b < B; ++b) assert(batch[b] >= 0);
  return batch;
}

HierBayesUcbPolicy::HierBayesUcbPolicy(BeliefParams params,
                                       bool cost_normalized)
    : belief_(params), cost_normalized_(cost_normalized) {}

video::ChunkId HierBayesUcbPolicy::Pick(const ChunkStats& stats,
                                        const AvailabilityIndex& available,
                                        Rng* rng) {
  AssertAligned(stats, available);
  const double t = static_cast<double>(stats.total_samples());
  const double q = 1.0 - 1.0 / (t + 2.0);
  const double alpha0 = belief_.params().alpha0;
  const double beta0 = belief_.params().beta0;

  // Stage 1: quantile score per non-empty group, reservoir tie-break.
  int32_t best_group = -1;
  double best_group_score = -std::numeric_limits<double>::infinity();
  int64_t group_ties = 0;
  const int32_t groups = available.num_groups();
  for (int32_t g = 0; g < groups; ++g) {
    if (available.GroupAvailable(g) == 0) continue;
    double score = GammaQuantileFast(
        q, static_cast<double>(stats.GroupClampedN1(g)) + alpha0,
        static_cast<double>(stats.GroupN(g)) + beta0);
    if (cost_normalized_) score /= stats.GroupCostPerFrame(g);
    if (score > best_group_score) {
      best_group_score = score;
      best_group = g;
      group_ties = 1;
    } else if (score == best_group_score) {
      ++group_ties;
      if (rng->NextBounded(static_cast<uint64_t>(group_ties)) == 0) {
        best_group = g;
      }
    }
  }
  assert(best_group >= 0);

  // Stage 2: flat Bayes-UCB within the winning group.
  video::ChunkId best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  available.ForEachAvailableInGroup(best_group, [&](video::ChunkId j) {
    double score = GammaQuantileFast(
        q, static_cast<double>(stats.ClampedN1(j)) + alpha0,
        static_cast<double>(stats.n(j)) + beta0);
    if (cost_normalized_) score /= stats.CostPerFrame(j);
    if (score > best_score) {
      best_score = score;
      best = j;
      ties = 1;
    } else if (score == best_score) {
      ++ties;
      if (rng->NextBounded(static_cast<uint64_t>(ties)) == 0) best = j;
    }
  });
  assert(best >= 0);
  return best;
}

// --------------------------------------------------------------- factory

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kThompson:
      return "thompson";
    case PolicyKind::kBayesUcb:
      return "bayes_ucb";
    case PolicyKind::kGreedy:
      return "greedy";
    case PolicyKind::kUniform:
      return "uniform";
    case PolicyKind::kHierThompson:
      return "hier_thompson";
    case PolicyKind::kHierBayesUcb:
      return "hier_bayes_ucb";
  }
  return "unknown";
}

bool ParsePolicyName(const std::string& name, PolicyKind* kind) {
  if (name == "thompson") {
    *kind = PolicyKind::kThompson;
  } else if (name == "bayes_ucb") {
    *kind = PolicyKind::kBayesUcb;
  } else if (name == "greedy") {
    *kind = PolicyKind::kGreedy;
  } else if (name == "uniform") {
    *kind = PolicyKind::kUniform;
  } else if (name == "hier_thompson") {
    *kind = PolicyKind::kHierThompson;
  } else if (name == "hier_bayes_ucb") {
    *kind = PolicyKind::kHierBayesUcb;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<ChunkPolicy> MakePolicy(PolicyKind kind, BeliefParams params,
                                        bool cost_normalized) {
  switch (kind) {
    case PolicyKind::kThompson:
      return std::make_unique<ThompsonPolicy>(params, cost_normalized);
    case PolicyKind::kBayesUcb:
      return std::make_unique<BayesUcbPolicy>(params, cost_normalized);
    case PolicyKind::kGreedy:
      return std::make_unique<GreedyPolicy>();
    case PolicyKind::kUniform:
      return std::make_unique<UniformPolicy>();
    case PolicyKind::kHierThompson:
      return std::make_unique<HierThompsonPolicy>(params, cost_normalized);
    case PolicyKind::kHierBayesUcb:
      return std::make_unique<HierBayesUcbPolicy>(params, cost_normalized);
  }
  return nullptr;
}

}  // namespace core
}  // namespace exsample
