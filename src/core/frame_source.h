// FrameSource: the frame-selection layer of the query pipeline.
//
// Algorithm 1's "which frame next?" decision is isolated behind this
// interface so the engine loop (decode -> detect -> discriminate) stays
// strategy-agnostic and new sampling strategies plug in without touching
// the engine. Four sources cover the paper's strategies:
//
//  * ExSampleFrameSource   — chunk choice by bandit policy (Thompson by
//                            default), within-chunk sampling without
//                            replacement, per-chunk (N1, n) state updated
//                            through the feedback hook. Batched picks route
//                            through ChunkPolicy::PickBatch (§III-F).
//  * RandomFrameSource     — uniform sampling without replacement over the
//                            whole repository (the paper's main baseline).
//  * RandomPlusFrameSource — temporally stratified random over the whole
//                            repository (§III-F's standalone random+).
//  * SequentialFrameSource — scan frames in order with a stride (the naive
//                            baseline, §II-B).
//
// Sources are stateful and single-query: use a fresh instance per run.

#ifndef EXSAMPLE_CORE_FRAME_SOURCE_H_
#define EXSAMPLE_CORE_FRAME_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/belief.h"
#include "core/chunk_stats.h"
#include "core/policy.h"
#include "track/discriminator.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/frame_sampler.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// Frame-selection strategy selector for configuration structs.
enum class Strategy {
  kExSample,
  kRandom,
  kRandomPlus,
  kSequential,
};

/// How the N1 decrement of a second sighting is attributed when an object
/// spans chunks (paper footnote 1).
enum class CreditMode {
  /// Algorithm 1 as published: both |d0| and |d1| update the chunk the
  /// frame was sampled from. An object first seen from chunk A and re-seen
  /// from a sample in chunk B drives N1_B negative (clamped by the belief).
  kSampledChunk,
  /// Technical-report adjustment: each d1 decrement is credited to the
  /// chunk of the object's FIRST sighting, cancelling the +1 recorded
  /// there. Per-chunk N1 can then never go negative.
  kFirstSightingChunk,
};

/// Warm-start pseudo-counts for one chunk: scaled-down (N1, n) statistics
/// carried over from a previous query on the same repository (see
/// serve::StatsCache). Seeded into ChunkStats before sampling begins.
struct ChunkPrior {
  int64_t n1 = 0;
  int64_t n = 0;
};

/// Everything needed to build a frame source for one query run.
struct FrameSourceConfig {
  Strategy strategy = Strategy::kExSample;
  /// Bandit policy for kExSample.
  PolicyKind policy = PolicyKind::kThompson;
  BeliefParams belief;
  /// Chunk-group size shared by the stats arena's group aggregates and the
  /// availability index. The hierarchical policies (kHierThompson /
  /// kHierBayesUcb) score groups first, so this is their fan-out knob;
  /// flat policies ignore the grouping entirely. 0 = automatic
  /// (DefaultChunkGroupSize, ~sqrt(num_chunks) clamped to [16, 4096]).
  int32_t group_size = 0;
  /// Cost-aware scoring (kExSample with Thompson / Bayes-UCB): chunk scores
  /// become E[new results per *second*] — the belief draw divided by the
  /// chunk's EWMA cost-per-frame learned from OnFrameCost feedback. Off by
  /// default; when off the draw sequence is bit-identical to the
  /// frame-denominated policy.
  bool cost_aware = false;
  /// GOP-run draws (kExSample): when > 1, each chunk pick yields a run of
  /// up to this many consecutive frames inside one GOP, so a single seek +
  /// keyframe decode is amortized across the run. Requires the repository
  /// (GOP structure); within-chunk sampling switches to a claimable
  /// uniform sampler. 1 (the default) reproduces the classic
  /// one-frame-per-pick behaviour bit-identically.
  int32_t gop_run_frames = 1;
  /// Within-chunk sampling for kExSample.
  video::WithinChunkStrategy within_chunk =
      video::WithinChunkStrategy::kRandomPlus;
  /// Stride for kSequential (process every k-th frame).
  int64_t sequential_stride = 1;
  /// Cross-chunk N1 crediting (kExSample only).
  CreditMode credit = CreditMode::kSampledChunk;
  /// Optional cross-query warm start (kExSample only): one prior per chunk,
  /// seeded into the (N1, n) statistics at construction. Non-owning; must
  /// outlive the source. nullptr (the default) is a cold start; a vector
  /// whose size does not match the chunk count is ignored.
  const std::vector<ChunkPrior>* warm_start = nullptr;
};

/// One chosen frame. `chunk` is -1 for sources without chunk structure.
struct PickedFrame {
  video::FrameId frame = -1;
  video::ChunkId chunk = -1;
};

/// Supplies the frames a query processes, without replacement, and receives
/// the discriminator's verdicts back so adaptive sources can learn.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  /// Frames this source can still produce.
  virtual int64_t remaining() const = 0;

  bool exhausted() const { return remaining() == 0; }

  /// Draws up to `want` frames. Returns fewer (possibly none) when the
  /// source runs dry. Each frame is produced at most once per source
  /// lifetime (sampling without replacement).
  virtual std::vector<PickedFrame> NextBatch(int64_t want, Rng* rng) = 0;

  /// Feedback for one processed frame: the discriminator's partition of its
  /// detections into new objects (d0) and second sightings (d1). Called
  /// once per frame, in processing order. Baselines ignore it.
  virtual void OnFeedback(const PickedFrame& /*pick*/,
                          const track::MatchResult& /*match*/) {}

  /// Modeled cost of one processed frame (decode + inference seconds),
  /// reported by the engine before OnFeedback. Cost-aware sources fold it
  /// into their per-chunk cost estimates; baselines ignore it.
  virtual void OnFrameCost(const PickedFrame& /*pick*/, double /*seconds*/) {}

  /// Per-chunk statistics when the source maintains them, else nullptr.
  virtual const ChunkStats* chunk_stats() const { return nullptr; }

  virtual std::string name() const = 0;
};

/// The paper's adaptive source: a bandit policy scores chunks by their
/// (N1, n) statistics; frames are drawn within the chosen chunk without
/// replacement. Batched draws go through ChunkPolicy::PickBatch, re-picking
/// from the live beliefs when a chunk runs dry mid-batch.
class ExSampleFrameSource : public FrameSource {
 public:
  /// `chunks` must be non-empty and outlive the source. `repo` is required
  /// when config.gop_run_frames > 1 (GOP structure) and may be null
  /// otherwise; it must outlive the source too.
  ExSampleFrameSource(const std::vector<video::Chunk>* chunks,
                      const FrameSourceConfig& config,
                      const video::VideoRepository* repo = nullptr);

  int64_t remaining() const override { return remaining_; }
  std::vector<PickedFrame> NextBatch(int64_t want, Rng* rng) override;
  void OnFeedback(const PickedFrame& pick,
                  const track::MatchResult& match) override;
  void OnFrameCost(const PickedFrame& pick, double seconds) override;
  const ChunkStats* chunk_stats() const override { return &stats_; }
  std::string name() const override { return "exsample:" + policy_->name(); }

 private:
  /// One-seek-amortized draws: anchor + consecutive same-GOP frames claimed
  /// from the chunk's sampler (gop_run_frames > 1 only).
  std::vector<PickedFrame> NextBatchGopRuns(int64_t want, Rng* rng);

  const std::vector<video::Chunk>* chunks_;
  const video::VideoRepository* repo_;
  CreditMode credit_;
  int32_t gop_run_;
  std::unique_ptr<ChunkPolicy> policy_;
  ChunkStats stats_;
  std::vector<std::unique_ptr<video::FrameSampler>> samplers_;
  /// Non-owning views of samplers_ as claimable samplers (GOP-run mode).
  std::vector<video::ClaimableFrameSampler*> claimable_;
  AvailabilityIndex available_;
  int64_t remaining_ = 0;
  std::unique_ptr<video::ChunkLookup> lookup_;  // kFirstSightingChunk only
};

/// Uniform random over the whole repository, without replacement.
class RandomFrameSource : public FrameSource {
 public:
  explicit RandomFrameSource(int64_t total_frames);

  int64_t remaining() const override { return sampler_.remaining(); }
  std::vector<PickedFrame> NextBatch(int64_t want, Rng* rng) override;
  std::string name() const override { return "random"; }

 private:
  video::UniformFrameSampler sampler_;
};

/// Temporally stratified random ("random+", §III-F) over the repository.
class RandomPlusFrameSource : public FrameSource {
 public:
  explicit RandomPlusFrameSource(int64_t total_frames);

  int64_t remaining() const override { return sampler_.remaining(); }
  std::vector<PickedFrame> NextBatch(int64_t want, Rng* rng) override;
  std::string name() const override { return "random+"; }

 private:
  video::RandomPlusFrameSampler sampler_;
};

/// In-order scan with a stride (every k-th frame).
class SequentialFrameSource : public FrameSource {
 public:
  SequentialFrameSource(int64_t total_frames, int64_t stride);

  int64_t remaining() const override;
  std::vector<PickedFrame> NextBatch(int64_t want, Rng* rng) override;
  std::string name() const override { return "sequential"; }

 private:
  int64_t total_frames_;
  int64_t stride_;
  int64_t cursor_ = 0;
};

/// Builds the configured source. `chunks` is required (non-null, non-empty)
/// for Strategy::kExSample and ignored otherwise.
std::unique_ptr<FrameSource> MakeFrameSource(
    const FrameSourceConfig& config, const video::VideoRepository& repo,
    const std::vector<video::Chunk>* chunks);

/// Applies the user-facing strategy name ("exsample" | "random" |
/// "randomplus" | "sequential") to `config`, including the conventional
/// 1-second stride for sequential scans. Returns false on an unknown name
/// (config untouched). Shared by the CLI tools and the serve protocol so
/// they accept the same strategy set.
bool ApplyStrategyName(const std::string& name, FrameSourceConfig* config);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_FRAME_SOURCE_H_
