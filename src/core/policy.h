// Chunk-selection policies: given the per-chunk statistics, decide which
// chunk to sample next (Algorithm 1 lines 3-6).
//
//  * ThompsonPolicy — the paper's method: draw one belief sample per chunk,
//    pick the argmax. Early on the beliefs are identical and this breaks
//    ties at random; as evidence accrues it concentrates on good chunks
//    while still exploring.
//  * BayesUcbPolicy — the alternative the paper also tried (§III-C): score
//    each chunk by an upper belief quantile that tightens over time
//    (Kaufmann's 1 - 1/t schedule).
//  * GreedyPolicy — argmax of the raw point estimate N1/n. Exhibits the
//    stuck-on-lucky-chunk failure mode §III-B warns about; kept as an
//    ablation baseline.
//  * UniformPolicy — ignores the statistics; turns the engine into chunked
//    random sampling.

#ifndef EXSAMPLE_CORE_POLICY_H_
#define EXSAMPLE_CORE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/belief.h"
#include "core/chunk_stats.h"
#include "util/rng.h"

namespace exsample {
namespace core {

/// Strategy interface for chunk choice. `available[j]` marks chunks that
/// still have unsampled frames; implementations must only return available
/// chunks (at least one is guaranteed).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// Picks the chunk to sample next.
  virtual video::ChunkId Pick(const ChunkStats& stats,
                              const std::vector<bool>& available,
                              Rng* rng) = 0;

  /// Picks a batch of B chunks (with repetition) for batched inference
  /// (§III-F). The default implementation calls Pick() B times, which is
  /// exact for Thompson sampling since state does not change between picks.
  virtual std::vector<video::ChunkId> PickBatch(
      const ChunkStats& stats, const std::vector<bool>& available,
      int32_t batch_size, Rng* rng);

  virtual std::string name() const = 0;
};

/// Thompson sampling over Gamma beliefs (the ExSample default).
///
/// `cost_normalized` switches the score from E[new results per frame] to
/// E[new results per second]: each belief draw is divided by the chunk's
/// EWMA cost-per-frame (ChunkStats::CostPerFrame), so cheap chunks win
/// ties against expensive ones with the same result rate. The RNG draw
/// sequence is identical in both modes, and with uniform per-chunk costs
/// the two modes rank chunks identically.
class ThompsonPolicy : public ChunkPolicy {
 public:
  explicit ThompsonPolicy(BeliefParams params = {},
                          bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_thompson" : "thompson";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Bayes-UCB: argmax of the 1 - 1/(t+1) belief quantile. `cost_normalized`
/// divides the quantile by the chunk's EWMA cost-per-frame, exactly as in
/// ThompsonPolicy.
class BayesUcbPolicy : public ChunkPolicy {
 public:
  explicit BayesUcbPolicy(BeliefParams params = {},
                          bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_bayes_ucb" : "bayes_ucb";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Greedy argmax of the raw point estimate N1/n, random tie-break.
class GreedyPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "greedy"; }
};

/// Uniform-random chunk choice (chunked random sampling).
class UniformPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "uniform"; }
};

/// Policy selector for configuration structs.
enum class PolicyKind {
  kThompson,
  kBayesUcb,
  kGreedy,
  kUniform,
};

/// Instantiates the configured policy. `cost_normalized` selects the
/// cost-aware variant of Thompson / Bayes-UCB (greedy and uniform have no
/// cost-aware form and ignore the flag).
std::unique_ptr<ChunkPolicy> MakePolicy(PolicyKind kind,
                                        BeliefParams params = {},
                                        bool cost_normalized = false);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_POLICY_H_
