// Chunk-selection policies: given the per-chunk statistics, decide which
// chunk to sample next (Algorithm 1 lines 3-6).
//
//  * ThompsonPolicy — the paper's method: draw one belief sample per chunk,
//    pick the argmax. Early on the beliefs are identical and this breaks
//    ties at random; as evidence accrues it concentrates on good chunks
//    while still exploring.
//  * BayesUcbPolicy — the alternative the paper also tried (§III-C): score
//    each chunk by an upper belief quantile that tightens over time
//    (Kaufmann's 1 - 1/t schedule).
//  * GreedyPolicy — argmax of the raw point estimate N1/n. Exhibits the
//    stuck-on-lucky-chunk failure mode §III-B warns about; kept as an
//    ablation baseline.
//  * UniformPolicy — ignores the statistics; turns the engine into chunked
//    random sampling.

#ifndef EXSAMPLE_CORE_POLICY_H_
#define EXSAMPLE_CORE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/belief.h"
#include "core/chunk_stats.h"
#include "util/rng.h"

namespace exsample {
namespace core {

/// Strategy interface for chunk choice. `available[j]` marks chunks that
/// still have unsampled frames; implementations must only return available
/// chunks (at least one is guaranteed).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// Picks the chunk to sample next.
  virtual video::ChunkId Pick(const ChunkStats& stats,
                              const std::vector<bool>& available,
                              Rng* rng) = 0;

  /// Picks a batch of B chunks (with repetition) for batched inference
  /// (§III-F). The default implementation calls Pick() B times, which is
  /// exact for Thompson sampling since state does not change between picks.
  virtual std::vector<video::ChunkId> PickBatch(
      const ChunkStats& stats, const std::vector<bool>& available,
      int32_t batch_size, Rng* rng);

  virtual std::string name() const = 0;
};

/// Thompson sampling over Gamma beliefs (the ExSample default).
class ThompsonPolicy : public ChunkPolicy {
 public:
  explicit ThompsonPolicy(BeliefParams params = {});

  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "thompson"; }

 private:
  GammaBelief belief_;
};

/// Bayes-UCB: argmax of the 1 - 1/(t+1) belief quantile.
class BayesUcbPolicy : public ChunkPolicy {
 public:
  explicit BayesUcbPolicy(BeliefParams params = {});

  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "bayes_ucb"; }

 private:
  GammaBelief belief_;
};

/// Greedy argmax of the raw point estimate N1/n, random tie-break.
class GreedyPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "greedy"; }
};

/// Uniform-random chunk choice (chunked random sampling).
class UniformPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const std::vector<bool>& available, Rng* rng) override;
  std::string name() const override { return "uniform"; }
};

/// Policy selector for configuration structs.
enum class PolicyKind {
  kThompson,
  kBayesUcb,
  kGreedy,
  kUniform,
};

/// Instantiates the configured policy.
std::unique_ptr<ChunkPolicy> MakePolicy(PolicyKind kind,
                                        BeliefParams params = {});

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_POLICY_H_
