// Chunk-selection policies: given the per-chunk statistics, decide which
// chunk to sample next (Algorithm 1 lines 3-6).
//
//  * ThompsonPolicy — the paper's method: draw one belief sample per chunk,
//    pick the argmax. Early on the beliefs are identical and this breaks
//    ties at random; as evidence accrues it concentrates on good chunks
//    while still exploring.
//  * BayesUcbPolicy — the alternative the paper also tried (§III-C): score
//    each chunk by an upper belief quantile that tightens over time
//    (Kaufmann's 1 - 1/t schedule).
//  * GreedyPolicy — argmax of the raw point estimate N1/n. Exhibits the
//    stuck-on-lucky-chunk failure mode §III-B warns about; kept as an
//    ablation baseline.
//  * UniformPolicy — ignores the statistics; turns the engine into chunked
//    random sampling.
//  * HierThompsonPolicy / HierBayesUcbPolicy — repository-scale variants:
//    score the *groups* first (from ChunkStats' incrementally maintained
//    group aggregates), then only the chunks of the winning group — O(n/G
//    + G) per pick instead of O(n), which is what makes 10^5..10^7-chunk
//    repositories tractable. Opt-in: the flat policies remain the paper's
//    exact method and keep their pinned RNG streams.
//
// Availability is represented by core::AvailabilityIndex (word bitset +
// per-group counts); policies must only return available chunks (at least
// one is guaranteed). The flat policies iterate available chunks in
// ascending id order, which reproduces the draw sequence of the historical
// vector<bool> scan bit-for-bit.

#ifndef EXSAMPLE_CORE_POLICY_H_
#define EXSAMPLE_CORE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/availability_index.h"
#include "core/belief.h"
#include "core/chunk_stats.h"
#include "util/rng.h"

namespace exsample {
namespace core {

/// Strategy interface for chunk choice. `available` marks chunks that
/// still have unsampled frames; implementations must only return available
/// chunks (at least one is guaranteed).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// Picks the chunk to sample next.
  virtual video::ChunkId Pick(const ChunkStats& stats,
                              const AvailabilityIndex& available,
                              Rng* rng) = 0;

  /// Picks a batch of B chunks (with repetition) for batched inference
  /// (§III-F). The default implementation calls Pick() B times, which is
  /// exact for Thompson sampling since state does not change between picks.
  virtual std::vector<video::ChunkId> PickBatch(
      const ChunkStats& stats, const AvailabilityIndex& available,
      int32_t batch_size, Rng* rng);

  virtual std::string name() const = 0;
};

/// Thompson sampling over Gamma beliefs (the ExSample default).
///
/// `cost_normalized` switches the score from E[new results per frame] to
/// E[new results per second]: each belief draw is divided by the chunk's
/// EWMA cost-per-frame (ChunkStats::CostPerFrame), so cheap chunks win
/// ties against expensive ones with the same result rate. The RNG draw
/// sequence is identical in both modes, and with uniform per-chunk costs
/// the two modes rank chunks identically.
class ThompsonPolicy : public ChunkPolicy {
 public:
  explicit ThompsonPolicy(BeliefParams params = {},
                          bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_thompson" : "thompson";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Bayes-UCB: argmax of the 1 - 1/(t+1) belief quantile. `cost_normalized`
/// divides the quantile by the chunk's EWMA cost-per-frame, exactly as in
/// ThompsonPolicy.
class BayesUcbPolicy : public ChunkPolicy {
 public:
  explicit BayesUcbPolicy(BeliefParams params = {},
                          bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_bayes_ucb" : "bayes_ucb";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Greedy argmax of the raw point estimate N1/n, random tie-break.
class GreedyPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::string name() const override { return "greedy"; }
};

/// Uniform-random chunk choice (chunked random sampling). One bounded RNG
/// draw plus a popcount-guided select — O(num_groups + group_size/64), not
/// a full scan.
class UniformPolicy : public ChunkPolicy {
 public:
  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::string name() const override { return "uniform"; }
};

/// Hierarchical Thompson sampling: Thompson-sample a *group* from the
/// group-level aggregates (Gamma over the group's summed clamped N1 and
/// summed n), then Thompson-sample a chunk within the winning group.
/// O(num_groups + group_size) belief draws per pick. Requires
/// stats.group_size() == available.group_size() (the frame source
/// constructs both from one configuration).
///
/// PickBatch is a single pass over the group aggregates drawing all B
/// group samples while each group's row is hot, then one pass over each
/// winning group's chunks — the batched-scoring path §III-F's argument
/// needs to actually be cheaper than B independent scans. Every batch
/// element is an independent posterior draw, exactly as sequential picks
/// are, but the RNG stream differs from B sequential Pick() calls (the
/// draws happen group-major); the determinism tests pin the batched
/// stream.
class HierThompsonPolicy : public ChunkPolicy {
 public:
  explicit HierThompsonPolicy(BeliefParams params = {},
                              bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::vector<video::ChunkId> PickBatch(const ChunkStats& stats,
                                        const AvailabilityIndex& available,
                                        int32_t batch_size,
                                        Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_hier_thompson" : "hier_thompson";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Hierarchical Bayes-UCB: the group stage scores each group's aggregate
/// belief quantile (same 1 - 1/(t+1) schedule), the chunk stage runs flat
/// Bayes-UCB within the winning group; reservoir tie-breaks at both
/// stages. Batched picks use the default sequential path — quantile scores
/// are deterministic in the statistics, so there is no group-major draw
/// locality to exploit and each pick stays O(n/G + G).
class HierBayesUcbPolicy : public ChunkPolicy {
 public:
  explicit HierBayesUcbPolicy(BeliefParams params = {},
                              bool cost_normalized = false);

  video::ChunkId Pick(const ChunkStats& stats,
                      const AvailabilityIndex& available, Rng* rng) override;
  std::string name() const override {
    return cost_normalized_ ? "cost_hier_bayes_ucb" : "hier_bayes_ucb";
  }

 private:
  GammaBelief belief_;
  bool cost_normalized_;
};

/// Policy selector for configuration structs.
enum class PolicyKind {
  kThompson,
  kBayesUcb,
  kGreedy,
  kUniform,
  kHierThompson,
  kHierBayesUcb,
};

/// Canonical user-facing name of a policy kind ("thompson", "bayes_ucb",
/// "greedy", "uniform", "hier_thompson", "hier_bayes_ucb").
const char* PolicyKindName(PolicyKind kind);

/// Parses a user-facing policy name into `*kind`. Returns false on an
/// unknown name (*kind untouched). Shared by the CLI tools and the serve
/// protocol so they accept — and reject — the same policy set.
bool ParsePolicyName(const std::string& name, PolicyKind* kind);

/// Instantiates the configured policy. `cost_normalized` selects the
/// cost-aware variant of Thompson / Bayes-UCB and their hierarchical forms
/// (greedy and uniform have no cost-aware form and ignore the flag).
std::unique_ptr<ChunkPolicy> MakePolicy(PolicyKind kind,
                                        BeliefParams params = {},
                                        bool cost_normalized = false);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_POLICY_H_
