#include "core/frame_source.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace core {

// ---------------------------------------------------------------- ExSample

ExSampleFrameSource::ExSampleFrameSource(
    const std::vector<video::Chunk>* chunks, const FrameSourceConfig& config,
    const video::VideoRepository* repo)
    : chunks_(chunks),
      repo_(repo),
      credit_(config.credit),
      gop_run_(config.gop_run_frames),
      policy_(MakePolicy(config.policy, config.belief, config.cost_aware)),
      stats_(static_cast<int32_t>(chunks->size()), config.group_size),
      available_(static_cast<int64_t>(chunks->size()), config.group_size) {
  assert(chunks_ != nullptr && !chunks_->empty());
  assert(gop_run_ >= 1);
  assert((gop_run_ == 1 || repo_ != nullptr) &&
         "GOP-run draws need the repository's GOP structure");
  samplers_.reserve(chunks_->size());
  for (const auto& chunk : *chunks_) {
    if (gop_run_ > 1) {
      // Claimable sampler: runs remove specific follow-on frames, which the
      // stock within-chunk samplers cannot do.
      auto claimable =
          std::make_unique<video::ClaimableFrameSampler>(chunk.frames);
      claimable_.push_back(claimable.get());
      samplers_.push_back(std::move(claimable));
    } else {
      samplers_.push_back(
          video::MakeFrameSampler(config.within_chunk, chunk.frames));
    }
    remaining_ += samplers_.back()->remaining();
  }
  if (credit_ == CreditMode::kFirstSightingChunk) {
    lookup_ = std::make_unique<video::ChunkLookup>(*chunks_);
  }
  if (config.warm_start != nullptr &&
      config.warm_start->size() == chunks_->size()) {
    for (size_t j = 0; j < config.warm_start->size(); ++j) {
      const ChunkPrior& prior = (*config.warm_start)[j];
      stats_.SeedPrior(static_cast<video::ChunkId>(j), prior.n1, prior.n);
    }
  }
}

std::vector<PickedFrame> ExSampleFrameSource::NextBatch(int64_t want,
                                                        Rng* rng) {
  std::vector<PickedFrame> out;
  if (want <= 0 || remaining_ == 0) return out;
  want = std::min(want, remaining_);
  if (gop_run_ > 1) return NextBatchGopRuns(want, rng);
  out.reserve(static_cast<size_t>(want));

  // One PickBatch draws the whole batch from the current beliefs (§III-F:
  // batched Thompson samples B chunk indices i.i.d. from the same
  // posterior). Chunks can run dry mid-batch; those picks are redrawn from
  // the live availability so every returned frame is valid.
  std::vector<video::ChunkId> picks = policy_->PickBatch(
      stats_, available_, static_cast<int32_t>(want), rng);
  for (video::ChunkId j : picks) {
    if (remaining_ == 0) break;
    if (!available_.Test(j)) {
      j = policy_->Pick(stats_, available_, rng);
    }
    auto& sampler = samplers_[static_cast<size_t>(j)];
    assert(!sampler->exhausted());
    PickedFrame pick;
    pick.frame = sampler->Next(rng);
    pick.chunk = j;
    if (sampler->exhausted()) {
      available_.Clear(j);
    }
    --remaining_;
    out.push_back(pick);
  }
  return out;
}

std::vector<PickedFrame> ExSampleFrameSource::NextBatchGopRuns(int64_t want,
                                                               Rng* rng) {
  // Each iteration spends one chunk pick on an anchor frame, then claims
  // the consecutive frames of the anchor's GOP (stopping at the GOP end,
  // the video end, or an already-drawn frame) so the whole run costs one
  // seek + keyframe decode instead of one per frame. Run frames count
  // against `want` — the engine sizes its request to fit whole runs.
  std::vector<PickedFrame> out;
  out.reserve(static_cast<size_t>(want));
  while (static_cast<int64_t>(out.size()) < want && remaining_ > 0) {
    const video::ChunkId j = policy_->Pick(stats_, available_, rng);
    video::ClaimableFrameSampler* sampler =
        claimable_[static_cast<size_t>(j)];
    assert(!sampler->exhausted());
    const video::FrameId anchor = sampler->Next(rng);
    --remaining_;
    out.push_back(PickedFrame{anchor, j});

    const video::FrameLocation loc = repo_->Locate(anchor);
    const video::VideoMeta& meta = repo_->video(loc.video);
    const int64_t gop = meta.keyframe_interval;
    const int64_t gop_end_local = std::min<int64_t>(
        loc.local_frame - loc.local_frame % gop + gop, meta.num_frames);
    const int64_t budget = std::min<int64_t>(
        gop_run_ - 1, want - static_cast<int64_t>(out.size()));
    for (int64_t s = 1;
         s <= budget && loc.local_frame + s < gop_end_local; ++s) {
      if (!sampler->Claim(anchor + s)) break;  // already drawn: run ends
      --remaining_;
      out.push_back(PickedFrame{anchor + s, j});
    }
    if (sampler->exhausted()) available_.Clear(j);
  }
  return out;
}

void ExSampleFrameSource::OnFrameCost(const PickedFrame& pick,
                                      double seconds) {
  stats_.RecordCost(pick.chunk, seconds);
}

void ExSampleFrameSource::OnFeedback(const PickedFrame& pick,
                                     const track::MatchResult& match) {
  if (credit_ == CreditMode::kFirstSightingChunk) {
    std::vector<video::ChunkId> d1_chunks;
    d1_chunks.reserve(match.d1_first_frames.size());
    for (video::FrameId f : match.d1_first_frames) {
      video::ChunkId c = lookup_->Find(f);
      assert(c >= 0);
      d1_chunks.push_back(c);
    }
    stats_.UpdateSplit(pick.chunk, static_cast<int64_t>(match.d0.size()),
                       d1_chunks);
  } else {
    stats_.Update(pick.chunk, static_cast<int64_t>(match.d0.size()),
                  match.num_d1);
  }
}

// ------------------------------------------------------- flat baselines

namespace {

/// Drains up to `want` chunkless picks from a sampler.
std::vector<PickedFrame> DrainSampler(video::FrameSampler* sampler,
                                      int64_t want, Rng* rng) {
  std::vector<PickedFrame> out;
  want = std::min(want, sampler->remaining());
  if (want <= 0) return out;
  out.reserve(static_cast<size_t>(want));
  for (int64_t b = 0; b < want; ++b) {
    PickedFrame pick;
    pick.frame = sampler->Next(rng);
    out.push_back(pick);
  }
  return out;
}

}  // namespace

RandomFrameSource::RandomFrameSource(int64_t total_frames)
    : sampler_(video::FrameRangeSet::Single(0, total_frames)) {}

std::vector<PickedFrame> RandomFrameSource::NextBatch(int64_t want,
                                                      Rng* rng) {
  return DrainSampler(&sampler_, want, rng);
}

RandomPlusFrameSource::RandomPlusFrameSource(int64_t total_frames)
    : sampler_(video::FrameRangeSet::Single(0, total_frames)) {}

std::vector<PickedFrame> RandomPlusFrameSource::NextBatch(int64_t want,
                                                          Rng* rng) {
  return DrainSampler(&sampler_, want, rng);
}

// ------------------------------------------------------------ sequential

SequentialFrameSource::SequentialFrameSource(int64_t total_frames,
                                             int64_t stride)
    : total_frames_(total_frames), stride_(stride) {
  assert(stride_ >= 1);
}

int64_t SequentialFrameSource::remaining() const {
  if (cursor_ >= total_frames_) return 0;
  return (total_frames_ - cursor_ + stride_ - 1) / stride_;
}

std::vector<PickedFrame> SequentialFrameSource::NextBatch(int64_t want,
                                                          Rng* /*rng*/) {
  std::vector<PickedFrame> out;
  want = std::min(want, remaining());
  if (want <= 0) return out;
  out.reserve(static_cast<size_t>(want));
  for (int64_t b = 0; b < want; ++b) {
    PickedFrame pick;
    pick.frame = cursor_;
    cursor_ += stride_;
    out.push_back(pick);
  }
  return out;
}

// --------------------------------------------------------------- factory

bool ApplyStrategyName(const std::string& name, FrameSourceConfig* config) {
  if (name == "exsample") {
    config->strategy = Strategy::kExSample;
  } else if (name == "random") {
    config->strategy = Strategy::kRandom;
  } else if (name == "randomplus") {
    config->strategy = Strategy::kRandomPlus;
  } else if (name == "sequential") {
    config->strategy = Strategy::kSequential;
    config->sequential_stride = 30;  // every second at 30 fps
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<FrameSource> MakeFrameSource(
    const FrameSourceConfig& config, const video::VideoRepository& repo,
    const std::vector<video::Chunk>* chunks) {
  switch (config.strategy) {
    case Strategy::kExSample:
      return std::make_unique<ExSampleFrameSource>(chunks, config, &repo);
    case Strategy::kRandom:
      return std::make_unique<RandomFrameSource>(repo.total_frames());
    case Strategy::kRandomPlus:
      return std::make_unique<RandomPlusFrameSource>(repo.total_frames());
    case Strategy::kSequential:
      return std::make_unique<SequentialFrameSource>(
          repo.total_frames(), config.sequential_stride);
  }
  return nullptr;
}

}  // namespace core
}  // namespace exsample
