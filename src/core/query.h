// Query specification and result types for distinct-object limit queries
// ("find K distinct traffic lights", §II-B).

#ifndef EXSAMPLE_CORE_QUERY_H_
#define EXSAMPLE_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/predicate.h"
#include "detect/detection.h"
#include "video/types.h"

namespace exsample {
namespace core {

/// What to search for and when to stop.
struct QuerySpec {
  /// Object class searched for. Kept as the fast path / backward-compatible
  /// spelling of a single-class query; composite queries set `predicate`.
  detect::ClassId class_id = 0;
  /// The generalized query predicate (core/predicate.h). Default-constructed
  /// (empty classes) means "single class_id above" — see EffectivePredicate.
  /// Consumers that act on it: exec::ConfigurePredicateJob wires the matching
  /// detector/discriminator pair, serve::QuerySession routes kMultiClass to
  /// core::MultiClassEngine. The QueryEngine itself stays predicate-agnostic:
  /// class filtering lives in the detector, novelty in the discriminator, so
  /// the bandit's N1/n feedback is predicate-level for free.
  QueryPredicate predicate;
  /// Stop after this many distinct results (limit clause). Use a large
  /// value together with max_samples for recall-sweep experiments.
  int64_t result_limit = INT64_MAX;
  /// Hard cap on processed frames (0 = no cap beyond dataset size).
  int64_t max_samples = 0;
  /// Stop once the modeled cost (decode + inference seconds) exceeds this
  /// budget (0 = unlimited). The intro's "$1.5K GPU bill" scenario: cap the
  /// spend, keep whatever was found.
  double max_seconds = 0.0;
};

/// Step function: number of distinct results after each processed frame,
/// stored sparsely at its jump points.
class Trajectory {
 public:
  /// Records that after `samples` processed frames the distinct-result
  /// count became `count`. `samples` must be non-decreasing across calls.
  void Record(int64_t samples, int64_t count);

  /// Distinct results found after `samples` frames.
  int64_t CountAt(int64_t samples) const;

  /// Minimum frames processed to have found >= `count` results, or -1 if
  /// never reached.
  int64_t SamplesToReach(int64_t count) const;

  int64_t final_count() const {
    return points_.empty() ? 0 : points_.back().count;
  }
  int64_t total_samples() const { return total_samples_; }
  /// Marks the end of the run (so CountAt beyond the last jump is defined).
  void Finish(int64_t total_samples) { total_samples_ = total_samples; }

  struct Point {
    int64_t samples;
    int64_t count;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  int64_t total_samples_ = 0;
};

/// Outcome of one query run.
struct QueryResult {
  /// Detections reported as distinct results, in discovery order.
  std::vector<detect::Detection> results;
  /// Frames processed by the detector.
  int64_t frames_processed = 0;
  /// Simulated wall-clock seconds: decode + inference.
  double decode_seconds = 0.0;
  double inference_seconds = 0.0;
  /// Distinct results (as judged by the discriminator) vs frames processed.
  Trajectory reported;
  /// Distinct *true* instances found vs frames processed (simulation-only
  /// evaluation metric, requires detections carrying instance ids; false
  /// positives are excluded).
  Trajectory true_instances;

  double total_seconds() const { return decode_seconds + inference_seconds; }
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_QUERY_H_
