#include "core/availability_index.h"

namespace exsample {
namespace core {
namespace {

/// Index of the k-th set bit of `word`, k in [0, popcount(word)).
int SelectBitInWord(uint64_t word, int64_t k) {
  for (;;) {
    assert(word != 0);
    if (k == 0) return __builtin_ctzll(word);
    word &= word - 1;
    --k;
  }
}

}  // namespace

AvailabilityIndex::AvailabilityIndex(int64_t num_chunks, int32_t group_size)
    : num_chunks_(num_chunks),
      group_size_(group_size > 0 ? group_size
                                 : DefaultChunkGroupSize(num_chunks)),
      available_(num_chunks) {
  assert(num_chunks_ > 0);
  words_.assign(static_cast<size_t>((num_chunks_ + 63) >> 6), ~uint64_t{0});
  // Mask the tail bits of the last word so popcounts never overcount.
  const int tail = static_cast<int>(num_chunks_ & 63);
  if (tail != 0) words_.back() = (uint64_t{1} << tail) - 1;
  const int64_t groups = (num_chunks_ + group_size_ - 1) / group_size_;
  group_available_.resize(static_cast<size_t>(groups));
  for (int64_t g = 0; g < groups; ++g) {
    group_available_[static_cast<size_t>(g)] =
        GroupEnd(static_cast<int32_t>(g)) - g * group_size_;
  }
}

void AvailabilityIndex::Clear(video::ChunkId j) {
  assert(j >= 0 && j < num_chunks_);
  uint64_t& word = words_[static_cast<size_t>(j >> 6)];
  const uint64_t mask = uint64_t{1} << (j & 63);
  if ((word & mask) == 0) return;
  word &= ~mask;
  --available_;
  --group_available_[static_cast<size_t>(GroupOf(j))];
}

void AvailabilityIndex::Set(video::ChunkId j) {
  assert(j >= 0 && j < num_chunks_);
  uint64_t& word = words_[static_cast<size_t>(j >> 6)];
  const uint64_t mask = uint64_t{1} << (j & 63);
  if ((word & mask) != 0) return;
  word |= mask;
  ++available_;
  ++group_available_[static_cast<size_t>(GroupOf(j))];
}

video::ChunkId AvailabilityIndex::SelectNth(int64_t k) const {
  assert(k >= 0 && k < available_);
  // Skip whole groups by their maintained counts.
  int32_t g = 0;
  while (k >= group_available_[static_cast<size_t>(g)]) {
    k -= group_available_[static_cast<size_t>(g)];
    ++g;
  }
  // Skip whole words of the group by popcount, masking the partial words at
  // the group boundaries.
  const int64_t lo = static_cast<int64_t>(g) * group_size_;
  const int64_t hi = GroupEnd(g);
  for (int64_t base = lo & ~int64_t{63}; base < hi; base += 64) {
    uint64_t word = words_[static_cast<size_t>(base >> 6)];
    if (base < lo) word &= ~uint64_t{0} << (lo - base);
    if (hi - base < 64) word &= (uint64_t{1} << (hi - base)) - 1;
    const int64_t count = __builtin_popcountll(word);
    if (k < count) {
      return static_cast<video::ChunkId>(base + SelectBitInWord(word, k));
    }
    k -= count;
  }
  assert(false && "group count disagreed with word popcounts");
  return -1;
}

video::ChunkId AvailabilityIndex::FirstAvailableInGroup(int32_t g) const {
  assert(g >= 0 && g < num_groups());
  if (group_available_[static_cast<size_t>(g)] == 0) return -1;
  const int64_t lo = static_cast<int64_t>(g) * group_size_;
  const int64_t hi = GroupEnd(g);
  for (int64_t base = lo & ~int64_t{63}; base < hi; base += 64) {
    uint64_t word = words_[static_cast<size_t>(base >> 6)];
    if (base < lo) word &= ~uint64_t{0} << (lo - base);
    if (hi - base < 64) word &= (uint64_t{1} << (hi - base)) - 1;
    if (word != 0) {
      return static_cast<video::ChunkId>(base + __builtin_ctzll(word));
    }
  }
  assert(false && "non-zero group count but no set bit");
  return -1;
}

video::ChunkId AvailabilityIndex::NextAvailable(video::ChunkId from) const {
  if (from < 0) from = 0;
  if (from >= num_chunks_) return -1;
  size_t w = static_cast<size_t>(from >> 6);
  uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) {
      return static_cast<video::ChunkId>((static_cast<int64_t>(w) << 6) +
                                         __builtin_ctzll(word));
    }
    if (++w == words_.size()) return -1;
    word = words_[w];
  }
}

}  // namespace core
}  // namespace exsample
