#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

namespace exsample {
namespace core {

QueryEngine::QueryEngine(const video::VideoRepository* repo,
                         const std::vector<video::Chunk>* chunks,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator,
                         EngineConfig config, uint64_t seed)
    : QueryEngine(repo, MakeFrameSource(config, *repo, chunks), detector,
                  discriminator, config, seed) {}

QueryEngine::QueryEngine(const video::VideoRepository* repo,
                         std::unique_ptr<FrameSource> source,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator,
                         EngineConfig config, uint64_t seed)
    : repo_(repo),
      detector_(detector),
      discriminator_(discriminator),
      config_(config),
      rng_(seed),
      source_(std::move(source)) {
  assert(repo_ && detector_ && discriminator_ && source_);
  assert(config_.batch_size >= 1);
}

QueryResult QueryEngine::Run(const QuerySpec& spec) {
  QueryResult result;
  video::SimulatedDecoder decoder(repo_, config_.decode_model);
  std::unordered_set<detect::InstanceId> seen_instances;

  const int64_t max_samples =
      spec.max_samples > 0 ? spec.max_samples : repo_->total_frames();

  bool done = false;
  while (!done) {
    // 1) Ask the source for this (possibly batched) iteration's frames.
    const int64_t want = std::min<int64_t>(
        config_.batch_size, max_samples - result.frames_processed);
    if (want <= 0) break;
    std::vector<PickedFrame> batch = source_->NextBatch(want, &rng_);
    if (batch.empty()) break;

    // 2) Decode + detect + discriminate, 3) feed the verdict back.
    for (const PickedFrame& pick : batch) {
      result.decode_seconds += decoder.Read(pick.frame);
      std::vector<detect::Detection> dets = detector_->Detect(pick.frame);
      result.inference_seconds += detector_->InferenceSeconds();
      track::MatchResult match =
          discriminator_->GetMatches(pick.frame, dets);
      discriminator_->Add(pick.frame, dets);
      ++result.frames_processed;
      source_->OnFeedback(pick, match);

      if (!match.d0.empty()) {
        bool new_true_instance = false;
        for (const auto& d : match.d0) {
          result.results.push_back(d);
          if (d.instance != detect::kNoInstance &&
              seen_instances.insert(d.instance).second) {
            new_true_instance = true;
          }
        }
        result.reported.Record(result.frames_processed,
                               static_cast<int64_t>(result.results.size()));
        if (new_true_instance) {
          result.true_instances.Record(
              result.frames_processed,
              static_cast<int64_t>(seen_instances.size()));
        }
      }
      if (static_cast<int64_t>(result.results.size()) >= spec.result_limit ||
          result.frames_processed >= max_samples ||
          (spec.max_seconds > 0.0 &&
           result.total_seconds() >= spec.max_seconds)) {
        done = true;
        break;
      }
    }
  }
  result.reported.Finish(result.frames_processed);
  result.true_instances.Finish(result.frames_processed);
  return result;
}

}  // namespace core
}  // namespace exsample
