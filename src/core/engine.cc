#include "core/engine.h"

#include <cassert>

namespace exsample {
namespace core {

QueryEngine::QueryEngine(const video::VideoRepository* repo,
                         const std::vector<video::Chunk>* chunks,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator,
                         EngineConfig config, uint64_t seed)
    : repo_(repo),
      chunks_(chunks),
      detector_(detector),
      discriminator_(discriminator),
      config_(config),
      rng_(seed) {
  assert(repo_ && detector_ && discriminator_);
  assert(config_.batch_size >= 1);
  switch (config_.strategy) {
    case Strategy::kExSample: {
      assert(chunks_ != nullptr && !chunks_->empty());
      policy_ = MakePolicy(config_.policy, config_.belief);
      stats_ = std::make_unique<ChunkStats>(
          static_cast<int32_t>(chunks_->size()));
      chunk_samplers_.reserve(chunks_->size());
      for (const auto& chunk : *chunks_) {
        chunk_samplers_.push_back(
            video::MakeFrameSampler(config_.within_chunk, chunk.frames));
      }
      chunk_available_.assign(chunks_->size(), true);
      if (config_.credit == CreditMode::kFirstSightingChunk) {
        chunk_lookup_ = std::make_unique<video::ChunkLookup>(*chunks_);
      }
      break;
    }
    case Strategy::kRandom:
      flat_sampler_ = std::make_unique<video::UniformFrameSampler>(
          video::FrameRangeSet::Single(0, repo_->total_frames()));
      break;
    case Strategy::kRandomPlus:
      flat_sampler_ = std::make_unique<video::RandomPlusFrameSampler>(
          video::FrameRangeSet::Single(0, repo_->total_frames()));
      break;
    case Strategy::kSequential:
      assert(config_.sequential_stride >= 1);
      sequential_cursor_ = 0;
      break;
  }
}

video::FrameId QueryEngine::NextFrame(video::ChunkId* picked_chunk) {
  *picked_chunk = -1;
  switch (config_.strategy) {
    case Strategy::kExSample: {
      bool any = false;
      for (bool a : chunk_available_) any = any || a;
      if (!any) return -1;
      video::ChunkId j = policy_->Pick(*stats_, chunk_available_, &rng_);
      auto& sampler = chunk_samplers_[static_cast<size_t>(j)];
      assert(!sampler->exhausted());
      video::FrameId frame = sampler->Next(&rng_);
      if (sampler->exhausted()) {
        chunk_available_[static_cast<size_t>(j)] = false;
      }
      *picked_chunk = j;
      return frame;
    }
    case Strategy::kRandom:
    case Strategy::kRandomPlus: {
      if (flat_sampler_->exhausted()) return -1;
      return flat_sampler_->Next(&rng_);
    }
    case Strategy::kSequential: {
      if (sequential_cursor_ >= repo_->total_frames()) return -1;
      video::FrameId frame = sequential_cursor_;
      sequential_cursor_ += config_.sequential_stride;
      return frame;
    }
  }
  return -1;
}

QueryResult QueryEngine::Run(const QuerySpec& spec) {
  QueryResult result;
  video::SimulatedDecoder decoder(repo_, config_.decode_model);
  std::unordered_set<detect::InstanceId> seen_instances;

  const int64_t max_samples =
      spec.max_samples > 0 ? spec.max_samples : repo_->total_frames();

  bool done = false;
  while (!done) {
    // 1) Choose the frames for this (possibly batched) iteration.
    struct Picked {
      video::FrameId frame;
      video::ChunkId chunk;
    };
    std::vector<Picked> batch;
    const int64_t want = std::min<int64_t>(
        config_.batch_size, max_samples - result.frames_processed);
    if (want <= 0) break;
    if (config_.strategy == Strategy::kExSample && config_.batch_size > 1) {
      // Batched Thompson: draw B chunk indices from the current beliefs,
      // then one frame from each (chunks can run dry mid-batch).
      for (int64_t b = 0; b < want; ++b) {
        bool any = false;
        for (bool a : chunk_available_) any = any || a;
        if (!any) break;
        video::ChunkId j = policy_->Pick(*stats_, chunk_available_, &rng_);
        auto& sampler = chunk_samplers_[static_cast<size_t>(j)];
        video::FrameId frame = sampler->Next(&rng_);
        if (sampler->exhausted()) {
          chunk_available_[static_cast<size_t>(j)] = false;
        }
        batch.push_back(Picked{frame, j});
      }
    } else {
      for (int64_t b = 0; b < want; ++b) {
        video::ChunkId chunk;
        video::FrameId frame = NextFrame(&chunk);
        if (frame < 0) break;
        batch.push_back(Picked{frame, chunk});
      }
    }
    if (batch.empty()) break;

    // 2) Decode + detect + discriminate, 3) update state.
    for (const Picked& pick : batch) {
      result.decode_seconds += decoder.Read(pick.frame);
      std::vector<detect::Detection> dets = detector_->Detect(pick.frame);
      result.inference_seconds += detector_->InferenceSeconds();
      track::MatchResult match =
          discriminator_->GetMatches(pick.frame, dets);
      discriminator_->Add(pick.frame, dets);
      ++result.frames_processed;

      if (config_.strategy == Strategy::kExSample) {
        if (config_.credit == CreditMode::kFirstSightingChunk) {
          std::vector<video::ChunkId> d1_chunks;
          d1_chunks.reserve(match.d1_first_frames.size());
          for (video::FrameId f : match.d1_first_frames) {
            video::ChunkId c = chunk_lookup_->Find(f);
            assert(c >= 0);
            d1_chunks.push_back(c);
          }
          stats_->UpdateSplit(pick.chunk,
                              static_cast<int64_t>(match.d0.size()),
                              d1_chunks);
        } else {
          stats_->Update(pick.chunk, static_cast<int64_t>(match.d0.size()),
                         match.num_d1);
        }
      }
      if (!match.d0.empty()) {
        bool new_true_instance = false;
        for (const auto& d : match.d0) {
          result.results.push_back(d);
          if (d.instance != detect::kNoInstance &&
              seen_instances.insert(d.instance).second) {
            new_true_instance = true;
          }
        }
        result.reported.Record(result.frames_processed,
                               static_cast<int64_t>(result.results.size()));
        if (new_true_instance) {
          result.true_instances.Record(
              result.frames_processed,
              static_cast<int64_t>(seen_instances.size()));
        }
      }
      if (static_cast<int64_t>(result.results.size()) >= spec.result_limit ||
          result.frames_processed >= max_samples ||
          (spec.max_seconds > 0.0 &&
           result.total_seconds() >= spec.max_seconds)) {
        done = true;
        break;
      }
    }
  }
  result.reported.Finish(result.frames_processed);
  result.true_instances.Finish(result.frames_processed);
  return result;
}

}  // namespace core
}  // namespace exsample
