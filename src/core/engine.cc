#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <utility>

namespace exsample {
namespace core {

const char* StepDoneName(StepStatus::Done done) {
  switch (done) {
    case StepStatus::Done::kRunning:
      return "running";
    case StepStatus::Done::kLimitReached:
      return "limit";
    case StepStatus::Done::kSamplesExhausted:
      return "max_samples";
    case StepStatus::Done::kBudgetExhausted:
      return "budget";
    case StepStatus::Done::kSourceExhausted:
      return "exhausted";
    case StepStatus::Done::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

QueryEngine::QueryEngine(const video::VideoRepository* repo,
                         const std::vector<video::Chunk>* chunks,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator,
                         EngineConfig config, uint64_t seed)
    : QueryEngine(repo, MakeFrameSource(config, *repo, chunks), detector,
                  discriminator, config, seed) {}

QueryEngine::QueryEngine(const video::VideoRepository* repo,
                         std::unique_ptr<FrameSource> source,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator,
                         EngineConfig config, uint64_t seed)
    : repo_(repo),
      detector_(detector),
      discriminator_(discriminator),
      config_(config),
      rng_(seed),
      source_(std::move(source)) {
  assert(repo_ && detector_ && discriminator_ && source_);
  assert(config_.batch_size >= 1);
}

QueryEngine::~QueryEngine() {
  // A run torn down mid-batch must release the executor's claim on the
  // batch before the decoder (owned by run_) goes away.
  if (run_ != nullptr && run_->executor_batch_open && executor_ != nullptr) {
    executor_->Abort();
  }
}

QueryResult QueryEngine::Run(const QuerySpec& spec) {
  Begin(spec);
  Step(std::numeric_limits<int64_t>::max());
  return TakeResult();
}

void QueryEngine::Begin(const QuerySpec& spec) {
  assert(run_ == nullptr && "Begin() called on an already-open run");
  run_ = std::make_unique<RunState>(repo_, config_.decode_model);
  run_->decoder.set_decode_cache(config_.decode_cache);
  run_->spec = spec;
  run_->max_samples =
      spec.max_samples > 0 ? spec.max_samples : repo_->total_frames();
}

StepStatus QueryEngine::Step(int64_t max_frames) {
  assert(run_ != nullptr && "Step() requires Begin()");
  RunState& run = *run_;
  QueryResult& result = run.result;
  StepStatus status;
  const int64_t results_before = static_cast<int64_t>(result.results.size());

  while (run.done == StepStatus::Done::kRunning &&
         status.frames_this_step < max_frames) {
    // 1) Refill the pending buffer with one source batch when drained. The
    // request size depends only on config and cumulative progress — never on
    // the slice size — which is what keeps sliced execution bit-identical
    // to a one-shot Run.
    if (run.pending_next >= run.pending.size()) {
      run.pending.clear();
      run.pending_next = 0;
      // GOP-run sources need room for at least one whole run per request;
      // with gop_run_frames == 1 this is exactly the classic batch size.
      const int64_t batch_want =
          std::max<int64_t>(config_.batch_size, config_.gop_run_frames);
      const int64_t want = std::min<int64_t>(
          batch_want, run.max_samples - result.frames_processed);
      if (want <= 0) {
        run.done = StepStatus::Done::kSamplesExhausted;
        break;
      }
      if (metrics_.pick_seconds != nullptr) {
        const auto pick_start = std::chrono::steady_clock::now();
        run.pending = source_->NextBatch(want, &rng_);
        metrics_.pick_seconds->Observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          pick_start)
                .count(),
            metrics_cell_);
      } else {
        run.pending = source_->NextBatch(want, &rng_);
      }
      if (metrics_.pick_batches != nullptr) {
        metrics_.pick_batches->Add(1, metrics_cell_);
      }
      if (run.pending.empty()) {
        run.done = StepStatus::Done::kSourceExhausted;
        break;
      }
      if (metrics_.picks_by_policy != nullptr &&
          config_.strategy == Strategy::kExSample) {
        metrics_.picks_by_policy->Add(
            static_cast<int64_t>(run.pending.size()),
            static_cast<size_t>(config_.policy));
      }
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEvent::Kind::kPick, /*frame=*/-1,
                       run.pending.front().chunk,
                       static_cast<double>(run.pending.size()));
      }
      if (executor_ != nullptr) {
        executor_->BeginBatch(run.pending, &run.decoder);
        run.executor_batch_open = true;
      }
    }

    // 2) Decode + detect + discriminate, 3) feed cost + verdict back. With
    // an executor, decode + detect already ran (or are running) ahead;
    // Await hands back this pick's work. Either way the discriminate /
    // feedback / termination sequence below is identical — that, plus
    // BeginBatch consuming the same NextBatch results, is the determinism
    // argument (see ARCHITECTURE.md "Pipelined execution").
    const size_t pick_index = run.pending_next;
    const PickedFrame pick = run.pending[run.pending_next++];
    double decode_cost;
    double inference_cost;
    std::vector<detect::Detection> dets;
    if (executor_ != nullptr) {
      FrameWork work = executor_->Await(pick_index);
      decode_cost = work.decode_seconds;
      inference_cost = work.inference_seconds;
      dets = std::move(work.detections);
      if (run.pending_next >= run.pending.size()) {
        run.executor_batch_open = false;  // batch fully consumed
      }
    } else {
      decode_cost = run.decoder.Read(pick.frame);
      dets = detector_->Detect(pick.frame);
      inference_cost = detector_->InferenceSeconds();
    }
    result.decode_seconds += decode_cost;
    result.inference_seconds += inference_cost;
    track::MatchResult match = discriminator_->GetMatches(pick.frame, dets);
    discriminator_->Add(pick.frame, dets);
    ++result.frames_processed;
    ++status.frames_this_step;
    source_->OnFrameCost(pick, decode_cost + inference_cost);
    source_->OnFeedback(pick, match);
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent::Kind::kFrame, pick.frame, pick.chunk,
                     decode_cost + inference_cost);
      if (!match.d0.empty()) {
        trace_->Record(obs::TraceEvent::Kind::kHit, pick.frame, pick.chunk,
                       static_cast<double>(match.d0.size()));
      }
    }

    if (!match.d0.empty()) {
      bool new_true_instance = false;
      for (const auto& d : match.d0) {
        result.results.push_back(d);
        if (d.instance != detect::kNoInstance &&
            run.seen_instances.insert(d.instance).second) {
          new_true_instance = true;
        }
      }
      result.reported.Record(result.frames_processed,
                             static_cast<int64_t>(result.results.size()));
      if (new_true_instance) {
        result.true_instances.Record(
            result.frames_processed,
            static_cast<int64_t>(run.seen_instances.size()));
      }
    }
    if (static_cast<int64_t>(result.results.size()) >= run.spec.result_limit) {
      run.done = StepStatus::Done::kLimitReached;
    } else if (result.frames_processed >= run.max_samples) {
      run.done = StepStatus::Done::kSamplesExhausted;
    } else if (run.spec.max_seconds > 0.0 &&
               result.total_seconds() >= run.spec.max_seconds) {
      run.done = StepStatus::Done::kBudgetExhausted;
    }
    if (run.done != StepStatus::Done::kRunning) {
      // Mirror Run's mid-batch break: unprocessed picks are discarded.
      if (run.executor_batch_open) {
        executor_->Abort();
        run.executor_batch_open = false;
      }
      run.pending.clear();
      run.pending_next = 0;
    }
  }

  if (run.done != StepStatus::Done::kRunning) {
    result.reported.Finish(result.frames_processed);
    result.true_instances.Finish(result.frames_processed);
  }
  status.results_this_step =
      static_cast<int64_t>(result.results.size()) - results_before;
  status.frames_processed = result.frames_processed;
  status.total_results = static_cast<int64_t>(result.results.size());
  status.cost_seconds = result.total_seconds();
  status.done = run.done;
  // Fold the slice's deltas into the metric sinks: one relaxed add per
  // family per Step keeps the per-frame loop clean of atomics.
  if (metrics_.frames_sampled != nullptr && status.frames_this_step > 0) {
    metrics_.frames_sampled->Add(status.frames_this_step, metrics_cell_);
  }
  if (metrics_.results_found != nullptr && status.results_this_step > 0) {
    metrics_.results_found->Add(status.results_this_step, metrics_cell_);
  }
  if (metrics_.cost_per_frame_micros != nullptr &&
      status.frames_processed > 0) {
    metrics_.cost_per_frame_micros->Set(
        static_cast<int64_t>(1e6 * status.cost_seconds /
                             static_cast<double>(status.frames_processed)),
        metrics_cell_);
  }
  return status;
}

const QueryResult& QueryEngine::result() const {
  assert(run_ != nullptr && "result() requires an open run");
  return run_->result;
}

QueryResult QueryEngine::TakeResult() {
  assert(run_ != nullptr && "TakeResult() requires an open run");
  if (run_->executor_batch_open && executor_ != nullptr) {
    executor_->Abort();  // cancel mid-batch: drop undelivered work
    run_->executor_batch_open = false;
  }
  if (run_->done == StepStatus::Done::kRunning) {
    run_->done = StepStatus::Done::kCancelled;
    run_->result.reported.Finish(run_->result.frames_processed);
    run_->result.true_instances.Finish(run_->result.frames_processed);
  }
  QueryResult out = std::move(run_->result);
  run_.reset();
  return out;
}

}  // namespace core
}  // namespace exsample
