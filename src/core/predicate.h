// QueryPredicate: the generalized query model (ROADMAP item 2).
//
// The paper's workload is "find k distinct instances of one class" (§II-B);
// this header opens it to a small closed hierarchy of composite predicates
// while keeping the single-class case the degenerate — and bit-identical —
// member of the family:
//
//  * SingleClass(A)          — the classic query.
//  * Conjunction{classes}    — "A AND B in the same frame": a result is a
//                              new distinct object of the result class
//                              observed in a frame where every other
//                              constituent class is also detected.
//  * Sequence{A, B, within}  — "A then B within t seconds": a result is a
//                              new distinct B observed at frame f with A
//                              observed somewhere in [f - within, f] of
//                              video time (built on track::Discriminator
//                              state; see track/predicate_discriminator.h).
//  * MultiClass{classes}     — N independent single-class result sets
//                              sharing one decode stream (see
//                              core/multi_engine.h).
//
// Every predicate has a canonical serialized key — "c3", "and(c1,c3)",
// "seq(c1,c3,w=2.5)", "multi(c1,c3)" — used everywhere a class id is used
// today: StatsCache warm-start rows, wire forms, tool output. The *result
// class* of a predicate (the class whose new distinct objects count as
// results) is the last class in canonical order.

#ifndef EXSAMPLE_CORE_PREDICATE_H_
#define EXSAMPLE_CORE_PREDICATE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "detect/detection.h"
#include "util/json.h"
#include "util/status.h"

namespace exsample {
namespace core {

enum class PredicateKind {
  kSingleClass,
  kConjunction,
  kSequence,
  kMultiClass,
};

/// Wire name of a kind: "single" | "and" | "seq" | "multi".
const char* PredicateKindName(PredicateKind kind);
/// Inverse of PredicateKindName; false on unknown names.
bool ParsePredicateKindName(const std::string& name, PredicateKind* kind);

/// Sequence window sentinel: "any earlier sampled frame qualifies".
inline constexpr double kUnboundedWindow =
    std::numeric_limits<double>::infinity();

/// A query predicate over object classes. Fields are only meaningful after
/// NormalizePredicate + ValidatePredicate (construction helpers below
/// normalize for you).
struct QueryPredicate {
  PredicateKind kind = PredicateKind::kSingleClass;
  /// Constituent classes in canonical order: sorted + deduped for
  /// kConjunction / kMultiClass, the (A, B) order for kSequence, exactly
  /// one entry for kSingleClass. Empty means "unset" — resolved from
  /// QuerySpec::class_id for backward compatibility (see EffectivePredicate).
  std::vector<detect::ClassId> classes;
  /// kSequence only: window in video seconds (kUnboundedWindow = no bound).
  double within_seconds = kUnboundedWindow;

  static QueryPredicate Single(detect::ClassId cls);
  static QueryPredicate And(std::vector<detect::ClassId> classes);
  static QueryPredicate Seq(detect::ClassId first, detect::ClassId then,
                            double within = kUnboundedWindow);
  static QueryPredicate Multi(std::vector<detect::ClassId> classes);

  bool is_single() const { return kind == PredicateKind::kSingleClass; }
  bool is_composite() const { return kind != PredicateKind::kSingleClass; }
  /// The class whose new distinct objects are the predicate's results: the
  /// last class in canonical order. Requires !classes.empty().
  detect::ClassId result_class() const { return classes.back(); }

  bool operator==(const QueryPredicate& other) const;
  bool operator!=(const QueryPredicate& other) const {
    return !(*this == other);
  }
};

/// Canonicalizes a predicate: sorts + dedups classes for kConjunction /
/// kMultiClass and collapses degenerate composites onto the single-class
/// form — Conjunction(A, A) IS SingleClass(A), structurally, which is what
/// makes the equivalence property hold bit for bit.
QueryPredicate NormalizePredicate(QueryPredicate pred);

/// Structural invariants of a normalized predicate (class counts per kind,
/// positive window, non-negative ids). InvalidArgument with a specific
/// message on violation.
Status ValidatePredicate(const QueryPredicate& pred);

/// The predicate QuerySpec-level consumers should act on: `pred` itself
/// when its classes are set, else SingleClass(`fallback_class`) — the
/// backward-compatible reading of a spec that only set class_id.
QueryPredicate EffectivePredicate(const QueryPredicate& pred,
                                  detect::ClassId fallback_class);

/// Canonical whitespace-free key: "c<id>", "and(c1,c3)",
/// "seq(c1,c3,w=<seconds|inf>)", "multi(c1,c3)". Keys of normalized
/// predicates are unique and stable, so they serve as StatsCache row keys
/// and as the compact wire/tool spelling.
std::string PredicateKey(const QueryPredicate& pred);

/// Inverse of PredicateKey. Rejects anything that does not re-serialize to
/// the input byte for byte (the canonical-form check), so a cache file key
/// is either the canonical spelling or invalid.
Result<QueryPredicate> ParsePredicateKey(const std::string& key);

/// Transport form of a predicate before class names are resolved against a
/// dataset: the {"kind": "and", "classes": ["car", "person"],
/// "within_seconds": 2.0} JSON shape carried by the serve protocol and
/// dist.open. Structural validation happens at parse time — before any
/// dataset is generated; name resolution is the dataset owner's job.
struct PredicateRequest {
  PredicateKind kind = PredicateKind::kSingleClass;
  std::vector<std::string> class_names;
  double within_seconds = kUnboundedWindow;

  bool is_composite() const { return kind != PredicateKind::kSingleClass; }
};

/// Parses and structurally validates a predicate JSON object. Unknown
/// kinds, missing/empty/mistyped "classes", wrong class counts for the
/// kind, and non-positive "within_seconds" are all InvalidArgument —
/// malformed predicates must never fall back to single-class silently.
Result<PredicateRequest> ParsePredicateJson(const Json& json);

/// The JSON form ParsePredicateJson accepts ("within_seconds" emitted only
/// for bounded sequences).
Json PredicateRequestJson(const PredicateRequest& request);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_PREDICATE_H_
