// AvailabilityIndex: which chunks still have unsampled frames, at
// repository scale.
//
// The naive representation (std::vector<bool> re-scanned per draw) makes
// every uniform draw and every "is anything left?" check O(num_chunks) —
// fine for the paper's hundreds of chunks, fatal for city-scale
// repositories of 10^5..10^7 chunks. This index keeps the same set in a
// 64-bit-word bitset plus per-group available counts, giving
//
//   * O(1) membership tests and clears,
//   * popcount-based uniform draws (SelectNth) that skip whole groups and
//     whole words instead of testing every chunk,
//   * O(words) ordered iteration over the available set, visiting only
//     set bits (ForEachAvailable / ForEachAvailableInGroup),
//   * O(1) per-group emptiness checks, the primitive the hierarchical
//     policies use to skip exhausted groups without touching their chunks.
//
// Groups are fixed-size runs of `group_size` consecutive chunks (the last
// group may be shorter). The same group size is shared with ChunkStats'
// group-level aggregates so group g means the same chunk range in both
// structures.

#ifndef EXSAMPLE_CORE_AVAILABILITY_INDEX_H_
#define EXSAMPLE_CORE_AVAILABILITY_INDEX_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "video/types.h"

namespace exsample {
namespace core {

/// Deterministic default group size: ~sqrt(num_chunks), clamped to
/// [16, 4096]. sqrt balances the hierarchical policies' two passes
/// (O(num_chunks / G) groups + O(G) chunks within the winner); the clamps
/// keep groups meaningful for tiny repositories and cache-sized for huge
/// ones. Integer arithmetic only, so every platform picks the same size
/// (the pinned hier_* determinism fingerprints depend on it).
inline int32_t DefaultChunkGroupSize(int64_t num_chunks) {
  assert(num_chunks > 0);
  int64_t g = 1;
  while (g * g < num_chunks) ++g;  // ceil(sqrt), exact
  if (g < 16) g = 16;
  if (g > 4096) g = 4096;
  return static_cast<int32_t>(g);
}

/// Bitset of available chunks with per-group counts. All chunks start
/// available; sampling only ever removes (a chunk with no frames left never
/// regains frames within a query), but Set() is provided for tests and
/// reuse.
class AvailabilityIndex {
 public:
  /// All `num_chunks` chunks available. `group_size` 0 selects
  /// DefaultChunkGroupSize(num_chunks).
  explicit AvailabilityIndex(int64_t num_chunks, int32_t group_size = 0);

  int64_t size() const { return num_chunks_; }
  int32_t group_size() const { return group_size_; }
  int32_t num_groups() const {
    return static_cast<int32_t>(group_available_.size());
  }
  /// Group containing chunk j.
  int32_t GroupOf(video::ChunkId j) const {
    return static_cast<int32_t>(j / group_size_);
  }

  /// Chunks currently available (maintained, O(1)).
  int64_t available() const { return available_; }
  bool empty() const { return available_ == 0; }

  bool Test(video::ChunkId j) const {
    assert(j >= 0 && j < num_chunks_);
    return (words_[static_cast<size_t>(j >> 6)] >> (j & 63)) & 1;
  }

  /// Marks chunk j unavailable. O(1); no-op when already cleared.
  void Clear(video::ChunkId j);

  /// Marks chunk j available again. O(1); no-op when already set.
  void Set(video::ChunkId j);

  /// Available chunks in group g, O(1).
  int64_t GroupAvailable(int32_t g) const {
    assert(g >= 0 && g < num_groups());
    return group_available_[static_cast<size_t>(g)];
  }

  /// k-th available chunk in ascending order, k in [0, available()).
  /// Skips empty groups by their counts, then full words by popcount —
  /// O(num_groups + group_size/64) instead of O(num_chunks).
  video::ChunkId SelectNth(int64_t k) const;

  /// Lowest-id available chunk in group g, or -1 when the group is empty.
  /// Not on the current policies' hot path (they iterate whole groups via
  /// ForEachAvailableInGroup); kept as index API for greedy-within-group
  /// strategies and direct reuse.
  video::ChunkId FirstAvailableInGroup(int32_t g) const;

  /// Lowest-id available chunk >= from, or -1 when none remains. Same
  /// status as FirstAvailableInGroup: index API for reuse, not currently
  /// a policy hot path.
  video::ChunkId NextAvailable(video::ChunkId from) const;

  /// Calls fn(ChunkId) for every available chunk in ascending order. The
  /// flat policies iterate through this so their visit order (and therefore
  /// their RNG draw sequence) is identical to scanning a vector<bool> in
  /// index order — only faster, because cleared words are skipped wholesale.
  template <typename Fn>
  void ForEachAvailable(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<video::ChunkId>((w << 6) + static_cast<size_t>(bit)));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// Calls fn(ChunkId) for every available chunk of group g, ascending.
  template <typename Fn>
  void ForEachAvailableInGroup(int32_t g, Fn&& fn) const {
    assert(g >= 0 && g < num_groups());
    const int64_t lo = static_cast<int64_t>(g) * group_size_;
    const int64_t hi = GroupEnd(g);
    for (int64_t base = lo & ~int64_t{63}; base < hi; base += 64) {
      uint64_t word = words_[static_cast<size_t>(base >> 6)];
      if (base < lo) word &= ~uint64_t{0} << (lo - base);
      if (hi - base < 64) word &= (uint64_t{1} << (hi - base)) - 1;
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<video::ChunkId>(base + bit));
        word &= word - 1;
      }
    }
  }

 private:
  /// One past the last chunk of group g.
  int64_t GroupEnd(int32_t g) const {
    const int64_t end = (static_cast<int64_t>(g) + 1) * group_size_;
    return end < num_chunks_ ? end : num_chunks_;
  }

  int64_t num_chunks_;
  int32_t group_size_;
  int64_t available_;
  std::vector<uint64_t> words_;
  std::vector<int64_t> group_available_;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_AVAILABILITY_INDEX_H_
