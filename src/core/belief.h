// The Gamma belief distribution over the per-chunk future-reward R_j
// (Eq III.4 of the paper):
//
//     R_j(n_j + 1)  ~  Gamma(alpha = N1_j + alpha0,  beta = n_j + beta0)
//
// Its mean N1_j/n_j matches the point estimate (Eq III.1) and its variance
// N1_j/n_j^2 matches the variance bound (Eq III.3). alpha0/beta0 keep the
// distribution proper when N1 = 0 (cold start, rare objects, exhausted
// chunks); the paper uses alpha0 = 0.1, beta0 = 1.

#ifndef EXSAMPLE_CORE_BELIEF_H_
#define EXSAMPLE_CORE_BELIEF_H_

#include <cstdint>

#include "util/rng.h"

namespace exsample {
namespace core {

/// Prior/smoothing parameters of the Gamma belief.
struct BeliefParams {
  double alpha0 = 0.1;
  double beta0 = 1.0;
};

/// Stateless helper evaluating the belief for given (N1, n) statistics.
class GammaBelief {
 public:
  explicit GammaBelief(BeliefParams params = {});

  /// Draws one Thompson sample from Gamma(N1 + alpha0, n + beta0).
  double Sample(int64_t n1, int64_t n, Rng* rng) const;

  /// Posterior mean (N1 + alpha0) / (n + beta0).
  double Mean(int64_t n1, int64_t n) const;

  /// Upper quantile of the belief, used by Bayes-UCB.
  double Quantile(int64_t n1, int64_t n, double q) const;

  const BeliefParams& params() const { return params_; }

 private:
  BeliefParams params_;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_BELIEF_H_
