#include "core/query.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace core {

void Trajectory::Record(int64_t samples, int64_t count) {
  assert(samples >= 0);
  if (!points_.empty()) {
    assert(samples >= points_.back().samples);
    if (samples == points_.back().samples) {
      points_.back().count = count;
      return;
    }
  }
  points_.push_back(Point{samples, count});
  if (samples > total_samples_) total_samples_ = samples;
}

int64_t Trajectory::CountAt(int64_t samples) const {
  // Last recorded point with point.samples <= samples.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), samples,
      [](int64_t s, const Point& p) { return s < p.samples; });
  if (it == points_.begin()) return 0;
  return (it - 1)->count;
}

int64_t Trajectory::SamplesToReach(int64_t count) const {
  if (count <= 0) return 0;
  for (const auto& p : points_) {
    if (p.count >= count) return p.samples;
  }
  return -1;
}

}  // namespace core
}  // namespace exsample
