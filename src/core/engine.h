// QueryEngine: the Algorithm 1 driver loop.
//
// Frame selection lives behind core::FrameSource (see frame_source.h); the
// engine only owns the per-frame pipeline: pick -> decode (cost model) ->
// detect -> discriminate -> feed the verdict back to the source, and
// records the distinct-results trajectory for evaluation.

#ifndef EXSAMPLE_CORE_ENGINE_H_
#define EXSAMPLE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/frame_source.h"
#include "core/query.h"
#include "detect/detector.h"
#include "track/discriminator.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/decoder.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// Engine configuration: the frame-source choice plus loop-level knobs.
struct EngineConfig : FrameSourceConfig {
  /// Frames processed per batched iteration (§III-F); 1 = unbatched.
  int32_t batch_size = 1;
  /// Simulate decode costs (adds decoder latency to the time accounting).
  video::DecodeCostModel decode_model;
};

/// Runs distinct-object queries against one dataset.
///
/// The detector and discriminator are owned by the caller and must outlive
/// the engine. A fresh engine (or at least a fresh discriminator and frame
/// source) should be used per query run.
class QueryEngine {
 public:
  /// Builds the frame source described by `config` (the common path).
  /// `chunks` is required for Strategy::kExSample, ignored otherwise.
  QueryEngine(const video::VideoRepository* repo,
              const std::vector<video::Chunk>* chunks,
              detect::ObjectDetector* detector,
              track::Discriminator* discriminator, EngineConfig config,
              uint64_t seed);

  /// Drives a caller-supplied source (custom strategies plug in here);
  /// config.strategy and the other FrameSourceConfig fields are ignored.
  QueryEngine(const video::VideoRepository* repo,
              std::unique_ptr<FrameSource> source,
              detect::ObjectDetector* detector,
              track::Discriminator* discriminator, EngineConfig config,
              uint64_t seed);

  /// Executes the query to completion (limit reached, max_samples reached,
  /// or repository exhausted).
  QueryResult Run(const QuerySpec& spec);

  /// The frame source driving this engine.
  const FrameSource& frame_source() const { return *source_; }

  /// Per-chunk statistics after the run (sources that keep them only).
  const ChunkStats* chunk_stats() const { return source_->chunk_stats(); }

 private:
  const video::VideoRepository* repo_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  EngineConfig config_;
  Rng rng_;
  std::unique_ptr<FrameSource> source_;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_ENGINE_H_
