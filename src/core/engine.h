// QueryEngine: the Algorithm 1 driver loop.
//
// Frame selection lives behind core::FrameSource (see frame_source.h); the
// engine only owns the per-frame pipeline: pick -> decode (cost model) ->
// detect -> discriminate -> feed the verdict back to the source, and
// records the distinct-results trajectory for evaluation.
//
// Execution is incremental: Begin() opens a run, Step(max_frames) advances
// it by a bounded slice, TakeResult() closes it. Run() is the one-shot
// convenience built on top. Slicing never changes the outcome: the engine
// buffers source batches internally so the NextBatch call sequence — and
// therefore every RNG draw — is identical for any sequence of slice sizes
// (the anytime/serving layer in src/serve depends on this).

#ifndef EXSAMPLE_CORE_ENGINE_H_
#define EXSAMPLE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/frame_source.h"
#include "core/query.h"
#include "detect/detector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "track/discriminator.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/decoder.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// Optional metric sinks for the engine loop (all non-owning; any pointer
/// may be null to disable that family). The engine folds slice-level deltas
/// into them — one relaxed atomic add per Step for the counters, one
/// clocked NextBatch per refill for the pick histogram — and never touches
/// its RNG on behalf of a sink, so instrumented runs are bit-identical to
/// bare ones.
struct EngineMetrics {
  /// Frames processed (added once per Step with the slice's delta).
  obs::Counter* frames_sampled = nullptr;
  /// Discriminator d0 verdicts reported (same cadence).
  obs::Counter* results_found = nullptr;
  /// FrameSource::NextBatch calls.
  obs::Counter* pick_batches = nullptr;
  /// Wall time of each NextBatch call (the bandit's pick latency).
  obs::LatencyHistogram* pick_seconds = nullptr;
  /// Frames picked, celled by PolicyKind (cell = static_cast<size_t>(kind));
  /// only recorded for Strategy::kExSample sources.
  obs::Counter* picks_by_policy = nullptr;
  /// Snapshot of the run's modeled cost per frame in microseconds (the
  /// engine-side view of the EWMA cost estimates), set once per Step.
  obs::Gauge* cost_per_frame_micros = nullptr;
};

/// Decoded + detected outcome of one pick, as produced by a BatchExecutor.
/// The costs are the modeled charges the engine folds into the run's
/// accounting (QueryResult::decode_seconds / inference_seconds and the
/// OnFrameCost feedback), not wall-clock measurements.
struct FrameWork {
  double decode_seconds = 0.0;
  double inference_seconds = 0.0;
  std::vector<detect::Detection> detections;
};

/// Executes one pick batch's decode + detect work on the engine's behalf
/// (see exec::Pipeline for the async decode-ahead implementation). The
/// engine calls BeginBatch once per source refill with the whole pending
/// batch and the run's decoder, then Await(i) for i = 0..n-1 in pick order;
/// feedback ordering and every RNG draw stay exactly as in the serial path.
/// Abort() ends an open batch early (result limit hit mid-batch, cancel,
/// engine teardown); it must be safe to call at any point and must return
/// only when the executor holds no reference to the batch.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;

  /// Opens a batch: `picks` are the engine's pending frames in pick order;
  /// `decoder` is the run's stateful decoder, to be used only inside this
  /// call (cost replay happens here, on the engine thread, so decode
  /// accounting is deterministic for any executor concurrency).
  virtual void BeginBatch(const std::vector<PickedFrame>& picks,
                          video::SimulatedDecoder* decoder) = 0;

  /// Blocks until pick `pick_index` of the open batch is decoded and
  /// detected, and returns its work. Called in pick order.
  virtual FrameWork Await(size_t pick_index) = 0;

  /// Discards the rest of the open batch. No-op without one.
  virtual void Abort() = 0;
};

/// Engine configuration: the frame-source choice plus loop-level knobs.
struct EngineConfig : FrameSourceConfig {
  /// Frames processed per batched iteration (§III-F); 1 = unbatched.
  int32_t batch_size = 1;
  /// Simulate decode costs (adds decoder latency to the time accounting).
  video::DecodeCostModel decode_model;
  /// Shared decode stream for multi-class sessions (non-owning, may be
  /// null): attached to the run's decoder at Begin so constituent queries
  /// read each other's decoded frames at zero modeled cost (see
  /// core/multi_engine.h). Null leaves decode behavior bit-identical to a
  /// cacheless run. Must outlive the engine's runs.
  video::SharedDecodeCache* decode_cache = nullptr;
};

/// Progress report for one incremental slice (see QueryEngine::Step).
struct StepStatus {
  /// Why the run is over; kRunning while it is not.
  enum class Done {
    kRunning,           ///< more work remains
    kLimitReached,      ///< spec.result_limit distinct results found
    kSamplesExhausted,  ///< spec.max_samples frames processed
    kBudgetExhausted,   ///< spec.max_seconds of modeled cost spent
    kSourceExhausted,   ///< the frame source ran dry
    kCancelled,         ///< TakeResult() ended an unfinished run
  };

  /// Frames processed by this slice (may be less than requested when the
  /// run terminates mid-slice).
  int64_t frames_this_step = 0;
  /// Results reported during this slice (the discriminator's d0 verdicts;
  /// an imperfect discriminator may report the same object more than once,
  /// exactly as QueryResult::results counts them).
  int64_t results_this_step = 0;
  /// Cumulative counters since Begin().
  int64_t frames_processed = 0;
  int64_t total_results = 0;
  /// Cumulative modeled cost (decode + inference seconds) since Begin().
  double cost_seconds = 0.0;
  Done done = Done::kRunning;

  bool running() const { return done == Done::kRunning; }
};

/// Human-readable name for a termination reason ("running", "limit", ...).
const char* StepDoneName(StepStatus::Done done);

/// Runs distinct-object queries against one dataset.
///
/// The detector and discriminator are owned by the caller and must outlive
/// the engine. A fresh engine (or at least a fresh discriminator and frame
/// source) should be used per query run.
class QueryEngine {
 public:
  /// Builds the frame source described by `config` (the common path).
  /// `chunks` is required for Strategy::kExSample, ignored otherwise.
  QueryEngine(const video::VideoRepository* repo,
              const std::vector<video::Chunk>* chunks,
              detect::ObjectDetector* detector,
              track::Discriminator* discriminator, EngineConfig config,
              uint64_t seed);

  /// Drives a caller-supplied source (custom strategies plug in here);
  /// config.strategy and the other FrameSourceConfig fields are ignored.
  QueryEngine(const video::VideoRepository* repo,
              std::unique_ptr<FrameSource> source,
              detect::ObjectDetector* detector,
              track::Discriminator* discriminator, EngineConfig config,
              uint64_t seed);

  /// Executes the query to completion (limit reached, max_samples reached,
  /// or repository exhausted). Equivalent to Begin + one unbounded Step +
  /// TakeResult.
  QueryResult Run(const QuerySpec& spec);

  /// Opens an incremental run. Call once per engine, before Step().
  void Begin(const QuerySpec& spec);

  /// Advances the run by up to `max_frames` frames and reports progress.
  /// Once the returned status says done, further calls are no-ops. The
  /// trajectory produced by any sequence of Step calls is bit-identical to
  /// a single Run() with the same seed (see file comment).
  StepStatus Step(int64_t max_frames);

  /// True between Begin() and TakeResult().
  bool run_open() const { return run_ != nullptr; }

  /// The accumulated result of the open run (trajectories are not
  /// Finish()ed until the run ends). Requires run_open().
  const QueryResult& result() const;

  /// Closes the run and returns the result, finalizing trajectories. An
  /// unfinished run is cancelled (this is how a serving session aborts).
  QueryResult TakeResult();

  /// Attaches metric sinks (copied; the pointed-to instruments must outlive
  /// the engine). `cell` selects the counter cell this engine writes —
  /// callers hash a stable id (session id, shard index) so concurrent
  /// engines spread across cells. Call before Begin().
  void set_metrics(const EngineMetrics& metrics, size_t cell) {
    metrics_ = metrics;
    metrics_cell_ = cell;
  }

  /// Attaches a batch executor (non-owning, may be null to stay on the
  /// serial in-engine path; the executor must outlive the engine's runs).
  /// The engine then routes every pending batch through
  /// BeginBatch/Await/Abort instead of its inline decode + detect calls;
  /// result sets are bit-identical either way (see exec::Pipeline). Call
  /// before Begin().
  void set_executor(BatchExecutor* executor) { executor_ = executor; }

  ~QueryEngine();

  /// Attaches a per-query trace recorder (non-owning, may be null). The
  /// engine records one kPick event per source batch and one kFrame (plus
  /// kHit on new objects) per processed frame. Call before Begin().
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// The frame source driving this engine.
  const FrameSource& frame_source() const { return *source_; }

  /// Per-chunk statistics after the run (sources that keep them only).
  const ChunkStats* chunk_stats() const { return source_->chunk_stats(); }

 private:
  /// Mutable state of one Begin()..TakeResult() run.
  struct RunState {
    RunState(const video::VideoRepository* repo, video::DecodeCostModel model)
        : decoder(repo, model) {}

    QuerySpec spec;
    video::SimulatedDecoder decoder;
    std::unordered_set<detect::InstanceId> seen_instances;
    int64_t max_samples = 0;
    /// Source batch picked but not yet processed: Step slices at frame
    /// granularity while NextBatch stays at config batch granularity.
    std::vector<PickedFrame> pending;
    size_t pending_next = 0;
    /// True while a BatchExecutor batch for `pending` is open (executor
    /// path only); cleared when the batch is fully consumed or aborted.
    bool executor_batch_open = false;
    QueryResult result;
    StepStatus::Done done = StepStatus::Done::kRunning;
  };

  const video::VideoRepository* repo_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  EngineConfig config_;
  Rng rng_;
  std::unique_ptr<FrameSource> source_;
  std::unique_ptr<RunState> run_;
  EngineMetrics metrics_;
  size_t metrics_cell_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  BatchExecutor* executor_ = nullptr;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_ENGINE_H_
