// QueryEngine: the Algorithm 1 sampling loop with pluggable frame-selection
// strategies.
//
// Strategies:
//  * kExSample   — chunk choice by bandit policy (Thompson by default),
//                  random+ within the chosen chunk, per-chunk (N1, n) state;
//  * kRandom     — uniform sampling without replacement over the whole
//                  repository (the paper's main baseline);
//  * kRandomPlus — temporally stratified random over the whole repository
//                  (§III-F's standalone random+ variant);
//  * kSequential — scan frames in order with a stride (the naive baseline,
//                  §II-B).
//
// The engine owns the loop: pick frame -> decode (cost model) -> detect ->
// discriminate -> update state -> append results, and records the
// distinct-results trajectory for evaluation.

#ifndef EXSAMPLE_CORE_ENGINE_H_
#define EXSAMPLE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/chunk_stats.h"
#include "core/policy.h"
#include "core/query.h"
#include "detect/detector.h"
#include "track/discriminator.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/decoder.h"
#include "video/frame_sampler.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// Frame-selection strategy.
enum class Strategy {
  kExSample,
  kRandom,
  kRandomPlus,
  kSequential,
};

/// How the N1 decrement of a second sighting is attributed when an object
/// spans chunks (paper footnote 1).
enum class CreditMode {
  /// Algorithm 1 as published: both |d0| and |d1| update the chunk the
  /// frame was sampled from. An object first seen from chunk A and re-seen
  /// from a sample in chunk B drives N1_B negative (clamped by the belief).
  kSampledChunk,
  /// Technical-report adjustment: each d1 decrement is credited to the
  /// chunk of the object's FIRST sighting, cancelling the +1 recorded
  /// there. Per-chunk N1 can then never go negative.
  kFirstSightingChunk,
};

/// Engine configuration.
struct EngineConfig {
  Strategy strategy = Strategy::kExSample;
  /// Bandit policy for kExSample.
  PolicyKind policy = PolicyKind::kThompson;
  BeliefParams belief;
  /// Within-chunk sampling for kExSample.
  video::WithinChunkStrategy within_chunk =
      video::WithinChunkStrategy::kRandomPlus;
  /// Frames processed per batched iteration (§III-F); 1 = unbatched.
  int32_t batch_size = 1;
  /// Stride for kSequential (process every k-th frame).
  int64_t sequential_stride = 1;
  /// Cross-chunk N1 crediting (kExSample only).
  CreditMode credit = CreditMode::kSampledChunk;
  /// Simulate decode costs (adds decoder latency to the time accounting).
  video::DecodeCostModel decode_model;
};

/// Runs distinct-object queries against one dataset.
///
/// The detector and discriminator are owned by the caller and must outlive
/// the engine. A fresh engine (or at least a fresh discriminator) should be
/// used per query run.
class QueryEngine {
 public:
  QueryEngine(const video::VideoRepository* repo,
              const std::vector<video::Chunk>* chunks,
              detect::ObjectDetector* detector,
              track::Discriminator* discriminator, EngineConfig config,
              uint64_t seed);

  /// Executes the query to completion (limit reached, max_samples reached,
  /// or repository exhausted).
  QueryResult Run(const QuerySpec& spec);

  /// Per-chunk statistics after the run (ExSample strategy only).
  const ChunkStats* chunk_stats() const { return stats_.get(); }

 private:
  /// Picks the next frame to process, or -1 when exhausted. For kExSample,
  /// `picked_chunk` receives the chunk the frame came from.
  video::FrameId NextFrame(video::ChunkId* picked_chunk);

  const video::VideoRepository* repo_;
  const std::vector<video::Chunk>* chunks_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  EngineConfig config_;
  Rng rng_;

  // ExSample state.
  std::unique_ptr<ChunkPolicy> policy_;
  std::unique_ptr<ChunkStats> stats_;
  std::vector<std::unique_ptr<video::FrameSampler>> chunk_samplers_;
  std::vector<bool> chunk_available_;
  std::unique_ptr<video::ChunkLookup> chunk_lookup_;  // for kFirstSighting
  // Whole-repository samplers for the baselines.
  std::unique_ptr<video::FrameSampler> flat_sampler_;
  video::FrameId sequential_cursor_ = 0;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_ENGINE_H_
