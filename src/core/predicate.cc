#include "core/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace exsample {
namespace core {
namespace {

/// Formats the sequence window exactly the way ParseWindow re-reads it:
/// %g covers every positive double the protocol accepts, "inf" the sentinel.
std::string WindowToken(double within_seconds) {
  if (std::isinf(within_seconds)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", within_seconds);
  return buf;
}

bool ParseWindowToken(const std::string& token, double* within) {
  if (token == "inf") {
    *within = kUnboundedWindow;
    return true;
  }
  if (token.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!(value > 0.0) || std::isinf(value) || std::isnan(value)) return false;
  *within = value;
  return true;
}

/// Splits "c1,c3,c7" into class ids; false on any malformed element.
bool ParseClassList(const std::string& body,
                    std::vector<detect::ClassId>* classes) {
  classes->clear();
  size_t pos = 0;
  while (pos <= body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string token = body.substr(pos, comma - pos);
    if (token.size() < 2 || token[0] != 'c') return false;
    int64_t id = 0;
    for (size_t i = 1; i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') return false;
      id = id * 10 + (token[i] - '0');
      if (id > INT32_MAX) return false;
    }
    // Canonical spelling has no leading zeros ("c07" re-serializes as "c7").
    if (token.size() > 2 && token[1] == '0') return false;
    classes->push_back(static_cast<detect::ClassId>(id));
    if (comma == body.size()) break;
    pos = comma + 1;
  }
  return !classes->empty();
}

}  // namespace

const char* PredicateKindName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kSingleClass:
      return "single";
    case PredicateKind::kConjunction:
      return "and";
    case PredicateKind::kSequence:
      return "seq";
    case PredicateKind::kMultiClass:
      return "multi";
  }
  return "single";
}

bool ParsePredicateKindName(const std::string& name, PredicateKind* kind) {
  if (name == "single") {
    *kind = PredicateKind::kSingleClass;
  } else if (name == "and") {
    *kind = PredicateKind::kConjunction;
  } else if (name == "seq") {
    *kind = PredicateKind::kSequence;
  } else if (name == "multi") {
    *kind = PredicateKind::kMultiClass;
  } else {
    return false;
  }
  return true;
}

QueryPredicate QueryPredicate::Single(detect::ClassId cls) {
  QueryPredicate pred;
  pred.kind = PredicateKind::kSingleClass;
  pred.classes = {cls};
  return pred;
}

QueryPredicate QueryPredicate::And(std::vector<detect::ClassId> classes) {
  QueryPredicate pred;
  pred.kind = PredicateKind::kConjunction;
  pred.classes = std::move(classes);
  return NormalizePredicate(std::move(pred));
}

QueryPredicate QueryPredicate::Seq(detect::ClassId first, detect::ClassId then,
                                   double within) {
  QueryPredicate pred;
  pred.kind = PredicateKind::kSequence;
  pred.classes = {first, then};
  pred.within_seconds = within;
  return pred;
}

QueryPredicate QueryPredicate::Multi(std::vector<detect::ClassId> classes) {
  QueryPredicate pred;
  pred.kind = PredicateKind::kMultiClass;
  pred.classes = std::move(classes);
  return NormalizePredicate(std::move(pred));
}

bool QueryPredicate::operator==(const QueryPredicate& other) const {
  if (kind != other.kind || classes != other.classes) return false;
  if (kind != PredicateKind::kSequence) return true;
  // Two unbounded windows compare equal even though inf != inf is a trap
  // with NaN-style semantics elsewhere; within is never NaN post-validate.
  return within_seconds == other.within_seconds;
}

QueryPredicate NormalizePredicate(QueryPredicate pred) {
  switch (pred.kind) {
    case PredicateKind::kSingleClass:
    case PredicateKind::kSequence:
      // Sequence order is semantic (A then B); nothing to canonicalize.
      break;
    case PredicateKind::kConjunction:
    case PredicateKind::kMultiClass: {
      std::sort(pred.classes.begin(), pred.classes.end());
      pred.classes.erase(
          std::unique(pred.classes.begin(), pred.classes.end()),
          pred.classes.end());
      // Conjunction(A, A) IS SingleClass(A) structurally — that collapse is
      // what makes the equivalence property in the tests hold bit for bit.
      if (pred.classes.size() == 1) pred.kind = PredicateKind::kSingleClass;
      break;
    }
  }
  if (pred.kind != PredicateKind::kSequence) {
    pred.within_seconds = kUnboundedWindow;
  }
  return pred;
}

Status ValidatePredicate(const QueryPredicate& pred) {
  for (detect::ClassId cls : pred.classes) {
    if (cls < 0) return Status::InvalidArgument("predicate class id < 0");
  }
  switch (pred.kind) {
    case PredicateKind::kSingleClass:
      if (pred.classes.size() != 1) {
        return Status::InvalidArgument(
            "single-class predicate needs exactly 1 class");
      }
      break;
    case PredicateKind::kConjunction:
      if (pred.classes.size() < 2) {
        return Status::InvalidArgument(
            "and predicate needs >= 2 distinct classes");
      }
      break;
    case PredicateKind::kSequence:
      if (pred.classes.size() != 2) {
        return Status::InvalidArgument(
            "seq predicate needs exactly 2 classes");
      }
      if (std::isnan(pred.within_seconds) || !(pred.within_seconds > 0.0)) {
        return Status::InvalidArgument("seq within_seconds must be > 0");
      }
      break;
    case PredicateKind::kMultiClass:
      if (pred.classes.size() < 2) {
        return Status::InvalidArgument(
            "multi predicate needs >= 2 distinct classes");
      }
      break;
  }
  return Status::Ok();
}

QueryPredicate EffectivePredicate(const QueryPredicate& pred,
                                  detect::ClassId fallback_class) {
  if (!pred.classes.empty()) return pred;
  return QueryPredicate::Single(fallback_class);
}

std::string PredicateKey(const QueryPredicate& pred) {
  auto class_list = [&pred]() {
    std::string out;
    for (size_t i = 0; i < pred.classes.size(); ++i) {
      if (i > 0) out += ',';
      out += 'c';
      out += std::to_string(pred.classes[i]);
    }
    return out;
  };
  switch (pred.kind) {
    case PredicateKind::kSingleClass:
      return "c" + std::to_string(pred.classes.empty() ? 0 : pred.classes[0]);
    case PredicateKind::kConjunction:
      return "and(" + class_list() + ")";
    case PredicateKind::kSequence:
      return "seq(" + class_list() +
             ",w=" + WindowToken(pred.within_seconds) + ")";
    case PredicateKind::kMultiClass:
      return "multi(" + class_list() + ")";
  }
  return "c0";
}

Result<QueryPredicate> ParsePredicateKey(const std::string& key) {
  auto invalid = [&key]() {
    return Status::InvalidArgument("invalid predicate key: " + key);
  };
  QueryPredicate pred;
  if (!key.empty() && key[0] == 'c') {
    pred.kind = PredicateKind::kSingleClass;
    if (!ParseClassList(key, &pred.classes) || pred.classes.size() != 1) {
      return invalid();
    }
  } else {
    const size_t open = key.find('(');
    if (open == std::string::npos || key.empty() || key.back() != ')') {
      return invalid();
    }
    const std::string head = key.substr(0, open);
    std::string body = key.substr(open + 1, key.size() - open - 2);
    if (head == "and") {
      pred.kind = PredicateKind::kConjunction;
    } else if (head == "multi") {
      pred.kind = PredicateKind::kMultiClass;
    } else if (head == "seq") {
      pred.kind = PredicateKind::kSequence;
      const size_t w = body.rfind(",w=");
      if (w == std::string::npos) return invalid();
      if (!ParseWindowToken(body.substr(w + 3), &pred.within_seconds)) {
        return invalid();
      }
      body = body.substr(0, w);
    } else {
      return invalid();
    }
    if (!ParseClassList(body, &pred.classes)) return invalid();
  }
  Status status = ValidatePredicate(pred);
  if (!status.ok()) return status;
  // Canonical-form check: anything that does not re-serialize to the input
  // byte for byte AFTER normalization (unsorted "and(c3,c1)", duplicate
  // classes "and(c1,c1)", "seq(c1,c2,w=2.0)" instead of w=2) is rejected,
  // so a key is either the canonical spelling or invalid — there is
  // exactly one spelling per row.
  pred = NormalizePredicate(pred);
  if (PredicateKey(pred) != key) return invalid();
  return pred;
}

Result<PredicateRequest> ParsePredicateJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("predicate must be a JSON object");
  }
  PredicateRequest request;
  const Json* kind = json.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return Status::InvalidArgument(
        "predicate requires a string \"kind\" (and|seq|multi|single)");
  }
  if (!ParsePredicateKindName(kind->AsString(), &request.kind)) {
    return Status::InvalidArgument("unknown predicate kind: " +
                                   kind->AsString());
  }
  const Json* classes = json.Find("classes");
  if (classes == nullptr || !classes->is_array() || classes->size() == 0) {
    return Status::InvalidArgument(
        "predicate requires a non-empty \"classes\" array of class names");
  }
  for (const Json& item : classes->items()) {
    if (!item.is_string() || item.AsString().empty()) {
      return Status::InvalidArgument(
          "predicate \"classes\" entries must be non-empty strings");
    }
    request.class_names.push_back(item.AsString());
  }
  switch (request.kind) {
    case PredicateKind::kSingleClass:
      if (request.class_names.size() != 1) {
        return Status::InvalidArgument(
            "single predicate takes exactly 1 class");
      }
      break;
    case PredicateKind::kSequence:
      if (request.class_names.size() != 2) {
        return Status::InvalidArgument("seq predicate takes exactly 2 classes");
      }
      break;
    case PredicateKind::kConjunction:
    case PredicateKind::kMultiClass:
      if (request.class_names.size() < 2) {
        return Status::InvalidArgument(
            std::string(PredicateKindName(request.kind)) +
            " predicate takes >= 2 classes");
      }
      break;
  }
  const Json* within = json.Find("within_seconds");
  if (within != nullptr) {
    if (request.kind != PredicateKind::kSequence) {
      return Status::InvalidArgument(
          "within_seconds is only valid for seq predicates");
    }
    if (!within->is_number() || !(within->AsDouble() > 0.0)) {
      return Status::InvalidArgument("within_seconds must be a number > 0");
    }
    request.within_seconds = within->AsDouble();
  }
  // Reject unknown keys outright: a typo like "witin_seconds" must be a
  // structured error, never a silently different query.
  for (const auto& member : json.members()) {
    if (member.first != "kind" && member.first != "classes" &&
        member.first != "within_seconds") {
      return Status::InvalidArgument("unknown predicate key: " + member.first);
    }
  }
  return request;
}

Json PredicateRequestJson(const PredicateRequest& request) {
  Json json = Json::Object();
  json.Set("kind", PredicateKindName(request.kind));
  Json classes = Json::Array();
  for (const std::string& name : request.class_names) classes.Append(name);
  json.Set("classes", std::move(classes));
  if (request.kind == PredicateKind::kSequence &&
      !std::isinf(request.within_seconds)) {
    json.Set("within_seconds", request.within_seconds);
  }
  return json;
}

}  // namespace core
}  // namespace exsample
