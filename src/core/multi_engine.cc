#include "core/multi_engine.h"

#include <cassert>
#include <utility>

#include "util/rng.h"

namespace exsample {
namespace core {

struct MultiClassEngine::Sub {
  std::unique_ptr<detect::ObjectDetector> detector;
  std::unique_ptr<track::Discriminator> discriminator;
  std::unique_ptr<QueryEngine> engine;
  /// Stable storage for this constituent's warm priors (the engine config
  /// keeps a pointer into it).
  std::vector<ChunkPrior> warm;
  /// Merged-view bookkeeping: results already copied out, cost already
  /// folded in, true-instance count already summed.
  size_t consumed = 0;
  double last_decode = 0.0;
  double last_inference = 0.0;
  int64_t last_true = 0;
  bool done = false;
  /// Snapshot of the sub-run after TakeResult (sub_result falls back here
  /// once the run is closed).
  QueryResult final_result;
};

MultiClassEngine::MultiClassEngine(const video::VideoRepository* repo,
                                   const std::vector<video::Chunk>* chunks,
                                   MultiClassOptions options, uint64_t seed)
    : options_(std::move(options)) {
  assert(!options_.classes.empty());
  assert(options_.warm_start.empty() ||
         options_.warm_start.size() == options_.classes.size());
  // One (engine seed, detector seed) pair per constituent, drawn in
  // canonical class order — the single-class session split, repeated.
  SplitMix64 stream(seed);
  for (size_t i = 0; i < options_.classes.size(); ++i) {
    const detect::ClassId cls = options_.classes[i];
    const uint64_t engine_seed = stream.Next();
    const uint64_t detector_seed = stream.Next();
    auto sub = std::make_unique<Sub>();
    sub->detector = options_.make_detector(cls, detector_seed);
    sub->discriminator = options_.make_discriminator();
    if (i < options_.warm_start.size()) sub->warm = options_.warm_start[i];
    EngineConfig config = options_.config;
    config.decode_cache = &cache_;
    config.warm_start = sub->warm.empty() ? nullptr : &sub->warm;
    sub->engine = std::make_unique<QueryEngine>(
        repo, chunks, sub->detector.get(), sub->discriminator.get(), config,
        engine_seed);
    subs_.push_back(std::move(sub));
  }
}

MultiClassEngine::~MultiClassEngine() = default;

void MultiClassEngine::set_metrics(const EngineMetrics& metrics, size_t cell) {
  for (auto& sub : subs_) sub->engine->set_metrics(metrics, cell);
}

void MultiClassEngine::Begin(const QuerySpec& spec) {
  assert(!open_ && "Begin() called on an already-open run");
  for (size_t i = 0; i < subs_.size(); ++i) {
    QuerySpec sub_spec = spec;
    sub_spec.class_id = options_.classes[i];
    sub_spec.predicate = QueryPredicate::Single(options_.classes[i]);
    subs_[i]->engine->Begin(sub_spec);
  }
  merged_ = QueryResult();
  rr_ = 0;
  open_ = true;
  final_reason_ = StepStatus::Done::kRunning;
}

int64_t MultiClassEngine::StepSub(size_t i) {
  Sub& sub = *subs_[i];
  const StepStatus status = sub.engine->Step(1);
  const QueryResult& r = sub.engine->result();
  merged_.frames_processed += status.frames_this_step;
  merged_.decode_seconds += r.decode_seconds - sub.last_decode;
  merged_.inference_seconds += r.inference_seconds - sub.last_inference;
  sub.last_decode = r.decode_seconds;
  sub.last_inference = r.inference_seconds;
  if (r.results.size() > sub.consumed) {
    merged_.results.insert(merged_.results.end(),
                           r.results.begin() + sub.consumed, r.results.end());
    sub.consumed = r.results.size();
    merged_.reported.Record(merged_.frames_processed,
                            static_cast<int64_t>(merged_.results.size()));
  }
  const int64_t sub_true = r.true_instances.final_count();
  if (sub_true != sub.last_true) {
    const int64_t merged_true =
        merged_.true_instances.final_count() + (sub_true - sub.last_true);
    sub.last_true = sub_true;
    merged_.true_instances.Record(merged_.frames_processed, merged_true);
  }
  if (!status.running()) {
    sub.done = true;
    final_reason_ = status.done;
  }
  return status.frames_this_step;
}

StepStatus MultiClassEngine::Step(int64_t max_frames) {
  assert(open_ && "Step() requires Begin()");
  StepStatus out;
  const int64_t results_before = static_cast<int64_t>(merged_.results.size());
  int64_t processed = 0;
  while (processed < max_frames) {
    // Advance the cursor to the next live constituent; stop when none left.
    size_t scanned = 0;
    while (scanned < subs_.size() && subs_[rr_]->done) {
      rr_ = (rr_ + 1) % subs_.size();
      ++scanned;
    }
    if (scanned == subs_.size()) break;
    const size_t i = rr_;
    rr_ = (rr_ + 1) % subs_.size();
    const int64_t frames = StepSub(i);
    processed += frames;
    // A live sub that reports neither progress nor completion would spin
    // this loop forever; treat it as exhausted defensively.
    if (frames == 0 && !subs_[i]->done) break;
  }
  bool all_done = true;
  for (const auto& sub : subs_) all_done = all_done && sub->done;
  out.frames_this_step = processed;
  out.results_this_step =
      static_cast<int64_t>(merged_.results.size()) - results_before;
  out.frames_processed = merged_.frames_processed;
  out.total_results = static_cast<int64_t>(merged_.results.size());
  out.cost_seconds = merged_.total_seconds();
  out.done = all_done ? final_reason_ : StepStatus::Done::kRunning;
  return out;
}

const QueryResult& MultiClassEngine::sub_result(size_t i) const {
  assert(i < subs_.size());
  if (subs_[i]->engine->run_open()) return subs_[i]->engine->result();
  return subs_[i]->final_result;
}

const ChunkStats* MultiClassEngine::sub_chunk_stats(size_t i) const {
  assert(i < subs_.size());
  return subs_[i]->engine->chunk_stats();
}

const std::vector<ChunkPrior>& MultiClassEngine::sub_warm_priors(
    size_t i) const {
  assert(i < subs_.size());
  return subs_[i]->warm;
}

QueryResult MultiClassEngine::TakeResult() {
  assert(open_ && "TakeResult() requires an open run");
  bool all_done = true;
  for (const auto& sub : subs_) all_done = all_done && sub->done;
  if (!all_done) final_reason_ = StepStatus::Done::kCancelled;
  for (auto& sub : subs_) {
    if (sub->engine->run_open()) sub->final_result = sub->engine->TakeResult();
  }
  merged_.reported.Finish(merged_.frames_processed);
  merged_.true_instances.Finish(merged_.frames_processed);
  open_ = false;
  QueryResult out = std::move(merged_);
  merged_ = QueryResult();
  return out;
}

}  // namespace core
}  // namespace exsample
