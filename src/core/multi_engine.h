// MultiClassEngine: N independent single-class queries sharing one decode
// stream — the kMultiClass predicate. Each constituent class runs a full
// QueryEngine (own bandit, own detector noise stream, own discriminator);
// the engines share a video::SharedDecodeCache, so a frame decoded for one
// class costs every other class nothing. That is the whole point: the
// decode work of exploring the repository is paid once, not once per class.
//
// Determinism contracts (the predicate test matrix pins all three):
//  * Per-class equivalence — each sub-run's result stream is bit-identical
//    to a standalone single-class QueryEngine with the same (engine seed,
//    detector seed), because the shared cache only changes modeled decode
//    *cost*, never picks, detections or verdicts (for non-cost-aware,
//    unbudgeted specs, where cost feeds no decision).
//  * Slicing invariance — constituent scheduling is an internal per-frame
//    round-robin (one frame per sub-engine per turn, position persisted),
//    so the merged result stream is append-only and identical for any outer
//    Step slice sizes — the serve layer's Poll drain contract.
//  * Seed derivation — SplitMix64 over the session seed yields each class's
//    (engine seed, detector seed) pair in canonical class order; with one
//    class this is exactly the single-class session's split.

#ifndef EXSAMPLE_CORE_MULTI_ENGINE_H_
#define EXSAMPLE_CORE_MULTI_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/predicate.h"
#include "detect/detector.h"
#include "track/discriminator.h"
#include "video/chunking.h"
#include "video/decoder.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// Per-class component factories plus the shared run configuration.
struct MultiClassOptions {
  /// Shared engine config. `decode_cache` is overridden with the session's
  /// internal shared cache; `warm_start` is overridden per class (below).
  EngineConfig config;
  /// Constituent classes in canonical (sorted, deduped) order.
  std::vector<detect::ClassId> classes;
  /// Detector for one constituent, from its class and detector seed.
  std::function<std::unique_ptr<detect::ObjectDetector>(detect::ClassId,
                                                        uint64_t)>
      make_detector;
  std::function<std::unique_ptr<track::Discriminator>()> make_discriminator;
  /// Optional per-class warm-start priors, parallel to `classes` (empty =
  /// cold start everywhere; per-class entries may be empty vectors). Copied.
  std::vector<std::vector<ChunkPrior>> warm_start;
};

/// Steps N single-class QueryEngines round-robin over a shared decode
/// cache, merging their result streams. Mirrors the QueryEngine run API
/// (Begin / Step / result / TakeResult) so serve::QuerySession can drive
/// either behind one code path.
class MultiClassEngine {
 public:
  MultiClassEngine(const video::VideoRepository* repo,
                   const std::vector<video::Chunk>* chunks,
                   MultiClassOptions options, uint64_t seed);
  ~MultiClassEngine();

  /// Opens the run. `spec`'s stopping rules (result_limit, max_samples,
  /// max_seconds) apply to EACH constituent class independently — "k per
  /// class", the natural multi-class reading of the paper's limit query.
  void Begin(const QuerySpec& spec);

  /// Advances by up to `max_frames` frames total (across constituents) and
  /// reports merged progress. `done` is kRunning until EVERY constituent
  /// finished; the final reason is the last constituent's.
  StepStatus Step(int64_t max_frames);

  bool run_open() const { return open_; }

  /// Merged view of the open run: results in discovery order (each
  /// detection carries its class_id), counters and trajectories summed.
  const QueryResult& result() const { return merged_; }

  /// Closes the run; cancels unfinished constituents.
  QueryResult TakeResult();

  // --- per-constituent views (index into classes()).
  const std::vector<detect::ClassId>& classes() const {
    return options_.classes;
  }
  size_t num_classes() const { return options_.classes.size(); }
  /// Per-class result stream of the open run. Requires run_open().
  const QueryResult& sub_result(size_t i) const;
  /// Per-class chunk statistics (for per-class StatsCache recording).
  const ChunkStats* sub_chunk_stats(size_t i) const;
  /// The warm priors constituent `i` was seeded with (empty = cold).
  const std::vector<ChunkPrior>& sub_warm_priors(size_t i) const;

  const video::SharedDecodeCache& decode_cache() const { return cache_; }
  /// Reads served from the shared cache so far: total frames processed
  /// minus unique frames decoded — the sharing win in frames.
  int64_t cached_reads() const {
    return merged_.frames_processed - cache_.size();
  }

  /// Forwarded to every constituent engine. Call before Begin().
  void set_metrics(const EngineMetrics& metrics, size_t cell);

 private:
  struct Sub;

  /// Steps constituent `i` by one frame and folds its progress into the
  /// merged view. Returns frames processed (0 when the sub just finished).
  int64_t StepSub(size_t i);

  MultiClassOptions options_;
  video::SharedDecodeCache cache_;
  std::vector<std::unique_ptr<Sub>> subs_;
  QueryResult merged_;
  /// Round-robin cursor, persisted across Step calls (slicing invariance).
  size_t rr_ = 0;
  bool open_ = false;
  StepStatus::Done final_reason_ = StepStatus::Done::kRunning;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_MULTI_ENGINE_H_
