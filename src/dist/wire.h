// Wire types of the distributed-search protocol (the dist.* verbs).
//
// The coordinator and the workers exchange NDJSON over the existing serve
// protocol; this header pins the request/reply shapes in one place so both
// sides — and the in-process LocalShardBackend used as the determinism
// reference — encode and decode exactly the same documents. Every reply a
// worker sends carries the shard's *full* per-shard aggregate (summed
// clamped N1, summed n, modeled cost), not a delta: a lost reply then
// costs nothing but staleness, and parity tests can compare the aggregate
// against a brute-force recompute from the worker's ChunkStats at any
// point.
//
// Verbs (one request object per line, one reply per request):
//   dist.open   — instantiate one shard-scoped session on the worker
//   dist.pick   — advance that session by a frame budget, return new
//                 results + the refreshed aggregate
//   dist.stats  — per-chunk (N1, n) arrays for parity checking
//   dist.report — finish the session: persist its statistics into the
//                 worker's StatsCache and free it

#ifndef EXSAMPLE_DIST_WIRE_H_
#define EXSAMPLE_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunk_stats.h"
#include "core/policy.h"
#include "core/predicate.h"
#include "detect/detection.h"
#include "util/json.h"
#include "util/status.h"

namespace exsample {
namespace dist {

/// One shard's bandit evidence, as synced to the coordinator: the same
/// sums ChunkStats maintains per group, taken over the whole shard. The
/// coordinator feeds (n1, n) to its Gamma belief exactly as the
/// hierarchical policies feed a group's row.
struct ShardAggregate {
  /// Sum of per-chunk clamped N1 over the shard's chunks.
  int64_t n1 = 0;
  /// Frames sampled in the shard (including warm-start pseudo-counts).
  int64_t n = 0;
  /// Modeled decode + inference seconds spent by the shard's session.
  double cost_seconds = 0.0;
};

/// Everything dist.open needs to instantiate one shard-scoped session.
/// The coordinator fills shard_index/num_shards/seed_tag per shard from
/// one template; the remaining fields describe the query itself.
struct ShardSpec {
  std::string preset;
  std::string class_name;
  /// Composite query: when set (non-empty class_names), dist.open carries a
  /// "predicate" object instead of "class" and the worker builds the shard
  /// session through exec::ConfigurePredicateJob. Empty = the legacy
  /// single-class form named by class_name — whose wire bytes are unchanged.
  core::PredicateRequest predicate;
  bool has_predicate() const { return !predicate.class_names.empty(); }
  double scale = 0.1;
  /// Logical shard [0, num_shards) — shard s owns chunk range
  /// [s*m/L, (s+1)*m/L) of the preset's m chunks, independent of how many
  /// worker processes host the shards (that is what makes results
  /// identical across worker counts).
  int32_t shard_index = 0;
  int32_t num_shards = 1;
  /// Session/job id on the worker, and therefore the JobSeed stream; -1
  /// defaults to shard_index so shard s samples the same trajectory on
  /// any worker.
  int64_t seed_tag = -1;
  /// Within-shard chunk policy.
  core::PolicyKind policy = core::PolicyKind::kThompson;
  int32_t group_size = 0;  ///< hier_* fan-out; 0 = auto
  bool cost_aware = false;
  int32_t gop_run = 1;
  bool tracker = false;  ///< IoU discriminator instead of the oracle
  /// Seed the shard session from the worker's StatsCache (per-shard key).
  bool warm_start = false;
  double warm_weight = 0.25;
  /// Per-shard frame cap (0 = none). The coordinator enforces the global
  /// result limit; shard sessions run unbounded otherwise.
  int64_t max_samples = 0;
};

// --- requests (coordinator -> worker)

Json OpenRequest(const ShardSpec& spec);
Json PickRequest(int64_t dist_id, int64_t frames);
Json StatsRequest(int64_t dist_id);
Json ReportRequest(int64_t dist_id);

/// Parses a dist.open request back into a spec. Field-level validation
/// (unknown policy name, out-of-range shard) fails here; dataset-dependent
/// checks are the worker's job.
Result<ShardSpec> ParseOpenRequest(const Json& cmd);

// --- replies (worker -> coordinator)

struct OpenReply {
  int64_t dist_id = 0;
  int64_t chunks = 0;  ///< chunks owned by the shard
  int64_t frames = 0;  ///< frames owned by the shard
  bool warm_started = false;
  ShardAggregate agg;
};

struct PickReply {
  /// False once the shard session stopped (exhausted / frame cap); the
  /// coordinator then retires the shard like a dried-up chunk.
  bool running = true;
  std::string stop_reason;  ///< serve::StopReasonName string
  /// kMultiClass shard sessions: detections interleave classes, so the
  /// reply carries per-detection class ids (single-class replies stay
  /// byte-identical and use the top-level class_id).
  bool multi_class = false;
  std::vector<detect::Detection> new_results;
  int64_t frames_processed = 0;  ///< cumulative over the shard session
  double cost_seconds = 0.0;
  ShardAggregate agg;
};

struct StatsReply {
  std::vector<int64_t> n1;  ///< raw per-chunk N1 (may be negative)
  std::vector<int64_t> n;
  ShardAggregate agg;
};

struct ReportReply {
  /// True when this call persisted the session's statistics (false if a
  /// teardown already recorded them).
  bool recorded = false;
  ShardAggregate agg;
};

Json ToJson(const ShardAggregate& agg);
ShardAggregate AggregateFromJson(const Json* json);

/// The canonical aggregate of a stats arena: per-chunk clamped N1 and n
/// summed via the incrementally maintained group rows (cost is filled by
/// the caller from the session's modeled spend). Parity tests pit this
/// against a brute-force per-chunk sum.
ShardAggregate AggregateFromStats(const core::ChunkStats& stats);

Json OpenReplyJson(const OpenReply& reply);
Json PickReplyJson(const PickReply& reply, detect::ClassId class_id);
Json StatsReplyJson(const StatsReply& reply);
Json ReportReplyJson(const ReportReply& reply);

/// Reply parsers: a transport-intact {"ok":false,...} reply parses to
/// InvalidArgument carrying the worker's error (a protocol bug, not a
/// worker failure — the coordinator treats it as fatal, unlike
/// Unavailable/DeadlineExceeded from the transport).
Result<OpenReply> ParseOpenReply(const Json& reply);
Result<PickReply> ParsePickReply(const Json& reply,
                                 detect::ClassId class_id);
Result<StatsReply> ParseStatsReply(const Json& reply);
Result<ReportReply> ParseReportReply(const Json& reply);

}  // namespace dist
}  // namespace exsample

#endif  // EXSAMPLE_DIST_WIRE_H_
