// Coordinator: the top level of the bandit, one decision higher than the
// hierarchical policies.
//
// ExSample's hier policies pick group -> chunk from incrementally
// maintained group aggregates; a repository sharded across worker
// processes is the same decision one level up. The coordinator keeps one
// ShardAggregate row per logical shard (synced in full by every dist.pick
// reply), Thompson-samples or Bayes-UCB-scores a shard per pick from those
// rows exactly as HierThompsonPolicy scores a group, and delegates the
// within-shard chunk pick to the worker hosting that shard.
//
// Determinism. Shards are LOGICAL: L is fixed by the query, shard s always
// owns chunk range [s*m/L, (s+1)*m/L) and always samples the JobSeed
// stream (base_seed, s) — worker processes only host shards (s % W). A
// round draws picks_per_round shard choices from the coordinator RNG,
// folds them into per-shard frame budgets, dispatches the budgets to the
// workers in parallel (one thread per worker), barriers, and merges the
// replies in ascending shard order. Every coordinator RNG draw and every
// merge is therefore a pure function of (seed, L, the aggregate rows), so
// a healthy run's results are bit-identical across ANY worker count —
// including the in-process LocalShardBackend — while still running W
// workers' compute concurrently. The e2e matrix pins this.
//
// Failure handling reuses the machinery that models chunks going dry: a
// worker whose RPC fails marks all its shards unavailable in a
// coordinator-side core::AvailabilityIndex (Unavailable = torn
// connection, DeadlineExceeded = wedged peer — distinguished by
// net::Client so the retry policy can reconnect eagerly on the former and
// back off on the latter). The failed picks' frame budgets are re-sampled
// against the surviving shards with exponential backoff; a worker that
// comes back is revived between rounds and its shards re-open with
// warm_start=true, resuming from the StatsCache evidence the worker
// persisted on disconnect. Failure paths consult the wall clock, so runs
// with failures are not bit-reproducible — healthy runs never enter them.

#ifndef EXSAMPLE_DIST_COORDINATOR_H_
#define EXSAMPLE_DIST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/availability_index.h"
#include "core/belief.h"
#include "core/policy.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "serve/protocol_handler.h"
#include "serve/stats_cache.h"
#include "util/rng.h"
#include "util/status.h"

namespace exsample {
namespace dist {

/// Transport abstraction between the coordinator and the shard hosts.
/// Thread contract: the coordinator serializes calls per worker (one
/// dispatch thread per worker, shards grouped by WorkerOf); calls for
/// shards on different workers may run concurrently.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  virtual int num_workers() const = 0;
  /// The worker hosting shard s (shards of one worker fail together).
  virtual int WorkerOf(int32_t shard) const = 0;

  virtual Result<OpenReply> Open(int32_t shard, const ShardSpec& spec) = 0;
  virtual Result<PickReply> Pick(int32_t shard, int64_t frames) = 0;
  virtual Result<StatsReply> Stats(int32_t shard) = 0;
  virtual Result<ReportReply> Report(int32_t shard) = 0;

  /// Attempts to bring a failed worker back (reconnect / no-op). The
  /// coordinator re-opens the worker's shards afterwards.
  virtual Status Revive(int worker) = 0;
};

/// In-process backend: the determinism reference and the unit-test rig.
/// Each simulated worker is a WorkerState — the exact code a remote
/// worker's ProtocolHandler runs — and every call round-trips through the
/// same JSON documents the TCP transport carries, so local and remote
/// picks are bit-identical down to number formatting.
class LocalShardBackend : public ShardBackend {
 public:
  struct Options {
    int num_workers = 1;
    /// Worker-process base seed (datasets and session streams); every
    /// worker must agree, exactly as every remote worker gets the same
    /// --seed.
    uint64_t seed = 1;
    double default_scale = 0.1;
  };

  explicit LocalShardBackend(Options options);
  ~LocalShardBackend() override;

  int num_workers() const override { return static_cast<int>(workers_.size()); }
  int WorkerOf(int32_t shard) const override {
    return static_cast<int>(shard % num_workers());
  }

  Result<OpenReply> Open(int32_t shard, const ShardSpec& spec) override;
  Result<PickReply> Pick(int32_t shard, int64_t frames) override;
  Result<StatsReply> Stats(int32_t shard) override;
  Result<ReportReply> Report(int32_t shard) override;
  Status Revive(int worker) override;

  /// The simulated worker's warm-start cache (tests inspect it).
  serve::StatsCache* worker_cache(int worker);

 private:
  struct Worker {
    std::mutex mu;
    std::unique_ptr<serve::StatsCache> cache;
    std::unique_ptr<WorkerState> state;
  };

  Result<Json> Call(int32_t shard, const Json& request);

  serve::DatasetPool pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// shard -> worker-local dist session id.
  std::vector<int64_t> dist_ids_;
};

/// TCP backend: one net::Client per worker endpoint, dist.* verbs over the
/// serve protocol. A transport failure closes the connection and reports
/// Unavailable/DeadlineExceeded upward; Revive() reconnects.
class ClientShardBackend : public ShardBackend {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };
  struct Options {
    /// Bounds each connect attempt (a vanished worker fails fast instead
    /// of hanging for the SYN-retry minutes).
    double connect_timeout_seconds = 5.0;
    /// Per-RPC deadline (ReadLineWithTimeout under Call).
    double rpc_timeout_seconds = 30.0;
  };

  ClientShardBackend(std::vector<Endpoint> endpoints, Options options);

  int num_workers() const override {
    return static_cast<int>(workers_.size());
  }
  int WorkerOf(int32_t shard) const override {
    return static_cast<int>(shard % num_workers());
  }

  /// Connects every worker; the first failure is returned (workers that
  /// did connect stay connected).
  Status ConnectAll();

  Result<OpenReply> Open(int32_t shard, const ShardSpec& spec) override;
  Result<PickReply> Pick(int32_t shard, int64_t frames) override;
  Result<StatsReply> Stats(int32_t shard) override;
  Result<ReportReply> Report(int32_t shard) override;
  Status Revive(int worker) override;

  bool worker_connected(int worker);

 private:
  struct Worker {
    Endpoint endpoint;
    std::mutex mu;
    net::Client client;
  };

  Result<Json> Call(int32_t shard, const Json& request);
  Status ConnectLocked(Worker* worker);

  const Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int64_t> dist_ids_;
};

/// Coordinator configuration. `shard` is the per-shard template:
/// shard_index/num_shards/seed_tag are overwritten per shard.
struct CoordinatorOptions {
  ShardSpec shard;
  /// Logical shards L (fixed per query; independent of worker count).
  int32_t num_shards = 4;
  /// Coordinator RNG seed (the shard-level Thompson stream).
  uint64_t seed = 1;
  /// Shard-level scoring: kThompson (belief draw per shard, the default),
  /// kBayesUcb (1 - 1/(t+1) quantile), or kUniform (ignore the evidence;
  /// round-robin-ish load for benchmarks). Other kinds fall back to
  /// kThompson.
  core::PolicyKind shard_policy = core::PolicyKind::kThompson;
  core::BeliefParams belief;
  /// Normalize shard scores by the shard's modeled cost per frame.
  bool cost_aware = false;
  /// Stop after this many results (0 = run every shard dry).
  int64_t result_limit = 0;
  /// Frames per pick delegated to the chosen shard.
  int64_t frames_per_pick = 256;
  /// Shard choices drawn per round; their budgets dispatch in parallel.
  int32_t picks_per_round = 4;
  /// Safety valve (0 = unbounded).
  int64_t max_rounds = 0;
  /// Re-dispatch waves for failed picks within one round.
  int32_t max_retry_waves = 8;
  /// Backoff before retry wave w is 2^w times this.
  double retry_backoff_seconds = 0.01;
  /// Try to revive failed workers between rounds (warm-started reopen).
  bool rejoin = true;
  /// Minimum wait before the first revive attempt of a worker; doubles
  /// per failed attempt.
  double rejoin_backoff_seconds = 0.2;
  /// Give up once no shard has been available for this long.
  double unavailable_give_up_seconds = 10.0;
  /// Optional metrics registry (non-owning; may be null).
  obs::Registry* metrics = nullptr;
};

/// Per-shard outcome in CoordinatorResult.
struct ShardOutcome {
  int32_t shard = 0;
  int worker = 0;
  int64_t picks = 0;          ///< picks delegated (including retries)
  int64_t frames = 0;         ///< frames processed by the shard session
  int64_t results = 0;        ///< results the shard contributed
  bool exhausted = false;     ///< shard session stopped
  bool available = false;     ///< shard reachable at the end
  ShardAggregate agg;         ///< final synced aggregate row
};

struct CoordinatorResult {
  std::vector<detect::Detection> results;
  int64_t frames_processed = 0;
  double cost_seconds = 0.0;  ///< summed modeled cost across shards
  int64_t rounds = 0;
  int64_t picks = 0;
  int64_t retries = 0;          ///< re-dispatched picks after failures
  int64_t rpc_timeouts = 0;
  int64_t rpc_disconnects = 0;
  int64_t rejoins = 0;          ///< shard sessions re-opened after revive
  /// "limit" | "exhausted" | "unavailable" | "max_rounds"
  std::string stop_reason;
  std::vector<ShardOutcome> shards;
};

class Coordinator {
 public:
  /// `backend` is non-owning and must outlive the coordinator.
  Coordinator(ShardBackend* backend, CoordinatorOptions options);

  /// Opens every shard. Worker failures here mark shards unavailable
  /// rather than failing the call; at least one shard must open. Invalid
  /// configurations (bad spec, protocol errors) fail outright.
  Status OpenAll();

  /// Runs the query to its stopping rule and reports the shards at the
  /// end. Calls OpenAll() first if it has not run.
  Result<CoordinatorResult> Run();

  const ShardAggregate& aggregate(int32_t shard) const {
    return rows_[static_cast<size_t>(shard)].agg;
  }

 private:
  struct Row {
    ShardAggregate agg;
    int64_t picks = 0;
    int64_t frames_processed = 0;
    int64_t results = 0;
    double cost_seconds = 0.0;
    bool open = false;
    bool exhausted = false;
  };
  struct WorkerHealth {
    bool up = true;
    double down_since = 0.0;     ///< MonotonicSeconds timestamp
    double next_attempt = 0.0;   ///< earliest revive try
    double backoff = 0.0;
  };
  /// One shard's budget within a dispatch wave.
  struct Budget {
    int32_t shard = 0;
    int64_t frames = 0;
    int64_t picks = 0;
  };

  /// Draws one shard choice from the aggregate rows (Thompson/Bayes-UCB/
  /// uniform over available shards); -1 when none is available.
  int32_t SampleShard();
  /// Dispatches budgets (grouped by worker, parallel across workers) and
  /// merges replies in ascending shard order; failed budgets are returned
  /// for the caller's retry waves.
  std::vector<Budget> DispatchWave(const std::vector<Budget>& wave);
  void MergeReply(const Budget& budget, const PickReply& reply);
  void MarkWorkerDown(int worker, const Status& status);
  /// Revives due workers and re-opens their shards warm-started.
  void TryRejoin();
  bool AnyShardAvailable() const { return !available_.empty(); }
  void ReportAll();
  double MonotonicSeconds() const;

  ShardBackend* const backend_;
  const CoordinatorOptions options_;
  core::GammaBelief belief_;
  Rng rng_;
  std::vector<Row> rows_;
  core::AvailabilityIndex available_;
  std::vector<WorkerHealth> workers_;
  std::vector<detect::Detection> results_;
  bool opened_ = false;
  int64_t picks_issued_ = 0;
  double no_shard_since_ = -1.0;

  // Tallies mirrored into CoordinatorResult.
  int64_t retries_ = 0;
  int64_t rpc_timeouts_ = 0;
  int64_t rpc_disconnects_ = 0;
  int64_t rejoins_ = 0;

  // dist.* instruments (null when options_.metrics is null).
  obs::Counter* m_picks_ = nullptr;            ///< cell = shard
  obs::Counter* m_pick_frames_ = nullptr;      ///< cell = shard
  obs::Counter* m_results_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_rpc_timeouts_ = nullptr;
  obs::Counter* m_rpc_disconnects_ = nullptr;
  obs::Counter* m_rejoins_ = nullptr;
  obs::Gauge* m_shards_unavailable_ = nullptr;
  /// Observed from dispatch threads; histogram writes are lock-free.
  obs::LatencyHistogram* m_rpc_seconds_ = nullptr;
};

}  // namespace dist
}  // namespace exsample

#endif  // EXSAMPLE_DIST_COORDINATOR_H_
