// Worker side of distributed search: shard-scoped sessions behind the
// dist.* protocol verbs.
//
// A WorkerState hosts the shard sessions one coordinator connection opened:
// each dist.open instantiates a QuerySession over a contiguous slice of the
// preset's chunks (shard s of L owns chunks [s*m/L, (s+1)*m/L), re-numbered
// 0..m_s-1 but keeping their global frame ids, so results need no
// translation). Unlike the interactive serve sessions, shard sessions are
// NOT scheduled in the background by the SessionManager: the coordinator
// alone advances them, one dist.pick at a time, so a shard's trajectory
// depends only on (base_seed, seed_tag) and the sequence of pick budgets —
// never on worker count, scheduling, or wall clock. That synchronous drive
// is what makes distributed runs bit-reproducible.
//
// Warm start and failure recovery share one mechanism: every shard session
// carries a per-shard repository key ("preset@scale#shard<s>/<L>"); on
// dist.report — or on connection teardown via RecordAll(), which is how a
// crashed coordinator's evidence survives — the session's ChunkStats are
// recorded into the worker's StatsCache under that key, and a later
// dist.open with warm_start seeds from it. A worker that drops out and
// rejoins therefore resumes with the evidence it had already paid for.

#ifndef EXSAMPLE_DIST_WORKER_H_
#define EXSAMPLE_DIST_WORKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "serve/protocol_handler.h"
#include "serve/session.h"
#include "serve/stats_cache.h"
#include "util/json.h"
#include "video/chunking.h"

namespace exsample {
namespace dist {

/// The per-shard warm-start cache key: shard slices are their own
/// repositories as far as the StatsCache is concerned (their chunk counts
/// differ from the full preset's), so they get their own entries.
std::string ShardRepoKey(const std::string& preset, double scale,
                         int32_t shard_index, int32_t num_shards);

/// One connection's dist.* state. Single-threaded, like the
/// ProtocolHandler that owns it: one coordinator connection drives its
/// shards in request order. All pointers are non-owning and must outlive
/// the state.
class WorkerState {
 public:
  WorkerState(serve::DatasetPool* datasets, serve::StatsCache* cache,
              uint64_t base_seed, double default_scale);
  ~WorkerState();

  WorkerState(const WorkerState&) = delete;
  WorkerState& operator=(const WorkerState&) = delete;

  /// Dispatches one dist.* command ("dist.open", "dist.pick", "dist.stats",
  /// "dist.report") to its handler; unknown names yield an error reply.
  Json Handle(const std::string& name, const Json& cmd);

  /// Records every live shard session's statistics into the cache (at most
  /// once per session — dist.report and teardown cannot double-count).
  /// Called by the owning handler on disconnect/drain, so a coordinator
  /// that vanishes mid-query still leaves its evidence behind for the
  /// warm-started rejoin.
  void RecordAll();

  /// Shard sessions currently open.
  size_t open_shards() const { return shards_.size(); }

 private:
  struct Shard {
    ShardSpec spec;
    std::string repo_key;
    /// Re-numbered chunk slice the session samples; the session's engine
    /// holds a pointer into this vector, so it is immutable after open.
    std::vector<video::Chunk> chunks;
    int64_t frames = 0;
    std::unique_ptr<serve::QuerySession> session;
  };

  Json HandleOpen(const Json& cmd);
  Json HandlePick(const Json& cmd);
  Json HandleStats(const Json& cmd);
  Json HandleReport(const Json& cmd);
  /// Persists one shard's statistics (idempotent per session).
  void RecordShard(Shard* shard);
  /// Writes the cache rows for a shard whose record right is already
  /// claimed: per constituent class for kMultiClass sessions, under the
  /// canonical predicate key otherwise. Requires cache_ != nullptr.
  void RecordClaimedShard(Shard* shard);
  Shard* FindShard(int64_t dist_id);

  serve::DatasetPool* const datasets_;
  serve::StatsCache* const cache_;  // may be null: no warm start
  const uint64_t base_seed_;
  const double default_scale_;
  std::map<int64_t, std::unique_ptr<Shard>> shards_;
  int64_t next_id_ = 1;
};

}  // namespace dist
}  // namespace exsample

#endif  // EXSAMPLE_DIST_WORKER_H_
