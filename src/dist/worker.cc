#include "dist/worker.h"

#include <utility>

#include "core/frame_source.h"
#include "core/predicate.h"
#include "detect/simulated_detector.h"
#include "exec/predicate_jobs.h"
#include "exec/query_job.h"
#include "track/discriminator.h"

namespace exsample {
namespace dist {
namespace {

Json Error(const std::string& message) {
  return Json::Object().Set("ok", false).Set("error", message);
}

// The shard's full bandit aggregate. kMultiClass sessions expose per-class
// ChunkStats; their shard-level aggregate is the constituents' sum (every
// sampled frame counts once per constituent that sampled it — the same
// reading AggregateFromStats gives a single engine).
ShardAggregate SessionAggregate(const serve::QuerySession& session) {
  if (!session.is_multi_class()) {
    return AggregateFromStats(*session.chunk_stats());
  }
  ShardAggregate agg;
  for (size_t i = 0; i < session.num_classes(); ++i) {
    const core::ChunkStats* stats = session.sub_chunk_stats(i);
    if (stats == nullptr) continue;
    const ShardAggregate part = AggregateFromStats(*stats);
    agg.n1 += part.n1;
    agg.n += part.n;
  }
  return agg;
}

}  // namespace

std::string ShardRepoKey(const std::string& preset, double scale,
                         int32_t shard_index, int32_t num_shards) {
  return preset + "@" + std::to_string(scale) + "#shard" +
         std::to_string(shard_index) + "/" + std::to_string(num_shards);
}

WorkerState::WorkerState(serve::DatasetPool* datasets,
                         serve::StatsCache* cache, uint64_t base_seed,
                         double default_scale)
    : datasets_(datasets), cache_(cache), base_seed_(base_seed),
      default_scale_(default_scale) {}

WorkerState::~WorkerState() { RecordAll(); }

Json WorkerState::Handle(const std::string& name, const Json& cmd) {
  if (name == "dist.open") return HandleOpen(cmd);
  if (name == "dist.pick") return HandlePick(cmd);
  if (name == "dist.stats") return HandleStats(cmd);
  if (name == "dist.report") return HandleReport(cmd);
  return Error("unknown cmd: '" + name +
               "' (dist.open|dist.pick|dist.stats|dist.report)");
}

WorkerState::Shard* WorkerState::FindShard(int64_t dist_id) {
  auto it = shards_.find(dist_id);
  return it == shards_.end() ? nullptr : it->second.get();
}

Json WorkerState::HandleOpen(const Json& cmd) {
  Json defaulted = cmd;
  if (!defaulted.Has("scale")) defaulted.Set("scale", default_scale_);
  auto parsed = ParseOpenRequest(defaulted);
  if (!parsed.ok()) return Error(parsed.status().ToString());
  const ShardSpec& spec = parsed.value();

  const data::Dataset* dataset = datasets_->Get(spec.preset, spec.scale);
  if (dataset == nullptr) return Error("unknown preset: " + spec.preset);
  const data::ClassSpec* cls = nullptr;
  core::QueryPredicate predicate;
  if (spec.has_predicate()) {
    auto resolved = exec::ResolvePredicate(*dataset, spec.predicate);
    if (!resolved.ok()) return Error(resolved.status().ToString());
    predicate = resolved.value();
  } else {
    cls = dataset->FindClass(spec.class_name);
    if (cls == nullptr) {
      return Error("class '" + spec.class_name + "' not in " + spec.preset);
    }
  }
  const int64_t total_chunks =
      static_cast<int64_t>(dataset->chunks.size());
  if (spec.num_shards > total_chunks) {
    return Error("num_shards (" + std::to_string(spec.num_shards) +
                 ") exceeds the preset's " + std::to_string(total_chunks) +
                 " chunks");
  }

  auto shard = std::make_unique<Shard>();
  shard->spec = spec;
  shard->repo_key = ShardRepoKey(spec.preset, spec.scale, spec.shard_index,
                                 spec.num_shards);
  // Shard s of L owns the contiguous chunk range [s*m/L, (s+1)*m/L):
  // every shard non-empty (L <= m), every chunk owned exactly once, and
  // the partition depends only on (m, L) — never on worker count.
  const int64_t lo = spec.shard_index * total_chunks / spec.num_shards;
  const int64_t hi =
      (spec.shard_index + 1) * total_chunks / spec.num_shards;
  shard->chunks.reserve(static_cast<size_t>(hi - lo));
  for (int64_t i = lo; i < hi; ++i) {
    video::Chunk chunk;
    chunk.id = static_cast<video::ChunkId>(i - lo);
    chunk.frames = dataset->chunks[static_cast<size_t>(i)].frames;
    shard->frames += chunk.frames.size();
    shard->chunks.push_back(std::move(chunk));
  }

  std::vector<core::ChunkPrior> priors;
  std::vector<std::vector<core::ChunkPrior>> multi_priors;
  if (spec.warm_start && cache_ != nullptr) {
    if (spec.has_predicate() &&
        predicate.kind == core::PredicateKind::kMultiClass) {
      // Per-constituent warm start from each class's own shard-scoped row.
      multi_priors.resize(predicate.classes.size());
      for (size_t i = 0; i < predicate.classes.size(); ++i) {
        multi_priors[i] = cache_->Lookup(shard->repo_key,
                                         predicate.classes[i],
                                         spec.warm_weight);
      }
    } else if (spec.has_predicate()) {
      priors = cache_->LookupPredicate(shard->repo_key, predicate,
                                       spec.warm_weight);
    } else {
      priors = cache_->Lookup(shard->repo_key, cls->class_id,
                              spec.warm_weight);
    }
  }

  exec::QueryJob job;
  job.id = spec.seed_tag;
  job.repo = &dataset->repo;
  job.chunks = &shard->chunks;
  job.config.strategy = core::Strategy::kExSample;
  job.config.policy = spec.policy;
  job.config.group_size = spec.group_size;
  job.config.cost_aware = spec.cost_aware;
  job.config.gop_run_frames = spec.gop_run;
  job.spec.max_samples = spec.max_samples;
  if (spec.has_predicate()) {
    exec::ConfigurePredicateJob(dataset, predicate, spec.tracker,
                                detect::DetectorConfig{}, &job);
  } else {
    // Legacy single-class shard: byte-for-byte the factories this worker
    // has always built (the dist determinism matrices run through here).
    job.spec.class_id = cls->class_id;
    const detect::ClassId class_id = cls->class_id;
    job.make_detector = [dataset, class_id](uint64_t seed) {
      return std::make_unique<detect::SimulatedDetector>(
          &dataset->ground_truth, class_id, detect::DetectorConfig{}, seed);
    };
    const bool tracker = spec.tracker;
    job.make_discriminator =
        [tracker]() -> std::unique_ptr<track::Discriminator> {
      if (tracker) return std::make_unique<track::TrackerDiscriminator>();
      return std::make_unique<track::OracleDiscriminator>();
    };
  }

  shard->session = std::make_unique<serve::QuerySession>(
      job, base_seed_, serve::SessionOptions{}, std::move(priors),
      shard->repo_key, nullptr, 0, std::move(multi_priors));

  OpenReply reply;
  reply.dist_id = next_id_++;
  reply.chunks = static_cast<int64_t>(shard->chunks.size());
  reply.frames = shard->frames;
  reply.warm_started = shard->session->warm_started();
  reply.agg = SessionAggregate(*shard->session);
  shards_.emplace(reply.dist_id, std::move(shard));
  return OpenReplyJson(reply);
}

Json WorkerState::HandlePick(const Json& cmd) {
  Shard* shard = FindShard(cmd.GetInt("dist", -1));
  if (shard == nullptr) {
    return Error("no dist session " + std::to_string(cmd.GetInt("dist", -1)));
  }
  const int64_t frames = cmd.GetInt("frames", 0);
  if (frames < 1) return Error("frames must be >= 1");
  shard->session->RunSlice(frames);
  serve::PollResult p = shard->session->Poll();

  PickReply reply;
  reply.running = p.state == serve::SessionState::kRunning;
  reply.stop_reason = serve::StopReasonName(p.stop_reason);
  reply.multi_class = p.multi_class;
  reply.new_results = std::move(p.new_results);
  reply.frames_processed = p.frames_processed;
  reply.cost_seconds = p.cost_seconds;
  reply.agg = SessionAggregate(*shard->session);
  reply.agg.cost_seconds = p.cost_seconds;
  return PickReplyJson(reply, shard->session->class_id());
}

Json WorkerState::HandleStats(const Json& cmd) {
  Shard* shard = FindShard(cmd.GetInt("dist", -1));
  if (shard == nullptr) {
    return Error("no dist session " + std::to_string(cmd.GetInt("dist", -1)));
  }
  StatsReply reply;
  if (shard->session->is_multi_class()) {
    // Per-chunk element-wise sum over the constituents, mirroring the
    // aggregate: the shard-level parity view of a multi-class session.
    for (size_t c = 0; c < shard->session->num_classes(); ++c) {
      const core::ChunkStats* stats = shard->session->sub_chunk_stats(c);
      if (stats == nullptr) continue;
      if (reply.n1.empty()) {
        reply.n1.assign(static_cast<size_t>(stats->num_chunks()), 0);
        reply.n.assign(static_cast<size_t>(stats->num_chunks()), 0);
      }
      for (int32_t j = 0; j < stats->num_chunks(); ++j) {
        reply.n1[static_cast<size_t>(j)] += stats->n1(j);
        reply.n[static_cast<size_t>(j)] += stats->n(j);
      }
    }
  } else {
    const core::ChunkStats* stats = shard->session->chunk_stats();
    reply.n1.reserve(static_cast<size_t>(stats->num_chunks()));
    reply.n.reserve(static_cast<size_t>(stats->num_chunks()));
    for (int32_t j = 0; j < stats->num_chunks(); ++j) {
      reply.n1.push_back(stats->n1(j));
      reply.n.push_back(stats->n(j));
    }
  }
  reply.agg = SessionAggregate(*shard->session);
  return StatsReplyJson(reply);
}

Json WorkerState::HandleReport(const Json& cmd) {
  const int64_t dist_id = cmd.GetInt("dist", -1);
  auto it = shards_.find(dist_id);
  if (it == shards_.end()) {
    return Error("no dist session " + std::to_string(dist_id));
  }
  Shard* shard = it->second.get();
  shard->session->Cancel();
  ReportReply reply;
  reply.agg = SessionAggregate(*shard->session);
  const bool claimed = shard->session->MarkStatsRecorded();
  if (claimed && cache_ != nullptr) RecordClaimedShard(shard);
  reply.recorded = claimed && cache_ != nullptr;
  Json response = ReportReplyJson(reply);
  shards_.erase(it);
  return response;
}

void WorkerState::RecordClaimedShard(Shard* shard) {
  serve::QuerySession* session = shard->session.get();
  if (session->is_multi_class()) {
    // Each constituent's evidence goes to its own "c<id>" row so a later
    // single-class or multi-class open over this shard can reuse it.
    for (size_t i = 0; i < session->num_classes(); ++i) {
      const core::ChunkStats* stats = session->sub_chunk_stats(i);
      if (stats == nullptr || stats->total_samples() == 0) continue;
      cache_->Record(shard->repo_key, session->multi_classes()[i], *stats,
                     session->sub_warm_priors(i));
    }
    return;
  }
  // Single-class predicates key as "c<id>" — the row this cache always
  // used — and composites under their canonical predicate key.
  cache_->Record(shard->repo_key, core::PredicateKey(session->predicate()),
                 *session->chunk_stats(), session->warm_priors());
}

void WorkerState::RecordShard(Shard* shard) {
  shard->session->Cancel();
  if (cache_ != nullptr && shard->session->MarkStatsRecorded()) {
    RecordClaimedShard(shard);
  }
}

void WorkerState::RecordAll() {
  for (auto& entry : shards_) RecordShard(entry.second.get());
}

}  // namespace dist
}  // namespace exsample
