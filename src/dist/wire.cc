#include "dist/wire.h"

#include <limits>
#include <utility>

namespace exsample {
namespace dist {
namespace {

Status WorkerError(const Json& reply) {
  return Status::InvalidArgument("worker error: " +
                                 reply.GetString("error", "(no message)"));
}

}  // namespace

Json ToJson(const ShardAggregate& agg) {
  return Json::Object()
      .Set("n1", agg.n1)
      .Set("n", agg.n)
      .Set("cost_seconds", agg.cost_seconds);
}

ShardAggregate AggregateFromJson(const Json* json) {
  ShardAggregate agg;
  if (json == nullptr || !json->is_object()) return agg;
  agg.n1 = json->GetInt("n1", 0);
  agg.n = json->GetInt("n", 0);
  agg.cost_seconds = json->GetDouble("cost_seconds", 0.0);
  return agg;
}

ShardAggregate AggregateFromStats(const core::ChunkStats& stats) {
  ShardAggregate agg;
  for (int32_t g = 0; g < stats.num_groups(); ++g) {
    agg.n1 += stats.GroupClampedN1(g);
    agg.n += stats.GroupN(g);
  }
  return agg;
}

Json OpenRequest(const ShardSpec& spec) {
  Json cmd = Json::Object()
                 .Set("cmd", "dist.open")
                 .Set("preset", spec.preset);
  // Composite opens carry the predicate object; single-class opens keep
  // the exact legacy "class" form (wire bytes unchanged).
  if (spec.has_predicate()) {
    cmd.Set("predicate", core::PredicateRequestJson(spec.predicate));
  } else {
    cmd.Set("class", spec.class_name);
  }
  cmd.Set("scale", spec.scale)
                 .Set("shard", static_cast<int64_t>(spec.shard_index))
                 .Set("num_shards", static_cast<int64_t>(spec.num_shards))
                 .Set("seed_tag", spec.seed_tag)
                 .Set("policy", core::PolicyKindName(spec.policy))
                 .Set("group_size", static_cast<int64_t>(spec.group_size))
                 .Set("cost_aware", spec.cost_aware)
                 .Set("gop_run", static_cast<int64_t>(spec.gop_run))
                 .Set("tracker", spec.tracker)
                 .Set("warm_start", spec.warm_start)
                 .Set("warm_weight", spec.warm_weight)
                 .Set("max_samples", spec.max_samples);
  return cmd;
}

Json PickRequest(int64_t dist_id, int64_t frames) {
  return Json::Object()
      .Set("cmd", "dist.pick")
      .Set("dist", dist_id)
      .Set("frames", frames);
}

Json StatsRequest(int64_t dist_id) {
  return Json::Object().Set("cmd", "dist.stats").Set("dist", dist_id);
}

Json ReportRequest(int64_t dist_id) {
  return Json::Object().Set("cmd", "dist.report").Set("dist", dist_id);
}

Result<ShardSpec> ParseOpenRequest(const Json& cmd) {
  ShardSpec spec;
  spec.preset = cmd.GetString("preset", "");
  spec.class_name = cmd.GetString("class", "");
  const Json* predicate_json = cmd.Find("predicate");
  if (spec.preset.empty() ||
      (spec.class_name.empty() && predicate_json == nullptr)) {
    return Status::InvalidArgument(
        "dist.open requires \"preset\" and \"class\" (or \"predicate\")");
  }
  if (!spec.class_name.empty() && predicate_json != nullptr) {
    return Status::InvalidArgument(
        "dist.open takes exactly one of \"class\" and \"predicate\"");
  }
  if (predicate_json != nullptr) {
    if (!predicate_json->is_object()) {
      return Status::InvalidArgument("\"predicate\" must be a JSON object");
    }
    auto parsed_predicate = core::ParsePredicateJson(*predicate_json);
    if (!parsed_predicate.ok()) return parsed_predicate.status();
    spec.predicate = parsed_predicate.value();
  }
  spec.scale = cmd.GetDouble("scale", spec.scale);
  if (spec.scale <= 0.0 || spec.scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const int64_t num_shards = cmd.GetInt("num_shards", 1);
  const int64_t shard = cmd.GetInt("shard", 0);
  if (num_shards < 1 || num_shards > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument("num_shards must be in [1, 2^31)");
  }
  if (shard < 0 || shard >= num_shards) {
    return Status::InvalidArgument("shard must be in [0, num_shards)");
  }
  spec.shard_index = static_cast<int32_t>(shard);
  spec.num_shards = static_cast<int32_t>(num_shards);
  spec.seed_tag = cmd.GetInt("seed_tag", -1);
  if (spec.seed_tag < 0) spec.seed_tag = spec.shard_index;
  const std::string policy = cmd.GetString("policy", "");
  if (!policy.empty() && !core::ParsePolicyName(policy, &spec.policy)) {
    return Status::InvalidArgument("unknown policy: " + policy);
  }
  const int64_t group_size = cmd.GetInt("group_size", 0);
  if (group_size < 0 || group_size > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument("group_size must be in [0, 2^31) (0 = auto)");
  }
  spec.group_size = static_cast<int32_t>(group_size);
  spec.cost_aware = cmd.GetBool("cost_aware", false);
  const int64_t gop_run = cmd.GetInt("gop_run", 1);
  if (gop_run < 1 || gop_run > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument("gop_run must be in [1, 2^31)");
  }
  spec.gop_run = static_cast<int32_t>(gop_run);
  spec.tracker = cmd.GetBool("tracker", false);
  spec.warm_start = cmd.GetBool("warm_start", false);
  spec.warm_weight = cmd.GetDouble("warm_weight", spec.warm_weight);
  if (spec.warm_weight <= 0.0 || spec.warm_weight > 1.0) {
    return Status::InvalidArgument("warm_weight must be in (0, 1]");
  }
  spec.max_samples = cmd.GetInt("max_samples", 0);
  if (spec.max_samples < 0) {
    return Status::InvalidArgument("max_samples must be >= 0");
  }
  return spec;
}

Json OpenReplyJson(const OpenReply& reply) {
  return Json::Object()
      .Set("ok", true)
      .Set("dist", reply.dist_id)
      .Set("chunks", reply.chunks)
      .Set("frames", reply.frames)
      .Set("warm_started", reply.warm_started)
      .Set("agg", ToJson(reply.agg));
}

Json PickReplyJson(const PickReply& reply, detect::ClassId class_id) {
  Json results = Json::Array();
  for (const detect::Detection& d : reply.new_results) {
    Json item = Json::Object()
                    .Set("frame", d.frame)
                    .Set("score", d.score)
                    .Set("x", d.box.x)
                    .Set("y", d.box.y)
                    .Set("w", d.box.w)
                    .Set("h", d.box.h)
                    .Set("instance", d.instance);
    if (reply.multi_class) {
      item.Set("class_id", static_cast<int64_t>(d.class_id));
    }
    results.Append(std::move(item));
  }
  Json out = Json::Object()
                 .Set("ok", true)
                 .Set("running", reply.running)
                 .Set("stop_reason", reply.stop_reason)
                 .Set("class_id", static_cast<int64_t>(class_id))
                 .Set("new_results", std::move(results))
                 .Set("frames_processed", reply.frames_processed)
                 .Set("cost_seconds", reply.cost_seconds)
                 .Set("agg", ToJson(reply.agg));
  if (reply.multi_class) out.Set("multi_class", true);
  return out;
}

Json StatsReplyJson(const StatsReply& reply) {
  Json n1 = Json::Array();
  Json n = Json::Array();
  for (int64_t v : reply.n1) n1.Append(v);
  for (int64_t v : reply.n) n.Append(v);
  return Json::Object()
      .Set("ok", true)
      .Set("n1", std::move(n1))
      .Set("n", std::move(n))
      .Set("agg", ToJson(reply.agg));
}

Json ReportReplyJson(const ReportReply& reply) {
  return Json::Object()
      .Set("ok", true)
      .Set("recorded", reply.recorded)
      .Set("agg", ToJson(reply.agg));
}

Result<OpenReply> ParseOpenReply(const Json& reply) {
  if (!reply.GetBool("ok", false)) return WorkerError(reply);
  OpenReply out;
  out.dist_id = reply.GetInt("dist", 0);
  out.chunks = reply.GetInt("chunks", 0);
  out.frames = reply.GetInt("frames", 0);
  out.warm_started = reply.GetBool("warm_started", false);
  out.agg = AggregateFromJson(reply.Find("agg"));
  if (out.dist_id <= 0) {
    return Status::InvalidArgument("dist.open reply carries no session id");
  }
  return out;
}

Result<PickReply> ParsePickReply(const Json& reply,
                                 detect::ClassId class_id) {
  if (!reply.GetBool("ok", false)) return WorkerError(reply);
  PickReply out;
  out.running = reply.GetBool("running", false);
  out.stop_reason = reply.GetString("stop_reason", "");
  out.multi_class = reply.GetBool("multi_class", false);
  out.frames_processed = reply.GetInt("frames_processed", 0);
  out.cost_seconds = reply.GetDouble("cost_seconds", 0.0);
  out.agg = AggregateFromJson(reply.Find("agg"));
  const Json* results = reply.Find("new_results");
  if (results != nullptr && results->is_array()) {
    out.new_results.reserve(results->items().size());
    for (const Json& item : results->items()) {
      detect::Detection d;
      d.frame = item.GetInt("frame", -1);
      // Multi-class replies carry per-detection class ids; the top-level
      // class_id is the fallback for legacy single-class replies.
      d.class_id = static_cast<detect::ClassId>(
          item.GetInt("class_id", class_id));
      d.score = item.GetDouble("score", 0.0);
      d.box.x = item.GetDouble("x", 0.0);
      d.box.y = item.GetDouble("y", 0.0);
      d.box.w = item.GetDouble("w", 0.0);
      d.box.h = item.GetDouble("h", 0.0);
      d.instance = item.GetInt("instance", detect::kNoInstance);
      out.new_results.push_back(d);
    }
  }
  return out;
}

Result<StatsReply> ParseStatsReply(const Json& reply) {
  if (!reply.GetBool("ok", false)) return WorkerError(reply);
  StatsReply out;
  const Json* n1 = reply.Find("n1");
  const Json* n = reply.Find("n");
  if (n1 != nullptr && n1->is_array()) {
    for (const Json& v : n1->items()) out.n1.push_back(v.AsInt());
  }
  if (n != nullptr && n->is_array()) {
    for (const Json& v : n->items()) out.n.push_back(v.AsInt());
  }
  if (out.n1.size() != out.n.size()) {
    return Status::InvalidArgument("dist.stats arrays disagree on length");
  }
  out.agg = AggregateFromJson(reply.Find("agg"));
  return out;
}

Result<ReportReply> ParseReportReply(const Json& reply) {
  if (!reply.GetBool("ok", false)) return WorkerError(reply);
  ReportReply out;
  out.recorded = reply.GetBool("recorded", false);
  out.agg = AggregateFromJson(reply.Find("agg"));
  return out;
}

}  // namespace dist
}  // namespace exsample
