#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

namespace exsample {
namespace dist {
namespace {

/// Domain-separation constant for the coordinator's RNG stream, so the
/// shard-level draws never alias a worker's JobSeed streams even when the
/// coordinator and the workers share one user-facing seed.
constexpr uint64_t kCoordinatorStream = 0xD157C00Dull;

/// Worker failures are transport-level: a torn connection (Unavailable) or
/// a wedged peer (DeadlineExceeded). Anything else — a worker-side protocol
/// error, a malformed reply — is a bug, not a failure to route around, but
/// the coordinator still routes around it (capped by the retry waves and
/// the give-up clock) rather than crash-looping a live query.
bool IsTimeout(const Status& status) {
  return status.code() == Status::Code::kDeadlineExceeded;
}

double CostPerFrame(const ShardAggregate& agg) {
  if (agg.n <= 0 || agg.cost_seconds <= 0.0) return 1.0;
  return agg.cost_seconds / static_cast<double>(agg.n);
}

}  // namespace

// --- LocalShardBackend

LocalShardBackend::LocalShardBackend(Options options)
    : pool_(options.seed) {
  if (options.num_workers < 1) options.num_workers = 1;
  workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->cache = std::make_unique<serve::StatsCache>();
    worker->state = std::make_unique<WorkerState>(
        &pool_, worker->cache.get(), options.seed, options.default_scale);
    workers_.push_back(std::move(worker));
  }
}

LocalShardBackend::~LocalShardBackend() = default;

serve::StatsCache* LocalShardBackend::worker_cache(int worker) {
  return workers_[static_cast<size_t>(worker)]->cache.get();
}

Result<Json> LocalShardBackend::Call(int32_t shard, const Json& request) {
  Worker* worker = workers_[static_cast<size_t>(WorkerOf(shard))].get();
  std::lock_guard<std::mutex> lock(worker->mu);
  Json reply = worker->state->Handle(request.GetString("cmd", ""), request);
  // Round-trip through the serialized form so the local reference decodes
  // exactly the bytes a TCP worker would have sent — number formatting
  // included. Local-vs-remote bit-equality is pinned on this.
  return Json::Parse(reply.Dump());
}

Result<OpenReply> LocalShardBackend::Open(int32_t shard,
                                          const ShardSpec& spec) {
  if (dist_ids_.size() <= static_cast<size_t>(shard)) {
    dist_ids_.resize(static_cast<size_t>(shard) + 1, 0);
  }
  auto reply = Call(shard, OpenRequest(spec));
  if (!reply.ok()) return reply.status();
  auto parsed = ParseOpenReply(reply.value());
  if (parsed.ok()) dist_ids_[static_cast<size_t>(shard)] = parsed.value().dist_id;
  return parsed;
}

Result<PickReply> LocalShardBackend::Pick(int32_t shard, int64_t frames) {
  auto reply = Call(shard, PickRequest(dist_ids_[static_cast<size_t>(shard)],
                                       frames));
  if (!reply.ok()) return reply.status();
  return ParsePickReply(reply.value(),
                        static_cast<detect::ClassId>(
                            reply.value().GetInt("class_id", 0)));
}

Result<StatsReply> LocalShardBackend::Stats(int32_t shard) {
  auto reply = Call(shard, StatsRequest(dist_ids_[static_cast<size_t>(shard)]));
  if (!reply.ok()) return reply.status();
  return ParseStatsReply(reply.value());
}

Result<ReportReply> LocalShardBackend::Report(int32_t shard) {
  auto reply = Call(shard, ReportRequest(dist_ids_[static_cast<size_t>(shard)]));
  if (!reply.ok()) return reply.status();
  return ParseReportReply(reply.value());
}

Status LocalShardBackend::Revive(int /*worker*/) { return Status::Ok(); }

// --- ClientShardBackend

ClientShardBackend::ClientShardBackend(std::vector<Endpoint> endpoints,
                                       Options options)
    : options_(options) {
  workers_.reserve(endpoints.size());
  for (Endpoint& endpoint : endpoints) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = std::move(endpoint);
    workers_.push_back(std::move(worker));
  }
}

Status ClientShardBackend::ConnectLocked(Worker* worker) {
  auto connected = net::Client::Connect(worker->endpoint.host,
                                        worker->endpoint.port,
                                        options_.connect_timeout_seconds);
  if (!connected.ok()) {
    // A refused or unreachable endpoint is a worker that may come back.
    if (connected.status().code() == Status::Code::kDeadlineExceeded) {
      return connected.status();
    }
    return Status::Unavailable(connected.status().message());
  }
  worker->client = std::move(connected).value();
  return Status::Ok();
}

Status ClientShardBackend::ConnectAll() {
  Status first = Status::Ok();
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (worker->client.connected()) continue;
    Status status = ConnectLocked(worker.get());
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

bool ClientShardBackend::worker_connected(int worker) {
  Worker* w = workers_[static_cast<size_t>(worker)].get();
  std::lock_guard<std::mutex> lock(w->mu);
  return w->client.connected();
}

Result<Json> ClientShardBackend::Call(int32_t shard, const Json& request) {
  Worker* worker = workers_[static_cast<size_t>(WorkerOf(shard))].get();
  std::lock_guard<std::mutex> lock(worker->mu);
  if (!worker->client.connected()) {
    return Status::Unavailable("worker " + std::to_string(WorkerOf(shard)) +
                               " is not connected");
  }
  auto reply = worker->client.CallWithTimeout(request,
                                              options_.rpc_timeout_seconds);
  if (!reply.ok()) {
    // Torn connection: gone for sure. Timeout: the connection may still
    // deliver the stale response later, which would desync every future
    // exchange on it — drop it either way; Revive() reconnects.
    worker->client.Close();
  }
  return reply;
}

Result<OpenReply> ClientShardBackend::Open(int32_t shard,
                                           const ShardSpec& spec) {
  if (dist_ids_.size() <= static_cast<size_t>(shard)) {
    dist_ids_.resize(static_cast<size_t>(shard) + 1, 0);
  }
  {
    // First use connects lazily, so Open works without ConnectAll().
    Worker* worker = workers_[static_cast<size_t>(WorkerOf(shard))].get();
    std::lock_guard<std::mutex> lock(worker->mu);
    if (!worker->client.connected()) {
      Status status = ConnectLocked(worker);
      if (!status.ok()) return status;
    }
  }
  auto reply = Call(shard, OpenRequest(spec));
  if (!reply.ok()) return reply.status();
  auto parsed = ParseOpenReply(reply.value());
  if (parsed.ok()) dist_ids_[static_cast<size_t>(shard)] = parsed.value().dist_id;
  return parsed;
}

Result<PickReply> ClientShardBackend::Pick(int32_t shard, int64_t frames) {
  auto reply = Call(shard, PickRequest(dist_ids_[static_cast<size_t>(shard)],
                                       frames));
  if (!reply.ok()) return reply.status();
  return ParsePickReply(reply.value(),
                        static_cast<detect::ClassId>(
                            reply.value().GetInt("class_id", 0)));
}

Result<StatsReply> ClientShardBackend::Stats(int32_t shard) {
  auto reply = Call(shard, StatsRequest(dist_ids_[static_cast<size_t>(shard)]));
  if (!reply.ok()) return reply.status();
  return ParseStatsReply(reply.value());
}

Result<ReportReply> ClientShardBackend::Report(int32_t shard) {
  auto reply = Call(shard, ReportRequest(dist_ids_[static_cast<size_t>(shard)]));
  if (!reply.ok()) return reply.status();
  return ParseReportReply(reply.value());
}

Status ClientShardBackend::Revive(int worker) {
  Worker* w = workers_[static_cast<size_t>(worker)].get();
  std::lock_guard<std::mutex> lock(w->mu);
  w->client.Close();
  return ConnectLocked(w);
}

// --- Coordinator

Coordinator::Coordinator(ShardBackend* backend, CoordinatorOptions options)
    : backend_(backend), options_(std::move(options)),
      belief_(options_.belief),
      rng_(SplitMix64(options_.seed ^ kCoordinatorStream).Next()),
      rows_(static_cast<size_t>(options_.num_shards)),
      available_(options_.num_shards, options_.num_shards),
      workers_(static_cast<size_t>(backend->num_workers())) {
  if (options_.metrics != nullptr) {
    obs::Registry* r = options_.metrics;
    const size_t shards = static_cast<size_t>(options_.num_shards);
    const size_t nw = workers_.size();
    m_picks_ = r->GetCounter("dist.picks", shards);
    m_pick_frames_ = r->GetCounter("dist.pick_frames", shards);
    m_results_ = r->GetCounter("dist.results");
    m_retries_ = r->GetCounter("dist.retries");
    m_rpc_timeouts_ = r->GetCounter("dist.rpc_timeouts");
    m_rpc_disconnects_ = r->GetCounter("dist.rpc_disconnects");
    m_rejoins_ = r->GetCounter("dist.rejoins");
    m_shards_unavailable_ = r->GetGauge("dist.shards_unavailable");
    m_rpc_seconds_ = r->GetHistogram("dist.rpc_seconds", nw);
  }
}

double Coordinator::MonotonicSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Coordinator::OpenAll() {
  if (opened_) return Status::Ok();
  int32_t open = 0;
  for (int32_t s = 0; s < options_.num_shards; ++s) {
    const int worker = backend_->WorkerOf(s);
    if (!workers_[static_cast<size_t>(worker)].up) {
      available_.Clear(s);
      continue;
    }
    ShardSpec spec = options_.shard;
    spec.shard_index = s;
    spec.num_shards = options_.num_shards;
    spec.seed_tag = s;
    auto reply = backend_->Open(s, spec);
    if (reply.ok()) {
      rows_[static_cast<size_t>(s)].open = true;
      rows_[static_cast<size_t>(s)].agg = reply.value().agg;
      ++open;
      continue;
    }
    const Status& status = reply.status();
    if (status.code() == Status::Code::kUnavailable ||
        status.code() == Status::Code::kDeadlineExceeded) {
      MarkWorkerDown(worker, status);
      continue;
    }
    return status;  // bad spec / protocol error: fatal, not routable
  }
  if (open == 0) {
    return Status::Unavailable("no shard could be opened (" +
                               std::to_string(options_.num_shards) +
                               " shards, all workers failed)");
  }
  opened_ = true;
  return Status::Ok();
}

int32_t Coordinator::SampleShard() {
  if (available_.empty()) return -1;
  if (options_.shard_policy == core::PolicyKind::kUniform) {
    return static_cast<int32_t>(available_.SelectNth(static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(available_.available())))));
  }
  const bool ucb = options_.shard_policy == core::PolicyKind::kBayesUcb ||
                   options_.shard_policy == core::PolicyKind::kHierBayesUcb;
  // Same quantile schedule as BayesUcbPolicy, with t = shard picks issued.
  const double q = 1.0 - 1.0 / (static_cast<double>(picks_issued_) + 2.0);
  int32_t best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t ties = 0;
  available_.ForEachAvailable([&](video::ChunkId s) {
    const ShardAggregate& agg = rows_[static_cast<size_t>(s)].agg;
    double score = ucb ? belief_.Quantile(agg.n1, agg.n, q)
                       : belief_.Sample(agg.n1, agg.n, &rng_);
    if (options_.cost_aware) score /= CostPerFrame(agg);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int32_t>(s);
      ties = 1;
    } else if (score == best_score) {
      ++ties;
      if (rng_.NextBounded(static_cast<uint64_t>(ties)) == 0) {
        best = static_cast<int32_t>(s);
      }
    }
  });
  return best;
}

void Coordinator::MergeReply(const Budget& budget, const PickReply& reply) {
  Row& row = rows_[static_cast<size_t>(budget.shard)];
  row.agg = reply.agg;
  row.picks += budget.picks;
  row.frames_processed = reply.frames_processed;
  row.cost_seconds = reply.cost_seconds;
  row.results += static_cast<int64_t>(reply.new_results.size());
  results_.insert(results_.end(), reply.new_results.begin(),
                  reply.new_results.end());
  if (!reply.running) {
    row.exhausted = true;
    available_.Clear(budget.shard);
  }
  if (m_picks_ != nullptr) {
    m_picks_->Add(budget.picks, static_cast<size_t>(budget.shard));
    m_pick_frames_->Add(budget.frames, static_cast<size_t>(budget.shard));
    m_results_->Add(static_cast<int64_t>(reply.new_results.size()));
  }
}

void Coordinator::MarkWorkerDown(int worker, const Status& status) {
  if (IsTimeout(status)) {
    ++rpc_timeouts_;
    if (m_rpc_timeouts_ != nullptr) m_rpc_timeouts_->Add(1);
  } else {
    ++rpc_disconnects_;
    if (m_rpc_disconnects_ != nullptr) m_rpc_disconnects_->Add(1);
  }
  WorkerHealth& health = workers_[static_cast<size_t>(worker)];
  const double now = MonotonicSeconds();
  if (health.up) {
    health.up = false;
    health.down_since = now;
    health.backoff = options_.rejoin_backoff_seconds;
    health.next_attempt = now + health.backoff;
  }
  for (int32_t s = 0; s < options_.num_shards; ++s) {
    if (backend_->WorkerOf(s) != worker) continue;
    if (available_.Test(s)) available_.Clear(s);
    rows_[static_cast<size_t>(s)].open = false;
  }
  if (m_shards_unavailable_ != nullptr) {
    int64_t unavailable = 0;
    for (int32_t s = 0; s < options_.num_shards; ++s) {
      if (!rows_[static_cast<size_t>(s)].exhausted && !available_.Test(s)) {
        ++unavailable;
      }
    }
    m_shards_unavailable_->Set(unavailable);
  }
}

void Coordinator::TryRejoin() {
  if (!options_.rejoin) return;
  const double now = MonotonicSeconds();
  for (size_t w = 0; w < workers_.size(); ++w) {
    WorkerHealth& health = workers_[w];
    if (health.up || now < health.next_attempt) continue;
    Status revived = backend_->Revive(static_cast<int>(w));
    if (!revived.ok()) {
      health.backoff = std::min(health.backoff * 2.0, 5.0);
      health.next_attempt = now + health.backoff;
      continue;
    }
    health.up = true;
    for (int32_t s = 0; s < options_.num_shards; ++s) {
      if (backend_->WorkerOf(s) != static_cast<int>(w)) continue;
      Row& row = rows_[static_cast<size_t>(s)];
      if (row.exhausted) continue;
      ShardSpec spec = options_.shard;
      spec.shard_index = s;
      spec.num_shards = options_.num_shards;
      spec.seed_tag = s;
      // The rejoin resumes from whatever the worker persisted on its way
      // down; a cold cache just reopens cold.
      spec.warm_start = true;
      auto reply = backend_->Open(s, spec);
      if (!reply.ok()) {
        MarkWorkerDown(static_cast<int>(w), reply.status());
        break;
      }
      row.open = true;
      row.agg = reply.value().agg;
      available_.Set(s);
      ++rejoins_;
      if (m_rejoins_ != nullptr) m_rejoins_->Add(1);
    }
    if (m_shards_unavailable_ != nullptr && health.up) {
      int64_t unavailable = 0;
      for (int32_t s = 0; s < options_.num_shards; ++s) {
        if (!rows_[static_cast<size_t>(s)].exhausted &&
            !available_.Test(s)) {
          ++unavailable;
        }
      }
      m_shards_unavailable_->Set(unavailable);
    }
  }
}

std::vector<Coordinator::Budget> Coordinator::DispatchWave(
    const std::vector<Budget>& wave) {
  // Group the wave by hosting worker; shards of one worker go down one
  // connection sequentially, different workers in parallel.
  std::vector<std::vector<size_t>> by_worker(workers_.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    by_worker[static_cast<size_t>(backend_->WorkerOf(wave[i].shard))]
        .push_back(i);
  }
  std::vector<std::optional<Result<PickReply>>> replies(wave.size());
  auto run_worker = [&](size_t w) {
    for (size_t i : by_worker[w]) {
      const auto started = std::chrono::steady_clock::now();
      replies[i].emplace(backend_->Pick(wave[i].shard, wave[i].frames));
      if (m_rpc_seconds_ != nullptr) {
        m_rpc_seconds_->Observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count(),
            w);
      }
    }
  };
  std::vector<size_t> active;
  for (size_t w = 0; w < by_worker.size(); ++w) {
    if (!by_worker[w].empty()) active.push_back(w);
  }
  if (active.size() == 1) {
    run_worker(active[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (size_t w : active) threads.emplace_back(run_worker, w);
    for (std::thread& t : threads) t.join();
  }

  // Merge in ascending shard order (the wave is built ascending), so the
  // result stream is independent of which worker replied first.
  std::vector<Budget> failed;
  for (size_t i = 0; i < wave.size(); ++i) {
    Result<PickReply>& reply = *replies[i];
    if (reply.ok()) {
      MergeReply(wave[i], reply.value());
    } else {
      MarkWorkerDown(backend_->WorkerOf(wave[i].shard), reply.status());
      failed.push_back(wave[i]);
    }
  }
  return failed;
}

Result<CoordinatorResult> Coordinator::Run() {
  Status opened = OpenAll();
  if (!opened.ok()) return opened;

  CoordinatorResult out;
  const int64_t limit = options_.result_limit;
  std::string stop_reason;
  std::vector<int64_t> frames(static_cast<size_t>(options_.num_shards));
  std::vector<int64_t> picks(static_cast<size_t>(options_.num_shards));

  while (true) {
    if (limit > 0 &&
        static_cast<int64_t>(results_.size()) >= limit) {
      stop_reason = "limit";
      break;
    }
    bool all_exhausted = true;
    for (const Row& row : rows_) all_exhausted &= row.exhausted;
    if (all_exhausted) {
      stop_reason = "exhausted";
      break;
    }
    if (options_.max_rounds > 0 && out.rounds >= options_.max_rounds) {
      stop_reason = "max_rounds";
      break;
    }
    TryRejoin();
    if (!AnyShardAvailable()) {
      const double now = MonotonicSeconds();
      if (no_shard_since_ < 0.0) no_shard_since_ = now;
      if (!options_.rejoin ||
          now - no_shard_since_ > options_.unavailable_give_up_seconds) {
        stop_reason = "unavailable";
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    no_shard_since_ = -1.0;

    // Draw this round's shard choices and fold them into budgets.
    std::fill(frames.begin(), frames.end(), 0);
    std::fill(picks.begin(), picks.end(), 0);
    for (int32_t p = 0; p < options_.picks_per_round; ++p) {
      const int32_t s = SampleShard();
      if (s < 0) break;
      frames[static_cast<size_t>(s)] += options_.frames_per_pick;
      picks[static_cast<size_t>(s)] += 1;
      ++picks_issued_;
    }
    std::vector<Budget> wave;
    for (int32_t s = 0; s < options_.num_shards; ++s) {
      if (picks[static_cast<size_t>(s)] > 0) {
        wave.push_back(Budget{s, frames[static_cast<size_t>(s)],
                              picks[static_cast<size_t>(s)]});
      }
    }
    if (wave.empty()) continue;

    // Dispatch, then re-sample failed picks against survivors with
    // exponential backoff.
    int32_t wave_num = 0;
    std::vector<Budget> failed = DispatchWave(wave);
    while (!failed.empty() && wave_num < options_.max_retry_waves &&
           AnyShardAvailable()) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.retry_backoff_seconds * static_cast<double>(1 << wave_num)));
      ++wave_num;
      std::fill(frames.begin(), frames.end(), 0);
      std::fill(picks.begin(), picks.end(), 0);
      int64_t moved = 0;
      for (const Budget& lost : failed) {
        for (int64_t p = 0; p < lost.picks; ++p) {
          const int32_t s = SampleShard();
          if (s < 0) break;
          frames[static_cast<size_t>(s)] += options_.frames_per_pick;
          picks[static_cast<size_t>(s)] += 1;
          ++moved;
        }
      }
      retries_ += moved;
      if (m_retries_ != nullptr) m_retries_->Add(moved);
      std::vector<Budget> retry_wave;
      for (int32_t s = 0; s < options_.num_shards; ++s) {
        if (picks[static_cast<size_t>(s)] > 0) {
          retry_wave.push_back(Budget{s, frames[static_cast<size_t>(s)],
                                      picks[static_cast<size_t>(s)]});
        }
      }
      if (retry_wave.empty()) break;
      failed = DispatchWave(retry_wave);
    }
    ++out.rounds;
  }

  ReportAll();

  out.results = results_;
  if (limit > 0 && static_cast<int64_t>(out.results.size()) > limit) {
    out.results.resize(static_cast<size_t>(limit));
  }
  out.picks = picks_issued_;
  out.retries = retries_;
  out.rpc_timeouts = rpc_timeouts_;
  out.rpc_disconnects = rpc_disconnects_;
  out.rejoins = rejoins_;
  out.stop_reason = stop_reason;
  for (int32_t s = 0; s < options_.num_shards; ++s) {
    const Row& row = rows_[static_cast<size_t>(s)];
    ShardOutcome outcome;
    outcome.shard = s;
    outcome.worker = backend_->WorkerOf(s);
    outcome.picks = row.picks;
    outcome.frames = row.frames_processed;
    outcome.results = row.results;
    outcome.exhausted = row.exhausted;
    outcome.available = available_.Test(s);
    outcome.agg = row.agg;
    out.shards.push_back(outcome);
    out.frames_processed += row.frames_processed;
    out.cost_seconds += row.cost_seconds;
  }
  return out;
}

void Coordinator::ReportAll() {
  for (int32_t s = 0; s < options_.num_shards; ++s) {
    Row& row = rows_[static_cast<size_t>(s)];
    if (!row.open) continue;
    if (!workers_[static_cast<size_t>(backend_->WorkerOf(s))].up) continue;
    auto reply = backend_->Report(s);
    if (reply.ok()) row.agg = reply.value().agg;
  }
}

}  // namespace dist
}  // namespace exsample
