// Chunked sampling simulation reproducing the §IV studies (Figures 3, 4):
// N instances with LogNormal durations placed on an F-frame axis with
// controllable skew, split into M chunks, sampled by the real core policies
// (Thompson et al.) or by random/weighted baselines — but without video,
// detector, or tracker overhead, so paper-scale axes (16M frames) run fast.
//
// Frame draws are uniform-with-replacement within the selected chunk,
// matching the closed forms N(n) = sum_i 1 - (1 - p_i w)^n the dashed
// benchmark lines are computed from.

#ifndef EXSAMPLE_SIM_CHUNKED_SIM_H_
#define EXSAMPLE_SIM_CHUNKED_SIM_H_

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "core/query.h"
#include "optimal/weights.h"
#include "util/rng.h"

namespace exsample {
namespace sim {

/// One simulated instance: a visibility interval on the frame axis.
struct SimInstance {
  int64_t start = 0;
  int64_t duration = 1;

  int64_t end() const { return start + duration; }
  bool VisibleAt(int64_t frame) const {
    return frame >= start && frame < end();
  }
};

/// A generated workload.
struct SimWorkload {
  int64_t num_frames = 0;
  std::vector<SimInstance> instances;
};

/// Workload generator parameters mirroring §IV-B: durations ~ LogNormal
/// with the given mean (sigma chosen so a mean of 700 spans ~50..5000), and
/// placement either uniform (skew_fraction = 0) or Normal with 95% of mass
/// inside the central `skew_fraction` of the axis (1/4, 1/32, 1/256 in the
/// paper's grid).
struct WorkloadParams {
  int64_t num_instances = 2000;
  int64_t num_frames = 16'000'000;
  double mean_duration = 700.0;
  double duration_sigma_log = 0.75;
  /// 0 = uniform placement; otherwise the central fraction holding ~95%.
  double skew_fraction = 0.0;
};

/// Generates a workload (deterministic in rng state).
SimWorkload MakeWorkload(const WorkloadParams& params, Rng* rng);

/// Sampling strategies for the simulation.
enum class SimStrategy {
  kExSample,   // Thompson (or configured policy) over M uniform chunks
  kRandom,     // uniform over the whole axis
  kWeighted,   // static chunk weights (for validating Eq IV.1 solutions)
};

/// Trial configuration.
struct SimConfig {
  SimStrategy strategy = SimStrategy::kExSample;
  int32_t num_chunks = 128;
  core::PolicyKind policy = core::PolicyKind::kThompson;
  core::BeliefParams belief;
  /// Weights for kWeighted (size num_chunks, summing to 1).
  std::vector<double> weights;
  int64_t max_samples = 30000;
};

/// Runs one trial; returns the distinct-instances-found trajectory.
core::Trajectory RunSimTrial(const SimWorkload& workload,
                             const SimConfig& config, Rng* rng);

/// Converts the workload to the sparse p_ij representation of Eq IV.1 for M
/// uniform chunks.
std::vector<optimal::SparseProbs> WorkloadChunkProbs(
    const SimWorkload& workload, int32_t num_chunks);

/// Sizes of M uniform chunks over the workload's frame axis.
std::vector<int64_t> UniformChunkSizes(int64_t num_frames, int32_t num_chunks);

}  // namespace sim
}  // namespace exsample

#endif  // EXSAMPLE_SIM_CHUNKED_SIM_H_
