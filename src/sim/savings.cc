#include "sim/savings.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace exsample {
namespace sim {

TrialBand SummarizeTrials(const std::vector<core::Trajectory>& trials,
                          const std::vector<int64_t>& grid) {
  assert(!trials.empty());
  TrialBand band;
  band.grid = grid;
  band.p25.reserve(grid.size());
  band.p50.reserve(grid.size());
  band.p75.reserve(grid.size());
  std::vector<double> counts(trials.size());
  for (int64_t g : grid) {
    for (size_t t = 0; t < trials.size(); ++t) {
      counts[t] = static_cast<double>(trials[t].CountAt(g));
    }
    band.p25.push_back(Percentile(counts, 0.25));
    band.p50.push_back(Percentile(counts, 0.50));
    band.p75.push_back(Percentile(counts, 0.75));
  }
  return band;
}

std::vector<int64_t> LogGrid(int64_t max, int points_per_decade) {
  assert(max >= 1 && points_per_decade >= 1);
  std::vector<int64_t> grid;
  double x = 1.0;
  const double factor = std::pow(10.0, 1.0 / points_per_decade);
  while (x <= static_cast<double>(max)) {
    int64_t v = static_cast<int64_t>(std::llround(x));
    if (grid.empty() || v > grid.back()) grid.push_back(v);
    x *= factor;
  }
  if (grid.empty() || grid.back() != max) grid.push_back(max);
  return grid;
}

int64_t MedianSamplesToReach(const std::vector<core::Trajectory>& trials,
                             int64_t count) {
  assert(!trials.empty());
  std::vector<int64_t> samples;
  samples.reserve(trials.size());
  for (const auto& t : trials) {
    int64_t s = t.SamplesToReach(count);
    samples.push_back(s < 0 ? INT64_MAX : s);
  }
  std::sort(samples.begin(), samples.end());
  int64_t med = samples[samples.size() / 2];
  return med == INT64_MAX ? -1 : med;
}

double SavingsAtCount(const std::vector<core::Trajectory>& fast,
                      const std::vector<core::Trajectory>& slow,
                      int64_t count) {
  int64_t f = MedianSamplesToReach(fast, count);
  int64_t s = MedianSamplesToReach(slow, count);
  if (f <= 0 || s < 0) return 0.0;
  return static_cast<double>(s) / static_cast<double>(f);
}

}  // namespace sim
}  // namespace exsample
