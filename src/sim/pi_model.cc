#include "sim/pi_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/distributions.h"

namespace exsample {
namespace sim {

std::vector<double> GenerateLogNormalPs(int64_t count, double mean_p,
                                        double std_p, double max_p, Rng* rng) {
  assert(count > 0 && mean_p > 0.0 && std_p > 0.0 && max_p > 0.0);
  // LogNormal(mu, s) with arithmetic mean m and std s_p:
  //   s^2 = ln(1 + s_p^2/m^2),  mu = ln(m) - s^2/2.
  const double s2 = std::log(1.0 + (std_p * std_p) / (mean_p * mean_p));
  const double mu = std::log(mean_p) - s2 / 2.0;
  const double s = std::sqrt(s2);
  std::vector<double> ps(static_cast<size_t>(count));
  for (auto& p : ps) {
    p = std::min(max_p, SampleLogNormal(rng, mu, s));
  }
  return ps;
}

namespace {

// Number of Bernoulli(p) trials up to and including the first success:
// Geometric on {1, 2, ...} via inversion.
int64_t SampleGeometric(double p, Rng* rng) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u;
  do {
    u = rng->NextDouble();
  } while (u == 0.0);
  double g = std::ceil(std::log(u) / std::log1p(-p));
  if (g < 1.0) g = 1.0;
  // Cap to avoid overflow for vanishing p; 2^62 samples is "never".
  if (g > 4.6e18) g = 4.6e18;
  return static_cast<int64_t>(g);
}

}  // namespace

std::vector<PiObservation> RunPiReplication(
    const std::vector<double>& ps, const std::vector<int64_t>& query_ns,
    Rng* rng) {
  assert(std::is_sorted(query_ns.begin(), query_ns.end()));
  std::vector<PiObservation> out(query_ns.size());
  for (size_t k = 0; k < query_ns.size(); ++k) out[k].n = query_ns[k];

  for (double p : ps) {
    const int64_t first = SampleGeometric(p, rng);
    const int64_t second = first + SampleGeometric(p, rng);
    for (size_t k = 0; k < query_ns.size(); ++k) {
      const int64_t n = query_ns[k];
      if (first > n) {
        out[k].r_next += p;  // still unseen after n samples
      } else if (second > n) {
        ++out[k].n1;  // seen exactly once
      }
    }
  }
  return out;
}

ConditionalR CollectConditionalR(const std::vector<double>& ps,
                                 const std::vector<int64_t>& query_ns,
                                 int64_t reps, Rng* rng) {
  ConditionalR by_n;
  for (int64_t r = 0; r < reps; ++r) {
    Rng rep_rng = rng->Fork();
    for (const PiObservation& obs : RunPiReplication(ps, query_ns, &rep_rng)) {
      by_n[obs.n][obs.n1].push_back(obs.r_next);
    }
  }
  return by_n;
}

}  // namespace sim
}  // namespace exsample
