// The pure per-instance probability model of §III-D: each result instance i
// has a hidden per-frame probability p_i; sampling a frame reveals instance
// i independently with probability p_i. Used to validate the estimator
// R̂ = N1/n (Eq III.1) and the Gamma belief (Eq III.4) exactly as the paper
// does for Figure 2.
//
// Instead of simulating every frame draw (10k reps x 180k samples x 1000
// instances in the paper), each replication samples, per instance, the
// sample-index of its first and second sighting directly from Geometric
// distributions — an exact, exponentially faster equivalent:
//   N1(n)   = #{i : first_i <= n < second_i}
//   R(n+1)  = sum_i p_i [first_i > n]

#ifndef EXSAMPLE_SIM_PI_MODEL_H_
#define EXSAMPLE_SIM_PI_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

namespace exsample {
namespace sim {

/// Generates `count` occurrence probabilities from a LogNormal calibrated to
/// the given mean and standard deviation of the p-values themselves (the
/// paper uses mean 3e-3, std 8e-3, min ~3e-6, max ~0.15), clamped to
/// (0, max_p].
std::vector<double> GenerateLogNormalPs(int64_t count, double mean_p,
                                        double std_p, double max_p, Rng* rng);

/// Observed state of one replication at a queried sample count n.
struct PiObservation {
  int64_t n = 0;
  /// Instances seen exactly once within the first n samples.
  int64_t n1 = 0;
  /// True expected new-result mass for the next sample:
  /// R(n+1) = sum of p_i over still-unseen instances.
  double r_next = 0.0;
};

/// Runs one replication and reports the observation at each queried n
/// (query_ns must be sorted ascending).
std::vector<PiObservation> RunPiReplication(const std::vector<double>& ps,
                                            const std::vector<int64_t>& query_ns,
                                            Rng* rng);

/// Figure 2 data: conditional samples of the true R(n+1) given the observed
/// (n, N1) pair, collected across replications. Keyed by queried n, then by
/// observed N1.
using ConditionalR =
    std::map<int64_t, std::map<int64_t, std::vector<double>>>;

/// Collects `reps` replications' observations.
ConditionalR CollectConditionalR(const std::vector<double>& ps,
                                 const std::vector<int64_t>& query_ns,
                                 int64_t reps, Rng* rng);

}  // namespace sim
}  // namespace exsample

#endif  // EXSAMPLE_SIM_PI_MODEL_H_
