#include "sim/chunked_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "util/distributions.h"

namespace exsample {
namespace sim {

SimWorkload MakeWorkload(const WorkloadParams& params, Rng* rng) {
  assert(params.num_instances > 0 && params.num_frames > 0);
  assert(params.mean_duration >= 1.0);
  SimWorkload w;
  w.num_frames = params.num_frames;
  w.instances.reserve(static_cast<size_t>(params.num_instances));

  const double s = params.duration_sigma_log;
  const double mu = std::log(params.mean_duration) - s * s / 2.0;
  // 95% of a Normal is within +/- 2 sigma; the central fraction c therefore
  // corresponds to sigma = c * F / 4.
  const double sigma_frames = params.skew_fraction > 0.0
                                  ? params.skew_fraction *
                                        static_cast<double>(params.num_frames) /
                                        4.0
                                  : 0.0;

  for (int64_t i = 0; i < params.num_instances; ++i) {
    SimInstance inst;
    double d = SampleLogNormal(rng, mu, s);
    inst.duration = std::max<int64_t>(1, static_cast<int64_t>(std::llround(d)));
    inst.duration = std::min(inst.duration, params.num_frames);

    int64_t mid;
    if (params.skew_fraction <= 0.0) {
      mid = static_cast<int64_t>(
          rng->NextBounded(static_cast<uint64_t>(params.num_frames)));
    } else {
      for (;;) {
        double f = SampleNormal(
            rng, static_cast<double>(params.num_frames) / 2.0, sigma_frames);
        if (f >= 0.0 && f < static_cast<double>(params.num_frames)) {
          mid = static_cast<int64_t>(f);
          break;
        }
      }
    }
    inst.start = std::clamp<int64_t>(mid - inst.duration / 2, 0,
                                     params.num_frames - inst.duration);
    w.instances.push_back(inst);
  }
  return w;
}

std::vector<int64_t> UniformChunkSizes(int64_t num_frames,
                                       int32_t num_chunks) {
  std::vector<int64_t> sizes(static_cast<size_t>(num_chunks));
  for (int32_t j = 0; j < num_chunks; ++j) {
    int64_t lo = num_frames * j / num_chunks;
    int64_t hi = num_frames * (j + 1) / num_chunks;
    sizes[static_cast<size_t>(j)] = hi - lo;
  }
  return sizes;
}

std::vector<optimal::SparseProbs> WorkloadChunkProbs(
    const SimWorkload& workload, int32_t num_chunks) {
  std::vector<optimal::SparseProbs> out;
  out.reserve(workload.instances.size());
  const int64_t f_total = workload.num_frames;
  for (const auto& inst : workload.instances) {
    optimal::SparseProbs row;
    // Chunks overlapping [start, end): j spans [F j / M, F (j+1) / M).
    int32_t j0 = static_cast<int32_t>(inst.start * num_chunks / f_total);
    int32_t j1 =
        static_cast<int32_t>((inst.end() - 1) * num_chunks / f_total);
    for (int32_t j = j0; j <= j1 && j < num_chunks; ++j) {
      int64_t lo = f_total * j / num_chunks;
      int64_t hi = f_total * (j + 1) / num_chunks;
      int64_t overlap =
          std::min(hi, inst.end()) - std::max(lo, inst.start);
      if (overlap > 0) {
        row.emplace_back(j, static_cast<double>(overlap) /
                                static_cast<double>(hi - lo));
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

namespace {

// Interval index over instances: bucketed by frame for O(bucket) visibility
// lookups on a 16M-frame axis.
class VisibilityIndex {
 public:
  VisibilityIndex(const SimWorkload& workload, int64_t bucket_frames)
      : workload_(workload), bucket_frames_(bucket_frames) {
    buckets_.resize(static_cast<size_t>(
        (workload.num_frames + bucket_frames_ - 1) / bucket_frames_));
    for (size_t i = 0; i < workload.instances.size(); ++i) {
      const auto& inst = workload.instances[i];
      int64_t b0 = inst.start / bucket_frames_;
      int64_t b1 = (inst.end() - 1) / bucket_frames_;
      for (int64_t b = b0; b <= b1; ++b) {
        buckets_[static_cast<size_t>(b)].push_back(static_cast<int32_t>(i));
      }
    }
  }

  // Indices of instances visible at `frame`.
  void VisibleAt(int64_t frame, std::vector<int32_t>* out) const {
    out->clear();
    for (int32_t i : buckets_[static_cast<size_t>(frame / bucket_frames_)]) {
      if (workload_.instances[static_cast<size_t>(i)].VisibleAt(frame)) {
        out->push_back(i);
      }
    }
  }

 private:
  const SimWorkload& workload_;
  int64_t bucket_frames_;
  std::vector<std::vector<int32_t>> buckets_;
};

}  // namespace

core::Trajectory RunSimTrial(const SimWorkload& workload,
                             const SimConfig& config, Rng* rng) {
  assert(config.num_chunks >= 1);
  assert(config.max_samples > 0);
  const int64_t f_total = workload.num_frames;
  const int32_t m = config.num_chunks;

  // Bucket size ~ mean spacing of instance starts, clamped for sanity.
  int64_t bucket = std::clamp<int64_t>(
      f_total / std::max<int64_t>(
                    1, static_cast<int64_t>(workload.instances.size())),
      64, 1 << 20);
  VisibilityIndex index(workload, bucket);

  core::ChunkStats stats(m);
  std::unique_ptr<core::ChunkPolicy> policy =
      core::MakePolicy(config.policy, config.belief);
  // Default group size on both sides keeps the stats arena and the index
  // aligned, so hierarchical policies work in the pure simulation too.
  core::AvailabilityIndex available(m);

  // Cumulative weights for kWeighted.
  std::vector<double> cum_weights;
  if (config.strategy == SimStrategy::kWeighted) {
    assert(config.weights.size() == static_cast<size_t>(m));
    cum_weights.resize(config.weights.size());
    double acc = 0.0;
    for (size_t j = 0; j < config.weights.size(); ++j) {
      acc += config.weights[j];
      cum_weights[j] = acc;
    }
    assert(std::abs(acc - 1.0) < 1e-6);
  }

  std::unordered_map<int32_t, int32_t> sightings;  // instance -> count
  int64_t distinct = 0;
  core::Trajectory traj;
  std::vector<int32_t> visible;

  for (int64_t sample = 1; sample <= config.max_samples; ++sample) {
    // Pick a chunk, then a frame uniformly inside it (with replacement).
    int32_t j = 0;
    int64_t frame = 0;
    switch (config.strategy) {
      case SimStrategy::kExSample:
        j = policy->Pick(stats, available, rng);
        break;
      case SimStrategy::kRandom:
        frame = static_cast<int64_t>(
            rng->NextBounded(static_cast<uint64_t>(f_total)));
        j = static_cast<int32_t>(frame * m / f_total);
        break;
      case SimStrategy::kWeighted: {
        double u = rng->NextDouble();
        j = static_cast<int32_t>(
            std::lower_bound(cum_weights.begin(), cum_weights.end(), u) -
            cum_weights.begin());
        if (j >= m) j = m - 1;
        break;
      }
    }
    if (config.strategy != SimStrategy::kRandom) {
      const int64_t lo = f_total * j / m;
      const int64_t hi = f_total * (j + 1) / m;
      frame = lo + static_cast<int64_t>(
                       rng->NextBounded(static_cast<uint64_t>(hi - lo)));
    }

    index.VisibleAt(frame, &visible);
    int64_t d0 = 0, d1 = 0;
    for (int32_t i : visible) {
      int32_t& count = sightings[i];
      if (count == 0) {
        ++d0;
        ++distinct;
      } else if (count == 1) {
        ++d1;
      }
      ++count;
    }
    stats.Update(j, d0, d1);
    if (d0 > 0) traj.Record(sample, distinct);
  }
  traj.Finish(config.max_samples);
  return traj;
}

}  // namespace sim
}  // namespace exsample
