// Multi-trial trajectory summaries and savings ratios — the measurements
// behind Figure 3's bands/labels and Figure 5's savings bars.

#ifndef EXSAMPLE_SIM_SAVINGS_H_
#define EXSAMPLE_SIM_SAVINGS_H_

#include <cstdint>
#include <vector>

#include "core/query.h"

namespace exsample {
namespace sim {

/// Percentile band of distinct-results counts over trials, evaluated on a
/// common sample grid.
struct TrialBand {
  std::vector<int64_t> grid;
  std::vector<double> p25;
  std::vector<double> p50;
  std::vector<double> p75;
};

/// Summarizes trials at the given grid points.
TrialBand SummarizeTrials(const std::vector<core::Trajectory>& trials,
                          const std::vector<int64_t>& grid);

/// Logarithmically spaced sample grid from 1 to max (inclusive-ish).
std::vector<int64_t> LogGrid(int64_t max, int points_per_decade = 12);

/// Median over trials of the samples needed to reach `count` results.
/// Trials that never reach it count as +infinity; returns -1 when the
/// median itself is unreached.
int64_t MedianSamplesToReach(const std::vector<core::Trajectory>& trials,
                             int64_t count);

/// Savings of `fast` over `slow` at a result count: median samples(slow) /
/// median samples(fast). Returns 0 when either side never reaches `count`.
double SavingsAtCount(const std::vector<core::Trajectory>& fast,
                      const std::vector<core::Trajectory>& slow,
                      int64_t count);

}  // namespace sim
}  // namespace exsample

#endif  // EXSAMPLE_SIM_SAVINGS_H_
