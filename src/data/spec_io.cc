#include "data/spec_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace exsample {
namespace data {
namespace {

const char* PlacementName(Placement p) {
  switch (p) {
    case Placement::kUniform:
      return "uniform";
    case Placement::kNormal:
      return "normal";
    case Placement::kRegions:
      return "regions";
  }
  return "uniform";
}

Result<Placement> PlacementFromName(const std::string& name) {
  if (name == "uniform") return Placement::kUniform;
  if (name == "normal") return Placement::kNormal;
  if (name == "regions") return Placement::kRegions;
  return Status::InvalidArgument("unknown placement: " + name);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses "a,b,c" into doubles.
Result<std::vector<double>> ParseDoubleList(const std::string& value) {
  std::vector<double> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Trim(item);
    if (item.empty()) continue;
    char* end = nullptr;
    double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad number in list: " + item);
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace

std::string SpecToText(const DatasetSpec& spec) {
  std::ostringstream out;
  out << "name = " << spec.name << "\n";
  out << "num_videos = " << spec.num_videos << "\n";
  out << "frames_per_video = " << spec.frames_per_video << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", spec.fps);
  out << "fps = " << buf << "\n";
  out << "chunk_frames = " << spec.chunk_frames << "\n";
  for (const auto& c : spec.classes) {
    out << "[class]\n";
    out << "class_id = " << c.class_id << "\n";
    out << "name = " << c.name << "\n";
    out << "num_instances = " << c.num_instances << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", c.mean_duration_frames);
    out << "mean_duration_frames = " << buf << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", c.duration_sigma_log);
    out << "duration_sigma_log = " << buf << "\n";
    out << "placement = " << PlacementName(c.placement) << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", c.center_fraction);
    out << "center_fraction = " << buf << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", c.stddev_fraction);
    out << "stddev_fraction = " << buf << "\n";
    if (!c.region_weights.empty()) {
      out << "region_weights = ";
      for (size_t i = 0; i < c.region_weights.size(); ++i) {
        if (i) out << ",";
        std::snprintf(buf, sizeof(buf), "%.17g", c.region_weights[i]);
        out << buf;
      }
      out << "\n";
    }
    std::snprintf(buf, sizeof(buf), "%.17g", c.sweep_pixels);
    out << "sweep_pixels = " << buf << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", c.mean_box_pixels);
    out << "mean_box_pixels = " << buf << "\n";
  }
  return out.str();
}

Result<DatasetSpec> SpecFromText(const std::string& text) {
  DatasetSpec spec;
  ClassSpec* current = nullptr;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    // Strip comments.
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line == "[class]") {
      spec.classes.emplace_back();
      current = &spec.classes.back();
      continue;
    }
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected key = value");
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    auto parse_i64 = [&](int64_t* out) -> Status {
      char* end = nullptr;
      *out = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": bad integer '" + value + "'");
      }
      return Status::Ok();
    };
    auto parse_f64 = [&](double* out) -> Status {
      char* end = nullptr;
      *out = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": bad number '" + value + "'");
      }
      return Status::Ok();
    };

    Status st;
    if (current == nullptr) {
      if (key == "name") {
        spec.name = value;
      } else if (key == "num_videos") {
        st = parse_i64(&spec.num_videos);
      } else if (key == "frames_per_video") {
        st = parse_i64(&spec.frames_per_video);
      } else if (key == "fps") {
        st = parse_f64(&spec.fps);
      } else if (key == "chunk_frames") {
        st = parse_i64(&spec.chunk_frames);
      } else {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unknown dataset key '" + key + "'");
      }
    } else {
      if (key == "class_id") {
        int64_t v;
        st = parse_i64(&v);
        current->class_id = static_cast<detect::ClassId>(v);
      } else if (key == "name") {
        current->name = value;
      } else if (key == "num_instances") {
        st = parse_i64(&current->num_instances);
      } else if (key == "mean_duration_frames") {
        st = parse_f64(&current->mean_duration_frames);
      } else if (key == "duration_sigma_log") {
        st = parse_f64(&current->duration_sigma_log);
      } else if (key == "placement") {
        auto p = PlacementFromName(value);
        if (!p.ok()) return p.status();
        current->placement = p.value();
      } else if (key == "center_fraction") {
        st = parse_f64(&current->center_fraction);
      } else if (key == "stddev_fraction") {
        st = parse_f64(&current->stddev_fraction);
      } else if (key == "region_weights") {
        auto weights = ParseDoubleList(value);
        if (!weights.ok()) return weights.status();
        current->region_weights = weights.value();
      } else if (key == "sweep_pixels") {
        st = parse_f64(&current->sweep_pixels);
      } else if (key == "mean_box_pixels") {
        st = parse_f64(&current->mean_box_pixels);
      } else {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unknown class key '" + key + "'");
      }
    }
    if (!st.ok()) return st;
  }
  if (spec.classes.empty()) {
    return Status::InvalidArgument("spec declares no [class] sections");
  }
  if (spec.num_videos < 1 || spec.frames_per_video < 1) {
    return Status::InvalidArgument("spec has no frames");
  }
  return spec;
}

Status SaveSpec(const DatasetSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << SpecToText(spec);
  return out.good() ? Status::Ok()
                    : Status::InvalidArgument("write failed: " + path);
}

Result<DatasetSpec> LoadSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return SpecFromText(buffer.str());
}

}  // namespace data
}  // namespace exsample
