#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/distributions.h"

namespace exsample {
namespace data {

const ClassSpec* Dataset::FindClass(const std::string& class_name) const {
  for (const auto& c : classes) {
    if (c.name == class_name) return &c;
  }
  return nullptr;
}

video::FrameId SamplePlacement(const ClassSpec& cls, int64_t total_frames,
                               Rng* rng) {
  switch (cls.placement) {
    case Placement::kUniform:
      return static_cast<video::FrameId>(
          rng->NextBounded(static_cast<uint64_t>(total_frames)));
    case Placement::kNormal: {
      // Rejection-sample into [0, total); the paper's §IV-B skew setup.
      for (;;) {
        double f = SampleNormal(rng, cls.center_fraction * total_frames,
                                cls.stddev_fraction * total_frames);
        if (f >= 0.0 && f < static_cast<double>(total_frames)) {
          return static_cast<video::FrameId>(f);
        }
      }
    }
    case Placement::kRegions: {
      assert(!cls.region_weights.empty());
      double total_w = 0.0;
      for (double w : cls.region_weights) {
        assert(w >= 0.0);
        total_w += w;
      }
      assert(total_w > 0.0);
      double u = rng->NextDouble() * total_w;
      size_t region = 0;
      for (; region + 1 < cls.region_weights.size(); ++region) {
        if (u < cls.region_weights[region]) break;
        u -= cls.region_weights[region];
      }
      const int64_t regions =
          static_cast<int64_t>(cls.region_weights.size());
      const int64_t lo = total_frames * static_cast<int64_t>(region) / regions;
      const int64_t hi =
          total_frames * (static_cast<int64_t>(region) + 1) / regions;
      return lo + static_cast<video::FrameId>(
                      rng->NextBounded(static_cast<uint64_t>(hi - lo)));
    }
  }
  return 0;
}

namespace {

// Duration ~ LogNormal with the requested arithmetic mean: if X ~
// LogNormal(mu, s) then E[X] = exp(mu + s^2/2), so mu = log(mean) - s^2/2.
int64_t SampleDuration(const ClassSpec& cls, int64_t total_frames, Rng* rng) {
  const double s = cls.duration_sigma_log;
  const double mu = std::log(cls.mean_duration_frames) - s * s / 2.0;
  double d = SampleLogNormal(rng, mu, s);
  int64_t frames = static_cast<int64_t>(std::llround(d));
  if (frames < 1) frames = 1;
  if (frames > total_frames) frames = total_frames;
  return frames;
}

ObjectInstance MakeInstance(const ClassSpec& cls, detect::InstanceId id,
                            int64_t total_frames, Rng* rng) {
  ObjectInstance inst;
  inst.id = id;
  inst.class_id = cls.class_id;
  inst.duration_frames = SampleDuration(cls, total_frames, rng);

  // Place by midpoint, clamped so the interval stays inside the dataset.
  video::FrameId mid = SamplePlacement(cls, total_frames, rng);
  video::FrameId start = mid - inst.duration_frames / 2;
  start = std::max<video::FrameId>(0, start);
  start = std::min<video::FrameId>(start, total_frames - inst.duration_frames);
  inst.start_frame = start;

  // Box: size ~ LogNormal around the class mean, placed inside a 1920x1080
  // viewport with margins.
  const double side =
      std::max(8.0, SampleLogNormal(rng, std::log(cls.mean_box_pixels), 0.4));
  inst.start_box.w = side;
  inst.start_box.h = side * (0.6 + 0.8 * rng->NextDouble());
  inst.start_box.x = rng->NextDouble() * (1920.0 - inst.start_box.w);
  inst.start_box.y = rng->NextDouble() * (1080.0 - inst.start_box.h);

  // Velocity: the object sweeps ~sweep_pixels over its lifetime, in a
  // random direction.
  const double speed =
      cls.sweep_pixels / static_cast<double>(inst.duration_frames);
  const double angle = rng->NextDouble() * 2.0 * 3.14159265358979323846;
  inst.vx = speed * std::cos(angle);
  inst.vy = speed * std::sin(angle);
  // Mild size change (approaching/receding).
  inst.growth = SampleNormal(rng, 0.0, 0.1) /
                static_cast<double>(inst.duration_frames);
  return inst;
}

}  // namespace

Dataset GenerateDataset(const DatasetSpec& spec, uint64_t seed) {
  assert(!spec.classes.empty());
  assert(spec.num_videos >= 1 && spec.frames_per_video >= 1);

  std::vector<video::VideoMeta> videos;
  videos.reserve(static_cast<size_t>(spec.num_videos));
  for (int64_t v = 0; v < spec.num_videos; ++v) {
    videos.push_back(video::VideoMeta{spec.name + "/" + std::to_string(v),
                                      spec.frames_per_video, spec.fps, 20});
  }
  auto repo = video::VideoRepository::Create(std::move(videos)).value();

  std::vector<video::Chunk> chunks =
      (spec.chunk_frames > 0
           ? video::MakeFixedLengthChunks(repo, spec.chunk_frames)
           : video::MakePerFileChunks(repo))
          .value();
  assert(video::ValidateChunking(chunks, repo.total_frames()).ok());

  Rng rng(seed);
  std::vector<ObjectInstance> instances;
  detect::InstanceId next_id = 0;
  for (const auto& cls : spec.classes) {
    Rng class_rng = rng.Fork();
    for (int64_t i = 0; i < cls.num_instances; ++i) {
      instances.push_back(
          MakeInstance(cls, next_id++, spec.total_frames(), &class_rng));
    }
  }

  // Correlated pairs ride after the independent populations so pair-free
  // specs draw exactly the RNG stream they always did. The per-class
  // num_instances counts in the returned Dataset include pair instances —
  // downstream consumers (preset structure tests, recall denominators)
  // read those counts as "instances of this class in the ground truth".
  std::vector<ClassSpec> classes = spec.classes;
  auto class_spec_of = [&classes](detect::ClassId id) -> ClassSpec* {
    for (auto& cls : classes) {
      if (cls.class_id == id) return &cls;
    }
    return nullptr;
  };
  for (const auto& pair : spec.pairs) {
    Rng pair_rng = rng.Fork();
    ClassSpec* spec_a = class_spec_of(pair.class_a);
    ClassSpec* spec_b = class_spec_of(pair.class_b);
    assert(spec_a != nullptr && spec_b != nullptr);
    for (int64_t i = 0; i < pair.num_pairs; ++i) {
      ObjectInstance anchor =
          MakeInstance(*spec_a, next_id++, spec.total_frames(), &pair_rng);
      ObjectInstance consequent =
          MakeInstance(*spec_b, next_id++, spec.total_frames(), &pair_rng);
      int64_t lag = pair.lag_frames;
      if (pair.lag_jitter_frames > 0) {
        lag += static_cast<int64_t>(pair_rng.NextBounded(
                   2 * static_cast<uint64_t>(pair.lag_jitter_frames) + 1)) -
               pair.lag_jitter_frames;
      }
      if (pair.co_located) consequent.duration_frames = anchor.duration_frames;
      video::FrameId start = anchor.start_frame + lag;
      start = std::max<video::FrameId>(0, start);
      start = std::min<video::FrameId>(
          start, spec.total_frames() - consequent.duration_frames);
      consequent.start_frame = start;
      instances.push_back(anchor);
      instances.push_back(consequent);
    }
    spec_a->num_instances += pair.num_pairs;
    spec_b->num_instances += pair.num_pairs;
  }

  GroundTruthIndex gt(std::move(instances), spec.total_frames());
  return Dataset{spec.name,         std::move(repo), std::move(chunks),
                 std::move(gt),     std::move(classes),
                 spec.fps};
}

}  // namespace data
}  // namespace exsample
