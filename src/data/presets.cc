#include "data/presets.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cmath>

namespace exsample {
namespace data {
namespace {

// Builder shorthand for class specs.
ClassSpec Cls(detect::ClassId id, const std::string& name, int64_t n,
              double mean_dur, Placement placement, double stddev_frac,
              double sweep, double box = 80.0) {
  ClassSpec c;
  c.class_id = id;
  c.name = name;
  c.num_instances = n;
  c.mean_duration_frames = mean_dur;
  c.placement = placement;
  c.center_fraction = 0.5;
  c.stddev_fraction = stddev_frac;
  c.sweep_pixels = sweep;
  c.mean_box_pixels = box;
  return c;
}

ClassSpec UniformCls(detect::ClassId id, const std::string& name, int64_t n,
                     double mean_dur, double sweep, double box = 80.0) {
  return Cls(id, name, n, mean_dur, Placement::kUniform, 0.0, sweep, box);
}

// dashcam: 10 hours of drives, 1.08M frames, 20-minute chunks (~30 chunks),
// moving camera (large sweeps, short durations).
DatasetSpec Dashcam() {
  DatasetSpec s;
  s.name = "dashcam";
  s.num_videos = 12;  // drives; 20min-3h each in the paper
  s.frames_per_video = 90000;
  s.chunk_frames = 36000;  // 20 minutes at 30 fps
  const double kSweep = 600.0;
  // bicycle: the Fig 6 exemplar of extreme skew (one neighborhood of one
  // drive has nearly all the bikes): one region carries ~85% of instances.
  ClassSpec bicycle =
      Cls(0, "bicycle", 249, 180, Placement::kRegions, 0.0, kSweep, 60.0);
  bicycle.region_weights.assign(30, 0.18);
  bicycle.region_weights[7] = 30.0;
  s.classes.push_back(bicycle);
  s.classes.push_back(Cls(1, "bus", 400, 120, Placement::kNormal, 0.15,
                          kSweep, 140.0));
  s.classes.push_back(Cls(2, "fire hydrant", 600, 60, Placement::kNormal,
                          0.20, kSweep, 40.0));
  s.classes.push_back(Cls(3, "person", 4000, 150, Placement::kNormal, 0.30,
                          kSweep, 70.0));
  s.classes.push_back(Cls(4, "stop sign", 1200, 90, Placement::kNormal, 0.15,
                          kSweep, 50.0));
  s.classes.push_back(Cls(5, "traffic light", 1800, 400, Placement::kNormal,
                          0.25, kSweep, 45.0));
  s.classes.push_back(Cls(6, "truck", 800, 130, Placement::kNormal, 0.30,
                          kSweep, 150.0));
  return s;
}

// bdd1k: 1000 sub-minute clips, one chunk per clip (the challenging
// 1000-chunk regime of §IV-C), moving camera.
DatasetSpec Bdd1k() {
  DatasetSpec s;
  s.name = "bdd1k";
  s.num_videos = 1000;
  s.frames_per_video = 1200;  // ~40 s at 30 fps
  s.chunk_frames = 0;         // per-file chunking
  const double kSweep = 500.0;
  s.classes.push_back(Cls(0, "bike", 700, 90, Placement::kNormal, 0.08,
                          kSweep, 60.0));
  s.classes.push_back(Cls(1, "bus", 600, 80, Placement::kNormal, 0.10,
                          kSweep, 140.0));
  // motor: Fig 6 anchor, S ~ 19 with 1000 chunks.
  s.classes.push_back(Cls(2, "motor", 509, 70, Placement::kNormal, 0.02,
                          kSweep, 70.0));
  s.classes.push_back(Cls(3, "person", 6000, 110, Placement::kNormal, 0.15,
                          kSweep, 65.0));
  s.classes.push_back(Cls(4, "rider", 800, 80, Placement::kNormal, 0.05,
                          kSweep, 70.0));
  s.classes.push_back(Cls(5, "traffic light", 5000, 120, Placement::kNormal,
                          0.20, kSweep, 45.0));
  s.classes.push_back(Cls(6, "traffic sign", 8000, 100, Placement::kNormal,
                          0.25, kSweep, 50.0));
  s.classes.push_back(Cls(7, "truck", 1500, 90, Placement::kNormal, 0.10,
                          kSweep, 150.0));
  return s;
}

// bdd_mot: 1600 short clips of ~200 frames with ground-truth instance ids.
DatasetSpec BddMot() {
  DatasetSpec s;
  s.name = "bdd_mot";
  s.num_videos = 1600;
  s.frames_per_video = 200;
  s.chunk_frames = 0;
  const double kSweep = 400.0;
  s.classes.push_back(Cls(0, "bicycle", 350, 60, Placement::kNormal, 0.05,
                          kSweep, 60.0));
  s.classes.push_back(Cls(1, "bus", 700, 70, Placement::kNormal, 0.10,
                          kSweep, 140.0));
  s.classes.push_back(UniformCls(2, "car", 12000, 90, kSweep, 110.0));
  s.classes.push_back(Cls(3, "motorcycle", 300, 50, Placement::kNormal, 0.04,
                          kSweep, 70.0));
  s.classes.push_back(Cls(4, "pedestrian", 5000, 80, Placement::kNormal, 0.20,
                          kSweep, 60.0));
  s.classes.push_back(Cls(5, "rider", 600, 60, Placement::kNormal, 0.08,
                          kSweep, 70.0));
  s.classes.push_back(Cls(6, "trailer", 150, 60, Placement::kNormal, 0.05,
                          kSweep, 160.0));
  s.classes.push_back(Cls(7, "train", 80, 50, Placement::kNormal, 0.03,
                          kSweep, 300.0));
  s.classes.push_back(Cls(8, "truck", 2500, 80, Placement::kNormal, 0.25,
                          kSweep, 150.0));
  return s;
}

// amsterdam: 20 hours from a fixed camera over a canal; 60 chunks; small
// sweeps and long durations.
DatasetSpec Amsterdam() {
  DatasetSpec s;
  s.name = "amsterdam";
  s.num_videos = 1;
  s.frames_per_video = 2160000;  // 20 h at 30 fps
  s.chunk_frames = 36000;
  const double kSweep = 150.0;
  s.classes.push_back(Cls(0, "bicycle", 3000, 250, Placement::kNormal, 0.25,
                          kSweep, 55.0));
  // boat: Fig 6 anchor — nearly uniform (S ~ 1.6); the worst case for
  // ExSample, where random sampling is just as good.
  s.classes.push_back(Cls(1, "boat", 588, 500, Placement::kNormal, 0.45,
                          kSweep, 200.0));
  s.classes.push_back(Cls(2, "car", 20000, 350, Placement::kNormal, 0.35,
                          kSweep, 110.0));
  s.classes.push_back(Cls(3, "dog", 250, 150, Placement::kNormal, 0.20,
                          kSweep, 35.0));
  s.classes.push_back(Cls(4, "motorcycle", 120, 180, Placement::kNormal, 0.25,
                          kSweep, 70.0));
  s.classes.push_back(Cls(5, "person", 15000, 300, Placement::kNormal, 0.40,
                          kSweep, 60.0));
  s.classes.push_back(Cls(6, "truck", 2500, 280, Placement::kNormal, 0.30,
                          kSweep, 150.0));
  return s;
}

// archie: 20 hours, fixed urban camera; car traffic is constant (no skew).
DatasetSpec Archie() {
  DatasetSpec s;
  s.name = "archie";
  s.num_videos = 1;
  s.frames_per_video = 2160000;
  s.chunk_frames = 36000;
  const double kSweep = 150.0;
  s.classes.push_back(Cls(0, "bicycle", 2500, 260, Placement::kNormal, 0.30,
                          kSweep, 55.0));
  s.classes.push_back(Cls(1, "bus", 1500, 300, Placement::kNormal, 0.25,
                          kSweep, 140.0));
  // car: Fig 6 anchor — abundant and uniform (S ~ 1.1).
  s.classes.push_back(UniformCls(2, "car", 33546, 350, kSweep, 110.0));
  s.classes.push_back(Cls(3, "motorcycle", 350, 200, Placement::kNormal, 0.20,
                          kSweep, 70.0));
  s.classes.push_back(Cls(4, "person", 12000, 320, Placement::kNormal, 0.35,
                          kSweep, 60.0));
  s.classes.push_back(Cls(5, "truck", 1200, 280, Placement::kNormal, 0.30,
                          kSweep, 150.0));
  return s;
}

// night_street (aka town-square): 20 hours overnight; most activity in the
// evening hours (moderate skew).
DatasetSpec NightStreet() {
  DatasetSpec s;
  s.name = "night_street";
  s.num_videos = 1;
  s.frames_per_video = 2160000;
  s.chunk_frames = 36000;
  const double kSweep = 150.0;
  s.classes.push_back(Cls(0, "bus", 900, 280, Placement::kNormal, 0.20,
                          kSweep, 140.0));
  s.classes.push_back(Cls(1, "car", 18000, 300, Placement::kNormal, 0.35,
                          kSweep, 110.0));
  s.classes.push_back(Cls(2, "dog", 180, 150, Placement::kNormal, 0.15,
                          kSweep, 35.0));
  s.classes.push_back(Cls(3, "motorcycle", 90, 160, Placement::kNormal, 0.10,
                          kSweep, 70.0));
  // person: Fig 6 anchor — moderate skew, S ~ 4.5.
  s.classes.push_back(Cls(4, "person", 2078, 250, Placement::kNormal, 0.09,
                          kSweep, 60.0));
  s.classes.push_back(Cls(5, "truck", 1100, 260, Placement::kNormal, 0.25,
                          kSweep, 150.0));
  return s;
}

// paired_street: 5 hours from a fixed street camera, built for composite
// predicates — every class has an independent population PLUS correlated
// pairs: car+person co-located in the same frames (conjunction ground
// truth) and bicycle -> truck with a ~1.5 s lag (sequence ground truth).
DatasetSpec PairedStreet() {
  DatasetSpec s;
  s.name = "paired_street";
  s.num_videos = 1;
  s.frames_per_video = 540000;  // 5 h at 30 fps
  s.chunk_frames = 36000;
  const double kSweep = 150.0;
  s.classes.push_back(Cls(0, "car", 4000, 300, Placement::kNormal, 0.35,
                          kSweep, 110.0));
  s.classes.push_back(Cls(1, "person", 2500, 280, Placement::kNormal, 0.30,
                          kSweep, 60.0));
  s.classes.push_back(Cls(2, "bicycle", 700, 260, Placement::kNormal, 0.20,
                          kSweep, 55.0));
  s.classes.push_back(Cls(3, "truck", 500, 280, Placement::kNormal, 0.25,
                          kSweep, 150.0));
  PairSpec car_person;
  car_person.class_a = 0;
  car_person.class_b = 1;
  car_person.num_pairs = 600;
  car_person.lag_frames = 0;
  car_person.co_located = true;
  s.pairs.push_back(car_person);
  PairSpec bike_truck;
  bike_truck.class_a = 2;
  bike_truck.class_b = 3;
  bike_truck.num_pairs = 300;
  bike_truck.lag_frames = 45;  // ~1.5 s at 30 fps
  bike_truck.lag_jitter_frames = 15;
  bike_truck.co_located = false;
  s.pairs.push_back(bike_truck);
  return s;
}

DatasetSpec ScaleSpec(DatasetSpec spec, double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  if (scale == 1.0) return spec;
  auto scale_count = [scale](int64_t n) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                    static_cast<double>(n) * scale)));
  };
  // Many-short-clip datasets shrink by dropping clips (clip length, chunking
  // and durations unchanged). Long-video datasets shrink the frame axis,
  // the chunk length AND the instance durations by the same factor: this
  // preserves both the chunk count (the structural parameter of §IV-C) and
  // every p_ij = duration/chunk-size (the quantity the sampling theory is
  // about), so sampler behaviour is scale-invariant.
  if (spec.num_videos > 1 && spec.frames_per_video <= 2000) {
    spec.num_videos = scale_count(spec.num_videos);
    for (auto& c : spec.classes) c.num_instances = scale_count(c.num_instances);
    for (auto& p : spec.pairs) p.num_pairs = scale_count(p.num_pairs);
  } else {
    spec.frames_per_video = scale_count(spec.frames_per_video);
    if (spec.chunk_frames > 0) {
      spec.chunk_frames =
          std::max<int64_t>(100, scale_count(spec.chunk_frames));
      spec.frames_per_video =
          std::max(spec.frames_per_video, spec.chunk_frames);
    }
    for (auto& c : spec.classes) {
      c.num_instances = scale_count(c.num_instances);
      c.mean_duration_frames = std::min(
          std::max(2.0, c.mean_duration_frames * scale),
          static_cast<double>(spec.total_frames()) / 4.0);
    }
    // Pair lags live on the frame axis too; shrink them with it so the
    // "B within t seconds of A" structure survives scaling.
    for (auto& p : spec.pairs) {
      p.num_pairs = scale_count(p.num_pairs);
      p.lag_frames = static_cast<int64_t>(
          std::llround(static_cast<double>(p.lag_frames) * scale));
      p.lag_jitter_frames = static_cast<int64_t>(
          std::llround(static_cast<double>(p.lag_jitter_frames) * scale));
    }
  }
  return spec;
}

}  // namespace

std::vector<std::string> PresetNames() {
  return {"dashcam", "bdd1k", "bdd_mot", "amsterdam", "archie",
          "night_street", "paired_street"};
}

DatasetSpec MakePresetSpec(const std::string& name, double scale) {
  DatasetSpec spec;
  if (name == "dashcam") {
    spec = Dashcam();
  } else if (name == "bdd1k") {
    spec = Bdd1k();
  } else if (name == "bdd_mot") {
    spec = BddMot();
  } else if (name == "amsterdam") {
    spec = Amsterdam();
  } else if (name == "archie") {
    spec = Archie();
  } else if (name == "night_street") {
    spec = NightStreet();
  } else if (name == "paired_street") {
    spec = PairedStreet();
  } else {
    std::fprintf(stderr, "fatal: unknown preset name '%s'\n", name.c_str());
    std::abort();
  }
  return ScaleSpec(std::move(spec), scale);
}

Dataset MakePreset(const std::string& name, double scale, uint64_t seed) {
  return GenerateDataset(MakePresetSpec(name, scale), seed);
}

}  // namespace data
}  // namespace exsample
