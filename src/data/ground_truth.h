// GroundTruthIndex: frame -> visible instances, the oracle behind the
// simulated detector and the exact-recall evaluation.
//
// Queries are served from a bucket index: the frame axis is divided into
// fixed buckets and each instance registers in every bucket its visibility
// interval overlaps, so VisibleAt(f) only scans one bucket's candidates.

#ifndef EXSAMPLE_DATA_GROUND_TRUTH_H_
#define EXSAMPLE_DATA_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/instance.h"
#include "detect/detector.h"

namespace exsample {
namespace data {

/// Immutable index over a dataset's ground-truth instances.
class GroundTruthIndex : public detect::FrameOracle {
 public:
  /// `total_frames` bounds the frame axis; instances must fall inside it.
  GroundTruthIndex(std::vector<ObjectInstance> instances, int64_t total_frames,
                   int64_t bucket_frames = 4096);

  /// detect::FrameOracle: true objects of class_id visible at `frame`.
  std::vector<detect::Detection> TrueObjectsAt(
      video::FrameId frame, detect::ClassId class_id) const override;

  /// All instances (any class) visible at `frame`.
  std::vector<const ObjectInstance*> InstancesAt(video::FrameId frame) const;

  /// Number of distinct instances of a class in the whole dataset.
  int64_t NumInstances(detect::ClassId class_id) const;

  /// All instances of a class.
  std::vector<const ObjectInstance*> InstancesOfClass(
      detect::ClassId class_id) const;

  const std::vector<ObjectInstance>& instances() const { return instances_; }
  int64_t total_frames() const { return total_frames_; }

  /// Looks up an instance by id (nullptr when unknown).
  const ObjectInstance* FindInstance(detect::InstanceId id) const;

 private:
  std::vector<ObjectInstance> instances_;
  int64_t total_frames_;
  int64_t bucket_frames_;
  // bucket -> indices into instances_ overlapping that bucket.
  std::vector<std::vector<int32_t>> buckets_;
  std::unordered_map<detect::InstanceId, int32_t> by_id_;
  std::unordered_map<detect::ClassId, std::vector<int32_t>> by_class_;
};

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_GROUND_TRUTH_H_
