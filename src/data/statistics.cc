#include "data/statistics.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace data {

std::vector<InstanceChunkProbs> ComputeInstanceChunkProbs(
    const Dataset& dataset, detect::ClassId class_id) {
  std::vector<InstanceChunkProbs> out;
  const auto& chunks = dataset.chunks;
  for (const ObjectInstance* inst :
       dataset.ground_truth.InstancesOfClass(class_id)) {
    InstanceChunkProbs row;
    row.instance = inst->id;
    for (const auto& chunk : chunks) {
      int64_t overlap = 0;
      for (const auto& range : chunk.frames.ranges()) {
        const int64_t lo = std::max<int64_t>(range.lo, inst->start_frame);
        const int64_t hi = std::min<int64_t>(range.hi, inst->end_frame());
        if (hi > lo) overlap += hi - lo;
      }
      if (overlap > 0) {
        row.probs.emplace_back(
            chunk.id, static_cast<double>(overlap) /
                          static_cast<double>(chunk.frames.size()));
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<int64_t> ChunkInstanceCounts(const Dataset& dataset,
                                         detect::ClassId class_id) {
  std::vector<int64_t> counts(dataset.chunks.size(), 0);
  for (const ObjectInstance* inst :
       dataset.ground_truth.InstancesOfClass(class_id)) {
    const video::FrameId mid = inst->start_frame + inst->duration_frames / 2;
    for (const auto& chunk : dataset.chunks) {
      if (chunk.frames.Contains(mid)) {
        ++counts[static_cast<size_t>(chunk.id)];
        break;
      }
    }
  }
  return counts;
}

double SkewMetric(const std::vector<int64_t>& chunk_counts) {
  assert(!chunk_counts.empty());
  int64_t total = 0;
  for (int64_t c : chunk_counts) total += c;
  if (total == 0) return 1.0;
  std::vector<int64_t> sorted = chunk_counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());
  const int64_t half = (total + 1) / 2;
  int64_t covered = 0;
  size_t k = 0;
  while (covered < half) {
    covered += sorted[k];
    ++k;
  }
  return static_cast<double>(chunk_counts.size()) /
         (2.0 * static_cast<double>(k));
}

}  // namespace data
}  // namespace exsample
