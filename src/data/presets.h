// Synthetic presets mirroring the paper's six evaluation datasets (§V-A):
// dashcam, bdd1k, bdd_mot, amsterdam, archie, night_street.
//
// Each preset matches the paper's structure — hours of video, chunking
// policy (20-minute chunks vs one chunk per clip), per-class abundance,
// duration scale, and placement skew. Anchor points are taken from Fig 6:
//   dashcam/bicycle      N=249    S=14   (very high skew)
//   bdd1k/motor          N=509    S=19   (high skew, 1000 chunks)
//   night_street/person  N=2078   S=4.5  (moderate skew)
//   archie/car           N=33546  S=1.1  (no skew)
//   amsterdam/boat       N=588    S=1.6  (low skew)
// Other classes are calibrated to plausible relative abundances so the full
// Table I / Fig 5 query sweep exercises the same spread of regimes.

#ifndef EXSAMPLE_DATA_PRESETS_H_
#define EXSAMPLE_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"

namespace exsample {
namespace data {

/// Names of all available dataset presets.
std::vector<std::string> PresetNames();

/// Builds the generation spec for a preset. `scale` in (0, 1] shrinks both
/// the frame count and the instance populations proportionally (densities
/// and durations are preserved, so sampler behaviour is shape-invariant);
/// scale=1 reproduces paper-scale datasets of 1-3.5M frames.
/// Asserts on unknown names; check PresetNames() first.
DatasetSpec MakePresetSpec(const std::string& name, double scale = 1.0);

/// Convenience: generate the preset dataset directly.
Dataset MakePreset(const std::string& name, double scale, uint64_t seed);

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_PRESETS_H_
