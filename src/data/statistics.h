// Dataset statistics consumed by the optimal-weight oracle (Eq IV.1), the
// skew analysis (Fig 6), and the benchmark harness.

#ifndef EXSAMPLE_DATA_STATISTICS_H_
#define EXSAMPLE_DATA_STATISTICS_H_

#include <cstdint>
#include <vector>

#include "data/synthetic.h"

namespace exsample {
namespace data {

/// Sparse per-instance chunk membership: for instance i, the chunks its
/// visibility interval overlaps and the conditional probability
/// p_ij = (visible frames in chunk j) / (frames of chunk j)
/// of detecting i in a frame drawn uniformly from chunk j (the vector
/// p = (p_ij) of §IV-A).
struct InstanceChunkProbs {
  detect::InstanceId instance = 0;
  std::vector<std::pair<video::ChunkId, double>> probs;
};

/// Computes p_ij for every instance of `class_id`.
std::vector<InstanceChunkProbs> ComputeInstanceChunkProbs(
    const Dataset& dataset, detect::ClassId class_id);

/// Number of instances of `class_id` per chunk, attributing each instance to
/// the chunk containing its midpoint frame (the Fig 6 abundance bars).
std::vector<int64_t> ChunkInstanceCounts(const Dataset& dataset,
                                         detect::ClassId class_id);

/// The paper's skew metric S (Fig 6): with M chunks and k the minimum number
/// of chunks that together contain at least half the instances, S = M / (2k).
/// S = 1 for perfectly uniform data; S = M/2 when one chunk holds everything.
/// Returns 1.0 when there are no instances.
double SkewMetric(const std::vector<int64_t>& chunk_counts);

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_STATISTICS_H_
