#include "data/instance.h"

#include <cassert>
#include <cmath>

namespace exsample {
namespace data {

detect::BBox ObjectInstance::BoxAt(video::FrameId f) const {
  assert(VisibleAt(f));
  const double dt = static_cast<double>(f - start_frame);
  const double scale = std::exp(growth * dt);
  detect::BBox b;
  b.w = start_box.w * scale;
  b.h = start_box.h * scale;
  // Keep the box center on the linear path while the size changes.
  const double cx = start_box.cx() + vx * dt;
  const double cy = start_box.cy() + vy * dt;
  b.x = cx - b.w / 2.0;
  b.y = cy - b.h / 2.0;
  return b;
}

detect::Detection ObjectInstance::TrueDetectionAt(video::FrameId f) const {
  detect::Detection d;
  d.frame = f;
  d.class_id = class_id;
  d.instance = id;
  d.box = BoxAt(f);
  d.score = 1.0;
  return d;
}

}  // namespace data
}  // namespace exsample
