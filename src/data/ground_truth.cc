#include "data/ground_truth.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace data {

GroundTruthIndex::GroundTruthIndex(std::vector<ObjectInstance> instances,
                                   int64_t total_frames, int64_t bucket_frames)
    : instances_(std::move(instances)),
      total_frames_(total_frames),
      bucket_frames_(bucket_frames) {
  assert(total_frames_ > 0 && bucket_frames_ > 0);
  const size_t num_buckets =
      static_cast<size_t>((total_frames_ + bucket_frames_ - 1) /
                          bucket_frames_);
  buckets_.resize(num_buckets);
  for (size_t i = 0; i < instances_.size(); ++i) {
    const auto& inst = instances_[i];
    assert(inst.start_frame >= 0 && inst.end_frame() <= total_frames_ &&
           "instance outside the frame axis");
    assert(inst.duration_frames >= 1);
    const int64_t b0 = inst.start_frame / bucket_frames_;
    const int64_t b1 = (inst.end_frame() - 1) / bucket_frames_;
    for (int64_t b = b0; b <= b1; ++b) {
      buckets_[static_cast<size_t>(b)].push_back(static_cast<int32_t>(i));
    }
    by_id_[inst.id] = static_cast<int32_t>(i);
    by_class_[inst.class_id].push_back(static_cast<int32_t>(i));
  }
}

std::vector<detect::Detection> GroundTruthIndex::TrueObjectsAt(
    video::FrameId frame, detect::ClassId class_id) const {
  std::vector<detect::Detection> out;
  if (frame < 0 || frame >= total_frames_) return out;
  const auto& bucket = buckets_[static_cast<size_t>(frame / bucket_frames_)];
  for (int32_t idx : bucket) {
    const auto& inst = instances_[static_cast<size_t>(idx)];
    if (inst.class_id == class_id && inst.VisibleAt(frame)) {
      out.push_back(inst.TrueDetectionAt(frame));
    }
  }
  return out;
}

std::vector<const ObjectInstance*> GroundTruthIndex::InstancesAt(
    video::FrameId frame) const {
  std::vector<const ObjectInstance*> out;
  if (frame < 0 || frame >= total_frames_) return out;
  const auto& bucket = buckets_[static_cast<size_t>(frame / bucket_frames_)];
  for (int32_t idx : bucket) {
    const auto& inst = instances_[static_cast<size_t>(idx)];
    if (inst.VisibleAt(frame)) out.push_back(&inst);
  }
  return out;
}

int64_t GroundTruthIndex::NumInstances(detect::ClassId class_id) const {
  auto it = by_class_.find(class_id);
  return it == by_class_.end() ? 0
                               : static_cast<int64_t>(it->second.size());
}

std::vector<const ObjectInstance*> GroundTruthIndex::InstancesOfClass(
    detect::ClassId class_id) const {
  std::vector<const ObjectInstance*> out;
  auto it = by_class_.find(class_id);
  if (it == by_class_.end()) return out;
  out.reserve(it->second.size());
  for (int32_t idx : it->second) {
    out.push_back(&instances_[static_cast<size_t>(idx)]);
  }
  return out;
}

const ObjectInstance* GroundTruthIndex::FindInstance(
    detect::InstanceId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr
                            : &instances_[static_cast<size_t>(it->second)];
}

}  // namespace data
}  // namespace exsample
