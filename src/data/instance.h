// ObjectInstance: one distinct real-world object with a visibility interval
// and a smooth box trajectory. The ground-truth analogue of the paper's
// "result instances", each with its hidden per-frame occurrence probability
// p_i proportional to its duration.

#ifndef EXSAMPLE_DATA_INSTANCE_H_
#define EXSAMPLE_DATA_INSTANCE_H_

#include <cstdint>

#include "detect/bbox.h"
#include "detect/detection.h"
#include "video/types.h"

namespace exsample {
namespace data {

/// One ground-truth object instance.
struct ObjectInstance {
  detect::InstanceId id = 0;
  detect::ClassId class_id = 0;
  /// First frame (global index) where the object is visible.
  video::FrameId start_frame = 0;
  /// Number of consecutive frames the object stays visible.
  int64_t duration_frames = 1;
  /// Box at start_frame.
  detect::BBox start_box;
  /// Linear velocity in pixels/frame.
  double vx = 0.0;
  double vy = 0.0;
  /// Relative size growth per frame (approaching objects grow; 0 = const).
  double growth = 0.0;

  /// One past the last visible frame.
  video::FrameId end_frame() const { return start_frame + duration_frames; }

  bool VisibleAt(video::FrameId f) const {
    return f >= start_frame && f < end_frame();
  }

  /// True box at frame f. Precondition: VisibleAt(f).
  detect::BBox BoxAt(video::FrameId f) const;

  /// The detection a perfect detector would output at frame f.
  detect::Detection TrueDetectionAt(video::FrameId f) const;
};

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_INSTANCE_H_
