// Synthetic dataset generation.
//
// Reproduces the workload structure the paper's evaluation depends on:
//  * per-class instance populations with LogNormal durations (the paper
//    observes p_i spanning "tens to thousands of frames" even within one
//    class, §III-A);
//  * temporal placement with controllable skew — uniform, or Normal
//    concentration matching §IV-B ("95% of the instances appear in the
//    center 1/4, 1/32, 1/256 of the frames"), or explicit per-region
//    weights;
//  * moving-camera vs static-camera trajectory profiles.

#ifndef EXSAMPLE_DATA_SYNTHETIC_H_
#define EXSAMPLE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/ground_truth.h"
#include "util/rng.h"
#include "video/chunking.h"
#include "video/repository.h"

namespace exsample {
namespace data {

/// How instance midpoints are spread along the frame axis.
enum class Placement {
  /// Uniform over the dataset: no skew, random sampling is near optimal.
  kUniform,
  /// Normal around `center_fraction` with `stddev_fraction`: tunable skew.
  kNormal,
  /// Piecewise-constant region weights (for irregular, multi-modal skew
  /// like drives through different cities in the dashcam dataset).
  kRegions,
};

/// Per-class generation parameters.
struct ClassSpec {
  detect::ClassId class_id = 0;
  std::string name;
  int64_t num_instances = 0;

  /// Durations ~ LogNormal scaled so the mean equals mean_duration_frames.
  double mean_duration_frames = 300.0;
  /// Log-space sigma controlling duration skew (0.75 gives the ~100x
  /// min-max spread the paper reports within a class).
  double duration_sigma_log = 0.75;

  Placement placement = Placement::kUniform;
  double center_fraction = 0.5;
  double stddev_fraction = 0.25;
  /// For Placement::kRegions: relative weight of each equal-size region.
  std::vector<double> region_weights;

  /// Pixels the object sweeps across the viewport during its lifetime
  /// (moving-camera datasets have large sweeps; static cameras small ones).
  double sweep_pixels = 200.0;
  /// Mean box side length in pixels.
  double mean_box_pixels = 80.0;
};

/// Correlated instance pairs: ground truth for composite predicates. Each
/// pair is an anchor instance of `class_a` plus a consequent instance of
/// `class_b` whose appearance is tied to the anchor's — co-occurring in the
/// same frames (conjunction ground truth) or starting `lag_frames` later
/// (sequence ground truth). Pair instances are generated in addition to the
/// per-class populations; the returned Dataset's per-class num_instances
/// counts include them.
struct PairSpec {
  detect::ClassId class_a = 0;
  detect::ClassId class_b = 0;
  int64_t num_pairs = 0;
  /// Frames between the anchor's start and the consequent's start (0 =
  /// simultaneous onset).
  int64_t lag_frames = 0;
  /// Uniform jitter applied to the lag: actual lag in
  /// [lag_frames - jitter, lag_frames + jitter].
  int64_t lag_jitter_frames = 0;
  /// True: the consequent copies the anchor's temporal interval exactly
  /// (shifted by the lag, duration equal) — with lag 0 the two classes are
  /// visible in precisely the same frames, the setup the
  /// seq(inf) == conjunction property test requires. False: the consequent
  /// keeps its own class's sampled duration.
  bool co_located = true;
};

/// Whole-dataset generation parameters.
struct DatasetSpec {
  std::string name;
  int64_t num_videos = 1;
  int64_t frames_per_video = 100000;
  double fps = 30.0;
  /// Chunking: frames per chunk, or 0 for one chunk per video file.
  int64_t chunk_frames = 36000;
  std::vector<ClassSpec> classes;
  /// Correlated cross-class pairs (both class ids must appear in `classes`).
  std::vector<PairSpec> pairs;

  int64_t total_frames() const { return num_videos * frames_per_video; }
};

/// A generated dataset: repository + chunking + ground truth.
struct Dataset {
  std::string name;
  video::VideoRepository repo;
  std::vector<video::Chunk> chunks;
  GroundTruthIndex ground_truth;
  std::vector<ClassSpec> classes;
  /// Frame rate of the generating spec — converts predicate time windows
  /// ("B within 2s of A") to frame windows.
  double fps = 30.0;

  /// Looks up a class spec by name (nullptr if absent).
  const ClassSpec* FindClass(const std::string& class_name) const;
};

/// Generates a dataset. Deterministic in (spec, seed).
Dataset GenerateDataset(const DatasetSpec& spec, uint64_t seed);

/// Draws an instance-midpoint frame according to the placement model.
/// Exposed for tests and for the pure simulators.
video::FrameId SamplePlacement(const ClassSpec& cls, int64_t total_frames,
                               Rng* rng);

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_SYNTHETIC_H_
