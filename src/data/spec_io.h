// Plain-text (de)serialization of DatasetSpec, so experiments are fully
// reproducible from a (spec file, seed) pair — the unit the bench harness
// and the CLI tool exchange.
//
// Format: line-oriented `key = value`, with repeated `[class]` sections:
//
//   name = dashcam
//   num_videos = 12
//   frames_per_video = 90000
//   fps = 30
//   chunk_frames = 36000
//   [class]
//   class_id = 0
//   name = bicycle
//   num_instances = 249
//   mean_duration_frames = 180
//   placement = regions          # uniform | normal | regions
//   region_weights = 0.18,30,...
//   ...

#ifndef EXSAMPLE_DATA_SPEC_IO_H_
#define EXSAMPLE_DATA_SPEC_IO_H_

#include <string>

#include "data/synthetic.h"
#include "util/status.h"

namespace exsample {
namespace data {

/// Renders a spec in the textual format above.
std::string SpecToText(const DatasetSpec& spec);

/// Parses a spec from text. Unknown keys, malformed numbers and missing
/// required fields produce descriptive errors.
Result<DatasetSpec> SpecFromText(const std::string& text);

/// File convenience wrappers.
Status SaveSpec(const DatasetSpec& spec, const std::string& path);
Result<DatasetSpec> LoadSpec(const std::string& path);

}  // namespace data
}  // namespace exsample

#endif  // EXSAMPLE_DATA_SPEC_IO_H_
