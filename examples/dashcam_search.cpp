// Dashcam scenario (the paper's motivating example): "find N distinct
// traffic lights in a dashcam fleet's footage" — e.g. to annotate a map.
// Compares ExSample against random sampling and the naive 1-in-30 stride
// scan, reporting modeled GPU-time under the paper's measured 20 fps
// sample-and-detect throughput.
//
// Usage: ./build/examples/dashcam_search [--limit 100] [--scale 0.1]

#include <cstdio>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/cost_model.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace exsample;
  Flags flags = Flags::Parse(argc, argv);
  const int64_t limit = flags.GetInt("limit", 100);
  const double scale = flags.GetDouble("scale", 0.1);
  flags.FailOnUnknown();

  auto dataset = data::MakePreset("dashcam", scale, /*seed=*/11);
  const auto* cls = dataset.FindClass("traffic light");
  const int64_t available = dataset.ground_truth.NumInstances(cls->class_id);
  std::printf("dashcam fleet: %.1f hours of video, %lld distinct traffic "
              "lights in ground truth\n",
              dataset.repo.TotalSeconds() / 3600.0,
              static_cast<long long>(available));
  std::printf("query: find %lld distinct traffic lights\n\n",
              static_cast<long long>(limit));

  detect::ThroughputModel throughput;
  Table table({"strategy", "frames processed", "GPU time (20 fps)",
               "distinct found"});
  for (auto [name, strategy] :
       {std::pair{"exsample", core::Strategy::kExSample},
        std::pair{"random", core::Strategy::kRandom},
        std::pair{"1-in-30 scan", core::Strategy::kSequential}}) {
    detect::SimulatedDetector detector(&dataset.ground_truth, cls->class_id,
                                       detect::PerfectDetectorConfig(), 5);
    track::OracleDiscriminator discriminator;
    core::EngineConfig config;
    config.strategy = strategy;
    config.sequential_stride = 30;
    core::QueryEngine engine(&dataset.repo, &dataset.chunks, &detector,
                             &discriminator, config, /*seed=*/7);
    core::QuerySpec query;
    query.class_id = cls->class_id;
    query.result_limit = limit;
    auto result = engine.Run(query);
    table.AddRow({name, Table::Int(result.frames_processed),
                  Table::Duration(
                      throughput.SampleSeconds(result.frames_processed)),
                  Table::Int(static_cast<int64_t>(result.results.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExSample reaches the limit with the fewest detector\n"
              "invocations; the naive stride scan burns GPU time in\n"
              "stretches of highway with no lights at all.\n");
  return 0;
}
