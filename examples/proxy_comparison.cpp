// Limit-query latency: ExSample vs a BlazeIt-style proxy pipeline.
//
// Proxy systems must score every frame before returning their first result;
// ExSample starts returning results immediately. This example reports the
// time-to-k-results curve of both systems on the same query, including the
// proxy's upfront scan (the §V-B comparison).
//
// Usage: ./build/examples/proxy_comparison [--scale 0.06] [--limit 50]

#include <cstdio>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/cost_model.h"
#include "detect/simulated_detector.h"
#include "proxy/blazeit.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace exsample;
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.06);
  const int64_t limit = flags.GetInt("limit", 50);
  flags.FailOnUnknown();

  auto dataset = data::MakePreset("night_street", scale, /*seed=*/23);
  const auto* cls = dataset.FindClass("person");
  detect::ThroughputModel throughput;
  std::printf("night_street/person, %lld frames; query limit %lld\n\n",
              static_cast<long long>(dataset.repo.total_frames()),
              static_cast<long long>(limit));

  // --- ExSample: sampling starts producing results immediately.
  detect::SimulatedDetector ex_detector(&dataset.ground_truth, cls->class_id,
                                        detect::PerfectDetectorConfig(), 3);
  track::OracleDiscriminator ex_disc;
  core::EngineConfig config;
  core::QueryEngine engine(&dataset.repo, &dataset.chunks, &ex_detector,
                           &ex_disc, config, /*seed=*/29);
  core::QuerySpec query;
  query.class_id = cls->class_id;
  query.result_limit = limit;
  auto ex_result = engine.Run(query);

  // --- BlazeIt-style: full scan, then score-ordered processing.
  detect::SimulatedDetector px_detector(&dataset.ground_truth, cls->class_id,
                                        detect::PerfectDetectorConfig(), 3);
  proxy::SimulatedProxyModel proxy_model(&dataset.ground_truth,
                                         cls->class_id,
                                         proxy::ProxyConfig{0.15}, 31);
  track::OracleDiscriminator px_disc;
  proxy::BlazeItBaseline blazeit(&dataset.repo, &proxy_model, &px_detector,
                                 &px_disc, proxy::BlazeItConfig{});
  auto px_result = blazeit.Run(query);

  Table table({"k", "exsample time-to-k", "blazeit time-to-k",
               "(of which scan)"});
  for (int64_t k : {int64_t{1}, int64_t{5}, int64_t{10}, int64_t{25}, limit}) {
    int64_t ex_frames = ex_result.reported.SamplesToReach(k);
    int64_t px_frames = px_result.query.reported.SamplesToReach(k);
    table.AddRow(
        {Table::Int(k),
         ex_frames < 0 ? "-"
                       : Table::Duration(throughput.SampleSeconds(ex_frames)),
         px_frames < 0
             ? "-"
             : Table::Duration(px_result.scan_seconds +
                               throughput.SampleSeconds(px_frames)),
         Table::Duration(px_result.scan_seconds)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nThe proxy pipeline is frame-efficient after its scan, but\n"
              "the scan alone (%s here) exceeds ExSample's entire query —\n"
              "the core argument for sampling on ad-hoc limit queries.\n",
              Table::Duration(px_result.scan_seconds).c_str());
  return 0;
}
