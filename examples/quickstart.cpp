// Quickstart: the minimal end-to-end use of the ExSample library.
//
// 1. Build (or load) a video repository and chunk it.
// 2. Plug in your object detector (here: the simulated, ground-truth-backed
//    detector) and a discriminator.
// 3. Run a distinct-object limit query with the ExSample engine.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"

int main() {
  using namespace exsample;

  // --- 1. a small synthetic dataset: 2 hours of video, 12 chunks,
  //        80 "traffic light" instances concentrated in the city segment.
  data::DatasetSpec spec;
  spec.name = "quickstart";
  spec.num_videos = 1;
  spec.frames_per_video = 216000;  // 2 h at 30 fps
  spec.chunk_frames = 18000;       // 10-minute chunks
  data::ClassSpec lights;
  lights.class_id = 0;
  lights.name = "traffic light";
  lights.num_instances = 80;
  lights.mean_duration_frames = 240.0;  // ~8 s per sighting
  lights.placement = data::Placement::kNormal;
  lights.stddev_fraction = 0.12;  // the drive passes downtown mid-way
  spec.classes.push_back(lights);
  data::Dataset dataset = data::GenerateDataset(spec, /*seed=*/1);

  std::printf("dataset: %lld frames in %zu chunks, %lld distinct %s\n",
              static_cast<long long>(dataset.repo.total_frames()),
              dataset.chunks.size(),
              static_cast<long long>(
                  dataset.ground_truth.NumInstances(lights.class_id)),
              lights.name.c_str());

  // --- 2. detector + discriminator. Swap in your own ObjectDetector /
  //        Discriminator implementations for real deployments.
  detect::DetectorConfig det_cfg;  // default: mild misses/jitter/FPs
  detect::SimulatedDetector detector(&dataset.ground_truth, lights.class_id,
                                     det_cfg, /*seed=*/2);
  track::TrackerDiscriminator discriminator;  // SORT-style IoU matching

  // --- 3. "find 20 distinct traffic lights".
  core::EngineConfig config;  // defaults: Thompson + random+ within chunk
  core::QueryEngine engine(&dataset.repo, &dataset.chunks, &detector,
                           &discriminator, config, /*seed=*/3);
  core::QuerySpec query;
  query.class_id = lights.class_id;
  query.result_limit = 20;
  core::QueryResult result = engine.Run(query);

  std::printf("found %zu distinct results in %lld sampled frames\n",
              result.results.size(),
              static_cast<long long>(result.frames_processed));
  std::printf("simulated cost: %.1f s decode + %.1f s inference\n",
              result.decode_seconds, result.inference_seconds);
  std::printf("first five results (frame, box):\n");
  for (size_t i = 0; i < result.results.size() && i < 5; ++i) {
    const auto& d = result.results[i];
    std::printf("  frame %-7lld  [%.0f, %.0f, %.0f x %.0f]\n",
                static_cast<long long>(d.frame), d.box.x, d.box.y, d.box.w,
                d.box.h);
  }

  // The per-chunk statistics show where ExSample focused its samples.
  std::printf("samples per chunk:");
  for (int32_t j = 0; j < engine.chunk_stats()->num_chunks(); ++j) {
    std::printf(" %lld", static_cast<long long>(engine.chunk_stats()->n(j)));
  }
  std::printf("\n(the downtown chunks should dominate)\n");
  return 0;
}
