// Anytime search: streaming results from live sessions while they run.
//
// ExSample is an anytime algorithm — distinct results surface continuously
// as frames are sampled, so a user watching a dashboard can stop as soon as
// they have what they need instead of paying for a full scan (the paper's
// "$1.5K GPU bill" scenario). This walkthrough drives the serve layer:
//
// 1. Open two sessions against one repository through serve::SessionManager
//    (round-robin slicing keeps both progressing).
// 2. Poll in a loop, printing results as they stream in; cancel one session
//    early once it has shown us enough.
// 3. Re-run the finished query warm-started from the StatsCache and compare
//    how many frames each needed.
//
// Build & run:  ./build/examples/example_anytime_search

#include <cstdio>
#include <memory>
#include <thread>

#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "exec/query_job.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "track/discriminator.h"

int main() {
  using namespace exsample;

  // --- a skewed synthetic repository: 3 hours of video, most "cyclist"
  //     activity concentrated in one stretch of the timeline.
  data::DatasetSpec spec;
  spec.name = "anytime";
  spec.num_videos = 1;
  spec.frames_per_video = 324000;  // 3 h at 30 fps
  spec.chunk_frames = 18000;       // 10-minute chunks
  data::ClassSpec cyclists;
  cyclists.class_id = 0;
  cyclists.name = "cyclist";
  cyclists.num_instances = 120;
  cyclists.mean_duration_frames = 150.0;
  cyclists.placement = data::Placement::kNormal;
  cyclists.stddev_fraction = 0.08;
  spec.classes.push_back(cyclists);
  data::Dataset dataset = data::GenerateDataset(spec, /*seed=*/1);

  auto make_job = [&dataset](int64_t limit) {
    exec::QueryJob job;
    job.repo = &dataset.repo;
    job.chunks = &dataset.chunks;
    job.spec.class_id = 0;
    job.spec.result_limit = limit;
    job.make_detector = [&dataset](uint64_t seed) {
      return std::make_unique<detect::SimulatedDetector>(
          &dataset.ground_truth, 0, detect::PerfectDetectorConfig(), seed);
    };
    job.make_discriminator = [] {
      return std::make_unique<track::OracleDiscriminator>();
    };
    return job;
  };

  // --- 1. a manager with a warm-start cache; two concurrent sessions.
  serve::StatsCache cache;
  serve::SessionManager::Options options;
  options.slice_frames = 128;  // small quantum: snappy streaming
  options.stats_cache = &cache;
  options.warm_start = true;
  serve::SessionManager manager(options);

  const int64_t finder =
      manager.Open(make_job(40), serve::SessionOptions(), "anytime").value();
  const int64_t survey =
      manager.Open(make_job(1000), serve::SessionOptions(), "anytime")
          .value();
  std::printf("opened session %lld (find 40) and %lld (open-ended survey)\n",
              static_cast<long long>(finder),
              static_cast<long long>(survey));

  // --- 2. stream results; cancel the survey once the finder is done.
  int64_t finder_frames = 0;
  int64_t streamed = 0;
  while (true) {
    serve::PollResult poll = manager.Poll(finder).value();
    for (const auto& d : poll.new_results) {
      std::printf("  [session %lld] result #%lld at frame %lld\n",
                  static_cast<long long>(finder),
                  static_cast<long long>(++streamed),
                  static_cast<long long>(d.frame));
    }
    if (poll.state != serve::SessionState::kRunning) {
      finder_frames = poll.frames_processed;
      std::printf("finder done (%s): %lld results in %lld frames\n",
                  serve::StopReasonName(poll.stop_reason),
                  static_cast<long long>(poll.total_results),
                  static_cast<long long>(poll.frames_processed));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  serve::PollResult survey_poll = manager.Poll(survey).value();
  std::printf("survey still running with %lld results after %lld frames — "
              "cancelling (we have what we need)\n",
              static_cast<long long>(survey_poll.total_results),
              static_cast<long long>(survey_poll.frames_processed));
  manager.Cancel(survey);
  manager.WaitAllDone();

  // --- 3. the finished sessions seeded the cache; a repeat query warm
  //     starts from their chunk statistics and homes in faster.
  std::printf("cache now holds %zu entr%s from %lld queries\n", cache.size(),
              cache.size() == 1 ? "y" : "ies",
              static_cast<long long>(cache.queries_recorded()));
  const int64_t warm =
      manager.Open(make_job(40), serve::SessionOptions(), "anytime").value();
  manager.WaitAllDone();
  serve::PollResult warm_poll = manager.Poll(warm).value();
  std::printf("warm-started repeat (seeded=%s): %lld results in %lld frames "
              "(cold run took %lld)\n",
              warm_poll.warm_started ? "yes" : "no",
              static_cast<long long>(warm_poll.total_results),
              static_cast<long long>(warm_poll.frames_processed),
              static_cast<long long>(finder_frames));
  return 0;
}
