// Chunk-count tuning (§IV-C in practice): sweep the chunk length on one
// dataset and see the efficiency curve — too few chunks cannot exploit
// skew, too many dilute the per-chunk evidence. Useful when configuring
// ExSample for a new repository.
//
// Usage: ./build/examples/chunk_tuning [--scale 0.08] [--trials 3]

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "data/presets.h"
#include "detect/simulated_detector.h"
#include "sim/savings.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/table.h"
#include "video/chunking.h"

int main(int argc, char** argv) {
  using namespace exsample;
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.08);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  flags.FailOnUnknown();

  auto dataset = data::MakePreset("night_street", scale, /*seed=*/19);
  const auto* cls = dataset.FindClass("person");
  const int64_t total = dataset.ground_truth.NumInstances(cls->class_id);
  const int64_t target = total / 2;
  std::printf("night_street/person: %lld instances over %lld frames\n",
              static_cast<long long>(total),
              static_cast<long long>(dataset.repo.total_frames()));
  std::printf("metric: median frames to find %lld (50%% recall), %d trials\n\n",
              static_cast<long long>(target), trials);

  Table table({"chunks", "frames/chunk", "median frames to 50%"});
  const int64_t f = dataset.repo.total_frames();
  for (int64_t chunk_count : {1, 4, 15, 60, 240, 960}) {
    const int64_t chunk_frames = f / chunk_count;
    auto chunks = video::MakeFixedLengthChunks(dataset.repo, chunk_frames).value();
    std::vector<core::Trajectory> trajs;
    for (int t = 0; t < trials; ++t) {
      detect::SimulatedDetector detector(&dataset.ground_truth,
                                         cls->class_id,
                                         detect::PerfectDetectorConfig(), 3);
      track::OracleDiscriminator discriminator;
      core::EngineConfig config;
      core::QueryEngine engine(&dataset.repo, &chunks, &detector,
                               &discriminator, config,
                               100 + static_cast<uint64_t>(t));
      core::QuerySpec query;
      query.class_id = cls->class_id;
      query.max_samples = f;
      trajs.push_back(engine.Run(query).true_instances);
    }
    int64_t med = sim::MedianSamplesToReach(trajs, target);
    table.AddRow({Table::Int(chunks.size()), Table::Int(chunk_frames),
                  med < 0 ? "-" : Table::Int(med)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpect a U-shape: a single chunk degenerates to random\n"
              "sampling, while very many chunks spend the whole budget\n"
              "learning which chunks matter (§IV-C). 20-minute chunks\n"
              "(the paper's default) sit near the sweet spot.\n");
  return 0;
}
