// Urban-planning scenario: a high-recall survey ("find ~90% of all distinct
// cyclists seen by the canal camera") on a static-camera dataset, the
// regime the paper motivates for mapping/urban planning. Shows the recall
// trajectory, the dataset's skew profile, and where ExSample allocated its
// samples.
//
// Usage: ./build/examples/urban_survey [--scale 0.08] [--recall 0.9]

#include <cstdio>

#include "core/engine.h"
#include "data/presets.h"
#include "data/statistics.h"
#include "detect/cost_model.h"
#include "detect/simulated_detector.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace exsample;
  Flags flags = Flags::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.08);
  const double recall = flags.GetDouble("recall", 0.9);
  flags.FailOnUnknown();

  auto dataset = data::MakePreset("amsterdam", scale, /*seed=*/13);
  const auto* cls = dataset.FindClass("bicycle");
  const int64_t total = dataset.ground_truth.NumInstances(cls->class_id);
  const int64_t target =
      static_cast<int64_t>(recall * static_cast<double>(total) + 0.999);

  auto counts = data::ChunkInstanceCounts(dataset, cls->class_id);
  std::printf("amsterdam canal camera: %.1f h of video, %lld distinct "
              "cyclists, skew S = %.2f over %zu chunks\n",
              dataset.repo.TotalSeconds() / 3600.0,
              static_cast<long long>(total), data::SkewMetric(counts),
              counts.size());
  std::printf("survey goal: %.0f%% recall (%lld cyclists)\n\n", recall * 100,
              static_cast<long long>(target));

  detect::SimulatedDetector detector(&dataset.ground_truth, cls->class_id,
                                     detect::PerfectDetectorConfig(), 3);
  track::OracleDiscriminator discriminator;
  core::EngineConfig config;
  core::QueryEngine engine(&dataset.repo, &dataset.chunks, &detector,
                           &discriminator, config, /*seed=*/17);
  core::QuerySpec query;
  query.class_id = cls->class_id;
  query.result_limit = target;
  auto result = engine.Run(query);

  detect::ThroughputModel throughput;
  std::printf("reached %zu distinct cyclists in %lld frames "
              "(%s of detector time at 20 fps)\n\n",
              result.results.size(),
              static_cast<long long>(result.frames_processed),
              Table::Duration(
                  throughput.SampleSeconds(result.frames_processed))
                  .c_str());

  Table milestones({"recall", "distinct found", "frames", "detector time"});
  for (double r : {0.1, 0.25, 0.5, 0.75, recall}) {
    int64_t count =
        static_cast<int64_t>(r * static_cast<double>(total) + 0.999);
    int64_t frames = result.true_instances.SamplesToReach(count);
    if (frames < 0) continue;
    milestones.AddRow({Table::Num(r, 2), Table::Int(count),
                       Table::Int(frames),
                       Table::Duration(throughput.SampleSeconds(frames))});
  }
  std::printf("%s", milestones.ToString().c_str());

  std::printf("\nnote the sub-linear growth: early recall is cheap, the\n"
              "tail is where the detector budget goes — size survey\n"
              "budgets accordingly.\n");
  return 0;
}
