// exsample_serve: interactive anytime query serving over stdin/stdout.
//
// Reads one JSON command per input line, writes one JSON response per line
// (NDJSON). Sessions run in the background on serve::SessionManager's
// round-robin scheduler, so results stream in while you type and many
// queries progress concurrently.
//
// Protocol (one object per line):
//   {"cmd":"open","preset":"dashcam","class":"bicycle","limit":20}
//     -> {"ok":true,"session":1,"warm_started":false}
//     optional keys: "scale" (default --scale), "strategy"
//     (exsample|random|randomplus|sequential), "policy" (thompson|
//     bayes_ucb|greedy|uniform|hier_thompson|hier_bayes_ucb; hier_* scale
//     to huge chunk counts), "group_size" (hier_* group fan-out, 0 = auto),
//     "max_samples",
//     "budget_seconds" (modeled GPU seconds; "cost_budget_seconds" is an
//     equivalent alias), "deadline_seconds" (wall), "tracker" (IoU
//     discriminator instead of the oracle), "cost_aware" (score chunks by
//     results per modeled second instead of per frame), "gop_run" (frames
//     drawn per seek-amortized GOP run; 1 = classic single-frame draws)
//   {"cmd":"poll","session":1}
//     -> {"ok":true,"session":1,"state":"running","new_results":[...],
//         "total_results":7,"frames_processed":1536,"cost_seconds":93.1,...}
//   {"cmd":"cancel","session":1}   stop early, partial results pollable
//   {"cmd":"close","session":1}    forget the session, free its slot
//   {"cmd":"stats"}                manager + warm-start cache counters
//   {"cmd":"quit"}                 exit (also on EOF)
//
// Flags: --threads N (0 = all cores), --slice-frames N, --max-sessions N,
//        --seed N, --scale S, --warm-start, --warm-start-weight W,
//        --stats-file PATH (persist the warm-start cache across runs)
//
// Example (one shell line):
//   printf '%s\n%s\n' '{"cmd":"open","preset":"dashcam","class":"bicycle",
//   "limit":5}' '{"cmd":"stats"}' | exsample_serve --warm-start

#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "data/presets.h"
#include "data/synthetic.h"
#include "detect/simulated_detector.h"
#include "exec/query_job.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/json.h"

namespace exsample {
namespace {

Json Error(const std::string& message) {
  return Json::Object().Set("ok", false).Set("error", message);
}

/// Datasets generated on demand and shared by every session that names the
/// same (preset, scale); they must outlive their sessions, so they live for
/// the whole process.
class DatasetPool {
 public:
  explicit DatasetPool(uint64_t seed) : seed_(seed) {}

  /// Returns the dataset for (preset, scale), generating it on first use,
  /// or nullptr for an unknown preset name.
  const data::Dataset* Get(const std::string& preset, double scale) {
    const std::string key = preset + "@" + std::to_string(scale);
    auto it = datasets_.find(key);
    if (it != datasets_.end()) return it->second.get();
    bool known = false;
    for (const std::string& name : data::PresetNames()) {
      if (name == preset) known = true;
    }
    if (!known) return nullptr;
    auto dataset = std::make_unique<data::Dataset>(
        data::MakePreset(preset, scale, seed_));
    return datasets_.emplace(key, std::move(dataset)).first->second.get();
  }

 private:
  const uint64_t seed_;
  std::map<std::string, std::unique_ptr<data::Dataset>> datasets_;
};

Json HandleOpen(const Json& cmd, DatasetPool* datasets,
                serve::SessionManager* manager, double default_scale) {
  const std::string preset = cmd.GetString("preset", "");
  const std::string class_name = cmd.GetString("class", "");
  if (preset.empty() || class_name.empty()) {
    return Error("open requires \"preset\" and \"class\"");
  }
  const double scale = cmd.GetDouble("scale", default_scale);
  if (scale <= 0.0 || scale > 1.0) return Error("scale must be in (0, 1]");

  // Validate the protocol fields before paying for dataset generation:
  // unknown strategy/policy values are protocol errors, never silent
  // fallbacks to the default.
  exec::QueryJob job;
  const std::string strategy = cmd.GetString("strategy", "exsample");
  if (!core::ApplyStrategyName(strategy, &job.config)) {
    return Error("unknown strategy: " + strategy);
  }
  const std::string policy = cmd.GetString("policy", "");
  if (!policy.empty() &&
      !core::ParsePolicyName(policy, &job.config.policy)) {
    return Error("unknown policy: " + policy);
  }
  const int64_t group_size = cmd.GetInt("group_size", 0);
  if (group_size < 0 || group_size > std::numeric_limits<int32_t>::max()) {
    return Error("group_size must be in [0, 2^31) (0 = auto)");
  }
  job.config.group_size = static_cast<int32_t>(group_size);

  const data::Dataset* dataset = datasets->Get(preset, scale);
  if (dataset == nullptr) return Error("unknown preset: " + preset);
  const data::ClassSpec* cls = dataset->FindClass(class_name);
  if (cls == nullptr) return Error("class '" + class_name + "' not in " + preset);

  job.repo = &dataset->repo;
  job.chunks = &dataset->chunks;
  job.spec.class_id = cls->class_id;
  const int64_t limit = cmd.GetInt("limit", 0);
  if (limit < 0 || (cmd.Has("limit") && limit == 0)) {
    return Error("limit must be >= 1 (or omitted)");
  }
  if (limit > 0) job.spec.result_limit = limit;
  const int64_t max_samples = cmd.GetInt("max_samples", 0);
  if (max_samples < 0) return Error("max_samples must be >= 0");
  job.spec.max_samples = max_samples;
  if (cmd.Has("budget_seconds") && cmd.Has("cost_budget_seconds")) {
    return Error("budget_seconds and cost_budget_seconds are aliases; "
                 "pass only one");
  }
  const char* budget_key =
      cmd.Has("cost_budget_seconds") ? "cost_budget_seconds"
                                     : "budget_seconds";
  const double budget = cmd.GetDouble(budget_key, 0.0);
  if (budget < 0.0 || (cmd.Has(budget_key) && budget == 0.0)) {
    return Error(std::string(budget_key) + " must be > 0 (or omitted)");
  }
  job.spec.max_seconds = budget;
  job.config.cost_aware = cmd.GetBool("cost_aware", false);
  const int64_t gop_run = cmd.GetInt("gop_run", 1);
  if (gop_run < 1 || gop_run > std::numeric_limits<int32_t>::max()) {
    return Error("gop_run must be in [1, 2^31)");
  }
  job.config.gop_run_frames = static_cast<int32_t>(gop_run);

  const detect::ClassId class_id = cls->class_id;
  job.make_detector = [dataset, class_id](uint64_t seed) {
    return std::make_unique<detect::SimulatedDetector>(
        &dataset->ground_truth, class_id, detect::DetectorConfig{}, seed);
  };
  const bool tracker = cmd.GetBool("tracker", false);
  job.make_discriminator = [tracker]() -> std::unique_ptr<track::Discriminator> {
    if (tracker) return std::make_unique<track::TrackerDiscriminator>();
    return std::make_unique<track::OracleDiscriminator>();
  };

  serve::SessionOptions session_options;
  session_options.deadline_seconds = cmd.GetDouble("deadline_seconds", 0.0);
  if (session_options.deadline_seconds < 0.0) {
    return Error("deadline_seconds must be >= 0");
  }

  // One cache entry per (preset, scale, class); the key survives restarts.
  const std::string repo_key = preset + "@" + std::to_string(scale);
  auto opened = manager->Open(std::move(job), session_options, repo_key);
  if (!opened.ok()) return Error(opened.status().ToString());
  // WarmStarted (not Poll): polling here would drain results the scheduler
  // may already have found, stealing them from the client's first poll.
  auto warm = manager->WarmStarted(opened.value());
  Json response = Json::Object().Set("ok", true).Set("session",
                                                     opened.value());
  if (warm.ok()) response.Set("warm_started", warm.value());
  return response;
}

Json HandlePoll(const Json& cmd, serve::SessionManager* manager) {
  const int64_t id = cmd.GetInt("session", -1);
  auto poll = manager->Poll(id);
  if (!poll.ok()) return Error(poll.status().ToString());
  const serve::PollResult& p = poll.value();
  Json response = Json::Object();
  response.Set("ok", true)
      .Set("session", p.session_id)
      .Set("state", serve::SessionStateName(p.state))
      .Set("stop_reason", serve::StopReasonName(p.stop_reason));
  Json results = Json::Array();
  for (const auto& d : p.new_results) {
    results.Append(Json::Object()
                       .Set("frame", d.frame)
                       .Set("score", d.score)
                       .Set("x", d.box.x)
                       .Set("y", d.box.y)
                       .Set("w", d.box.w)
                       .Set("h", d.box.h));
  }
  response.Set("new_results", std::move(results))
      .Set("total_results", p.total_results)
      .Set("frames_processed", p.frames_processed)
      .Set("cost_seconds", p.cost_seconds)
      .Set("cost_budget_seconds", p.cost_budget_seconds)
      .Set("seconds_to_first_result", p.seconds_to_first_result)
      .Set("wall_seconds", p.wall_seconds)
      .Set("warm_started", p.warm_started);
  return response;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t threads = flags.GetInt("threads", 0);
  const int64_t slice_frames = flags.GetInt("slice-frames", 256);
  const int64_t max_sessions = flags.GetInt("max-sessions", 64);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double scale = flags.GetDouble("scale", 0.1);
  const bool warm_start = flags.GetBool("warm-start");
  const double warm_weight = flags.GetDouble("warm-start-weight", 0.25);
  const std::string stats_file = flags.GetString("stats-file", "");
  flags.FailOnUnknown();
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  if (slice_frames < 1) {
    std::fprintf(stderr, "error: --slice-frames must be >= 1\n");
    return 2;
  }
  if (max_sessions < 1) {
    std::fprintf(stderr, "error: --max-sessions must be >= 1\n");
    return 2;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "error: --scale must be in (0, 1]\n");
    return 2;
  }
  if (warm_weight <= 0.0 || warm_weight > 1.0) {
    std::fprintf(stderr, "error: --warm-start-weight must be in (0, 1]\n");
    return 2;
  }

  serve::StatsCache cache;
  if (!stats_file.empty()) {
    Status loaded = cache.Load(stats_file);
    // A missing file just means a first run; anything else is reported.
    if (!loaded.ok() && loaded.code() != Status::Code::kNotFound) {
      std::fprintf(stderr, "warning: %s\n", loaded.ToString().c_str());
    }
  }

  // Declared before the manager: datasets must outlive the scheduler and
  // its sessions (reverse destruction order frees the manager first).
  DatasetPool datasets(seed);

  serve::SessionManager::Options options;
  options.threads = static_cast<size_t>(threads);
  options.slice_frames = slice_frames;
  options.max_live_sessions = static_cast<size_t>(max_sessions);
  options.base_seed = seed;
  options.stats_cache = &cache;
  options.warm_start = warm_start;
  options.warm_start_weight = warm_weight;
  serve::SessionManager manager(options);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      std::printf("%s\n", Error(parsed.status().ToString()).Dump().c_str());
      std::fflush(stdout);
      continue;
    }
    const Json& cmd = parsed.value();
    const std::string name = cmd.GetString("cmd", "");
    Json response;
    if (name == "open") {
      response = HandleOpen(cmd, &datasets, &manager, scale);
    } else if (name == "poll") {
      response = HandlePoll(cmd, &manager);
    } else if (name == "cancel" || name == "close") {
      const int64_t id = cmd.GetInt("session", -1);
      Status status = name == "cancel" ? manager.Cancel(id)
                                       : manager.Close(id);
      response = status.ok()
                     ? Json::Object().Set("ok", true).Set("session", id)
                     : Error(status.ToString());
    } else if (name == "stats") {
      response = Json::Object()
                     .Set("ok", true)
                     .Set("live_sessions",
                          static_cast<int64_t>(manager.live_sessions()))
                     .Set("open_sessions",
                          static_cast<int64_t>(manager.open_sessions()))
                     .Set("total_opened", manager.total_opened())
                     .Set("cache_entries", static_cast<int64_t>(cache.size()))
                     .Set("cache_queries", cache.queries_recorded())
                     .Set("warm_start", warm_start);
    } else if (name == "quit") {
      std::printf("%s\n", Json::Object().Set("ok", true).Dump().c_str());
      std::fflush(stdout);
      break;
    } else {
      response = Error("unknown cmd: '" + name +
                       "' (open|poll|cancel|close|stats|quit)");
    }
    std::printf("%s\n", response.Dump().c_str());
    std::fflush(stdout);
  }

  if (!stats_file.empty()) {
    Status saved = cache.Save(stats_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "warning: %s\n", saved.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
