// exsample_serve: interactive anytime query serving, over stdin/stdout
// (default) or TCP (--listen).
//
// Reads one JSON command per input line, writes one JSON response per line
// (NDJSON). Sessions run in the background on serve::SessionManager's
// round-robin scheduler, so results stream in while you type and many
// queries progress concurrently. Both transports speak the same protocol
// through the same serve::ProtocolHandler; in --listen mode every
// connection gets its own handler (its sessions are private and close on
// disconnect) while all connections share one SessionManager, one
// warm-start cache, and one dataset pool.
//
// Protocol (one object per line; lines may end in CRLF):
//   {"cmd":"open","preset":"dashcam","class":"bicycle","limit":20}
//     -> {"ok":true,"session":1,"warm_started":false}
//     composite queries pass "predicate" INSTEAD of "class":
//       {"cmd":"open","preset":"paired_street","limit":10,
//        "predicate":{"kind":"and","classes":["car","person"]}}
//       -> {"ok":true,"session":1,"predicate":"and(c0,c1)",...}
//     kinds: "single" (1 class), "and" (same-frame conjunction), "seq"
//     (A then B within optional "within" seconds), "multi" (independent
//     per-class result sets over one shared decode stream; poll replies
//     gain "multi_class":true, per-detection "class_id", and
//     "cached_reads"). Malformed predicates are rejected with a
//     structured error before any dataset work.
//     optional keys: "scale" (default --scale), "strategy"
//     (exsample|random|randomplus|sequential), "policy" (thompson|
//     bayes_ucb|greedy|uniform|hier_thompson|hier_bayes_ucb; hier_* scale
//     to huge chunk counts), "group_size" (hier_* group fan-out, 0 = auto),
//     "max_samples",
//     "budget_seconds" (modeled GPU seconds; "cost_budget_seconds" is an
//     equivalent alias), "deadline_seconds" (wall), "tracker" (IoU
//     discriminator instead of the oracle), "cost_aware" (score chunks by
//     results per modeled second instead of per frame), "gop_run" (frames
//     drawn per seek-amortized GOP run; 1 = classic single-frame draws)
//   {"cmd":"poll","session":1}
//     -> {"ok":true,"session":1,"state":"running","new_results":[...],
//         "total_results":7,"frames_processed":1536,"cost_seconds":93.1,...}
//   {"cmd":"cancel","session":1}   stop early, partial results pollable
//   {"cmd":"close","session":1}    forget the session, free its slot
//   {"cmd":"stats"}                manager + warm-start cache counters,
//                                  plus transport info: uptime_seconds and
//                                  (TCP) shards + per-shard connections
//   {"cmd":"metrics"}              full runtime-metrics snapshot (net.*,
//                                  serve.*, core.* counters/gauges/latency
//                                  histograms with per-shard cells)
//   {"cmd":"quit"}                 exit (stdin mode; also on EOF). In
//                                  --listen mode: closes this connection
//
// Flags: --threads N (0 = all cores), --slice-frames N, --max-sessions N,
//        --seed N, --scale S, --warm-start, --warm-start-weight W,
//        --stats-file PATH (persist the warm-start cache across runs),
//        --metrics-dump PATH (write the final metrics snapshot as JSON on
//        exit — SIGINT/SIGTERM drain first, then the dump is written)
// Network mode:
//        --listen PORT (0 = ephemeral; the chosen port is announced on
//        stdout as {"ok":true,"listening":true,"host":...,"port":N,
//        "shards":N,"listener":"reuseport"|"handoff"}),
//        --host ADDR (default 127.0.0.1), --max-conns N,
//        --idle-timeout SECONDS (0 = never), --max-line-bytes N,
//        --shards N (event-loop shard threads; 0 = hardware concurrency,
//        the default — each shard owns a slice of connections on its own
//        epoll loop, all sharing one SessionManager; results stay
//        bit-identical to stdin mode for any shard count).
//        SIGINT/SIGTERM shut down gracefully: every shard stops
//        accepting, flushes response buffers, closes its connections'
//        sessions; then the process saves --stats-file.
//
// Example (one shell line):
//   printf '%s\n%s\n' '{"cmd":"open","preset":"dashcam","class":"bicycle",
//   "limit":5}' '{"cmd":"stats"}' | exsample_serve --warm-start

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "net/server.h"
#include "obs/metrics.h"
#include "serve/protocol_handler.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "util/flags.h"
#include "util/json.h"

namespace exsample {
namespace {

/// The historical transport: one client on stdin/stdout, one handler.
int ServeStdin(serve::ProtocolHandler* handler) {
  std::string line;
  while (std::getline(std::cin, line)) {
    serve::ProtocolHandler::Outcome outcome = handler->HandleLine(line);
    if (!outcome.response.empty()) {
      std::printf("%s\n", outcome.response.c_str());
      std::fflush(stdout);
    }
    if (outcome.quit) break;
  }
  return 0;
}

int ServeListen(const net::ServerOptions& options,
                serve::SessionManager* manager, serve::StatsCache* cache,
                serve::DatasetPool* datasets,
                serve::ProtocolHandler::Options handler_options) {
  // Connection handlers close their sessions on teardown so a vanished
  // client cannot pin admission slots.
  handler_options.close_sessions_on_destroy = true;
  // Handlers are created per connection after the server exists, so the
  // server_info callback reaches the server through one shared slot filled
  // in below (Create -> fill -> Serve; shard threads start inside Serve,
  // whose thread creation orders the write before any handler runs).
  auto server_slot = std::make_shared<net::Server*>(nullptr);
  handler_options.server_info = [server_slot]() {
    Json info = Json::Object().Set("transport", "tcp");
    net::Server* server = *server_slot;
    if (server == nullptr) return info;
    info.Set("uptime_seconds", server->uptime_seconds())
        .Set("shards", static_cast<int64_t>(server->shards()))
        .Set("listener", std::string(server->listener_mode_name()))
        .Set("connections",
             static_cast<int64_t>(server->active_connections()));
    Json per_shard = Json::Array();
    for (size_t count : server->ConnectionsPerShard()) {
      per_shard.Append(static_cast<int64_t>(count));
    }
    info.Set("shard_connections", std::move(per_shard));
    return info;
  };
  auto created = net::Server::Create(
      options, [manager, cache, datasets, handler_options] {
        return std::make_unique<serve::ProtocolHandler>(
            manager, cache, datasets, handler_options);
      });
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  net::Server* server = created.value().get();
  *server_slot = server;
  Status handlers = server->InstallSignalHandlers();
  if (!handlers.ok()) {
    std::fprintf(stderr, "warning: %s\n", handlers.ToString().c_str());
  }
  // Machine-readable announcement so callers (tests, scripts) can discover
  // an ephemeral port (and see the sharding actually in effect).
  std::printf("%s\n",
              Json::Object()
                  .Set("ok", true)
                  .Set("listening", true)
                  .Set("host", options.host)
                  .Set("port", static_cast<int64_t>(server->port()))
                  .Set("shards", static_cast<int64_t>(server->shards()))
                  .Set("listener", std::string(server->listener_mode_name()))
                  .Dump()
                  .c_str());
  std::fflush(stdout);
  Status served = server->Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "error: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t threads = flags.GetInt("threads", 0);
  const int64_t slice_frames = flags.GetInt("slice-frames", 256);
  const int64_t max_sessions = flags.GetInt("max-sessions", 64);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double scale = flags.GetDouble("scale", 0.1);
  const bool warm_start = flags.GetBool("warm-start");
  const double warm_weight = flags.GetDouble("warm-start-weight", 0.25);
  const std::string stats_file = flags.GetString("stats-file", "");
  const bool listen = flags.Has("listen");
  const int64_t listen_port = flags.GetInt("listen", 0);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int64_t max_conns = flags.GetInt("max-conns", 256);
  const double idle_timeout = flags.GetDouble("idle-timeout", 0.0);
  const int64_t max_line_bytes = flags.GetInt("max-line-bytes", 1 << 20);
  const int64_t shards = flags.GetInt("shards", 0);
  const std::string metrics_dump = flags.GetString("metrics-dump", "");
  flags.FailOnUnknown();
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  if (slice_frames < 1) {
    std::fprintf(stderr, "error: --slice-frames must be >= 1\n");
    return 2;
  }
  if (max_sessions < 1) {
    std::fprintf(stderr, "error: --max-sessions must be >= 1\n");
    return 2;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "error: --scale must be in (0, 1]\n");
    return 2;
  }
  if (warm_weight <= 0.0 || warm_weight > 1.0) {
    std::fprintf(stderr, "error: --warm-start-weight must be in (0, 1]\n");
    return 2;
  }
  if (listen_port < 0 || listen_port > 65535) {
    std::fprintf(stderr, "error: --listen must be in [0, 65535]\n");
    return 2;
  }
  if (max_conns < 1) {
    std::fprintf(stderr, "error: --max-conns must be >= 1\n");
    return 2;
  }
  if (idle_timeout < 0.0) {
    std::fprintf(stderr, "error: --idle-timeout must be >= 0 (0 = never)\n");
    return 2;
  }
  if (max_line_bytes < 2) {
    std::fprintf(stderr, "error: --max-line-bytes must be >= 2\n");
    return 2;
  }
  if (shards < 0 || shards > 1024) {
    std::fprintf(stderr,
                 "error: --shards must be in [0, 1024] (0 = all cores)\n");
    return 2;
  }

  serve::StatsCache cache;
  if (!stats_file.empty()) {
    Status loaded = cache.Load(stats_file);
    // A missing file just means a first run; anything else is reported.
    if (!loaded.ok() && loaded.code() != Status::Code::kNotFound) {
      std::fprintf(stderr, "warning: %s\n", loaded.ToString().c_str());
    }
  }

  // Declared before the manager: datasets must outlive the scheduler and
  // its sessions (reverse destruction order frees the manager first).
  serve::DatasetPool datasets(seed);

  // One registry for the whole process: the serve/core families are
  // registered by the manager, the net.* families by the server (TCP mode),
  // and both the "metrics" command and --metrics-dump snapshot all of it.
  obs::Registry metrics;

  serve::SessionManager::Options options;
  options.threads = static_cast<size_t>(threads);
  options.slice_frames = slice_frames;
  options.max_live_sessions = static_cast<size_t>(max_sessions);
  options.base_seed = seed;
  options.stats_cache = &cache;
  options.warm_start = warm_start;
  options.warm_start_weight = warm_weight;
  options.metrics = &metrics;
  serve::SessionManager manager(options);

  serve::ProtocolHandler::Options handler_options;
  handler_options.default_scale = scale;
  handler_options.warm_start = warm_start;
  handler_options.metrics = &metrics;

  int exit_code = 0;
  if (listen) {
    net::ServerOptions server_options;
    server_options.host = host;
    server_options.port = static_cast<uint16_t>(listen_port);
    server_options.max_connections = static_cast<int>(max_conns);
    server_options.idle_timeout_seconds = idle_timeout;
    server_options.max_line_bytes = static_cast<size_t>(max_line_bytes);
    server_options.metrics = &metrics;
    const unsigned hw = std::thread::hardware_concurrency();
    server_options.shards =
        shards > 0 ? static_cast<int>(shards)
                   : static_cast<int>(hw > 0 ? hw : 1);
    exit_code = ServeListen(server_options, &manager, &cache, &datasets,
                            handler_options);
  } else {
    const auto started = std::chrono::steady_clock::now();
    handler_options.server_info = [started]() {
      return Json::Object()
          .Set("transport", "stdin")
          .Set("uptime_seconds",
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
    };
    serve::ProtocolHandler handler(&manager, &cache, &datasets,
                                   handler_options);
    exit_code = ServeStdin(&handler);
  }

  if (!stats_file.empty()) {
    Status saved = cache.Save(stats_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "warning: %s\n", saved.ToString().c_str());
    }
  }
  if (!metrics_dump.empty()) {
    std::ofstream out(metrics_dump, std::ios::trunc);
    if (out) {
      out << metrics.Snapshot().Dump() << "\n";
    }
    if (!out) {
      std::fprintf(stderr, "warning: could not write --metrics-dump %s\n",
                   metrics_dump.c_str());
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
