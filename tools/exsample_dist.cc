// exsample_dist: distributed repository search — the coordinator front end.
//
// Runs one query as a top-level bandit over logical shards (dist::
// Coordinator), delegating within-shard picks to workers that speak the
// serve protocol's dist.* verbs. Three ways to get workers:
//
//   (default)            in-process LocalShardBackend — no processes, no
//                        sockets; the determinism reference
//   --workers N          spawn N exsample_serve --listen 0 children next
//                        to this binary and connect to them; children are
//                        SIGTERMed and reaped on exit
//   --connect h:p,h:p    connect to already-running exsample_serve workers
//
// Results are bit-identical across all three (and across any worker
// count) for a healthy run: shards are logical, so the worker layout only
// decides where a shard's session runs, never what it samples.
//
// Output: one JSON object on stdout —
//   {"ok":true,"results":17,"results_fingerprint":"0x...","stop_reason":
//    "limit","rounds":9,"picks":36,"frames_processed":9216,
//    "cost_seconds":...,"retries":0,"rpc_timeouts":0,"rpc_disconnects":0,
//    "rejoins":0,"wall_seconds":...,"workers":4,"shards":[{per-shard}]}
//
// Flags: --preset NAME --class NAME (required; composite queries pass
//        --classes a,b --predicate and|seq|multi [--within SECONDS]
//        instead of --class — the open carries a "predicate" object and
//        multi-class picks return per-detection class ids),
//        --scale S, --limit K,
//        --shards L (logical shards), --policy P (within-shard),
//        --shard-policy thompson|bayes_ucb|uniform, --cost-aware,
//        --tracker, --gop-run N, --group-size N, --max-samples N,
//        --frames-per-pick N, --picks-per-round N, --max-rounds N,
//        --seed N, --warm-start, --warm-start-weight W,
//        --rpc-timeout S, --connect-timeout S, --dump-results,
//        --metrics-dump PATH

#include <libgen.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "dist/coordinator.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/json.h"

namespace exsample {
namespace {

/// FNV-1a over the result stream (frame, instance per detection, preceded
/// by the count) — the same scheme the determinism-matrix tests pin, so a
/// tool run can be compared against a test fingerprint directly.
uint64_t Fingerprint(const std::vector<detect::Detection>& results) {
  uint64_t h = 1469598103934665603ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  fold(static_cast<uint64_t>(results.size()));
  for (const detect::Detection& d : results) {
    fold(static_cast<uint64_t>(d.frame));
    fold(static_cast<uint64_t>(d.instance));
  }
  return h;
}

std::string Hex(uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

/// One spawned exsample_serve --listen 0 child. Only its stdout pipe is
/// kept (for the announce line); the child inherits stderr.
struct WorkerProcess {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// Spawns a worker next to this binary and parses its announce line for
/// the ephemeral port. Returns pid -1 on failure.
WorkerProcess SpawnWorker(const std::string& serve_bin, uint64_t seed,
                          double scale) {
  WorkerProcess worker;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) return worker;
  const pid_t pid = fork();
  if (pid < 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    return worker;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    // Workers serve dist.* sessions synchronously; one scheduler thread
    // and one event-loop shard keep each child lean.
    std::vector<std::string> args = {
        serve_bin,  "--listen", "0",
        "--shards", "1",        "--threads",
        "1",        "--seed",   std::to_string(seed),
        "--scale",  std::to_string(scale)};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv(serve_bin.c_str(), argv.data());
    std::perror("execv exsample_serve");
    _exit(127);
  }
  close(out_pipe[1]);
  FILE* from_child = fdopen(out_pipe[0], "r");
  char line[4096];
  if (from_child != nullptr &&
      std::fgets(line, sizeof(line), from_child) != nullptr) {
    auto announce = Json::Parse(line);
    if (announce.ok() && announce.value().GetBool("listening", false)) {
      worker.pid = pid;
      worker.port =
          static_cast<uint16_t>(announce.value().GetInt("port", 0));
    }
  }
  // The pipe is drained no further; the worker talks TCP from here on.
  if (from_child != nullptr) fclose(from_child);
  if (worker.port == 0 && pid > 0) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    worker.pid = -1;
  }
  return worker;
}

void ReapWorkers(std::vector<WorkerProcess>* workers) {
  for (const WorkerProcess& worker : *workers) {
    if (worker.pid > 0) kill(worker.pid, SIGTERM);
  }
  for (const WorkerProcess& worker : *workers) {
    if (worker.pid > 0) waitpid(worker.pid, nullptr, 0);
  }
  workers->clear();
}

/// The exsample_serve binary is expected next to this one.
std::string SiblingServeBin(const char* argv0) {
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  std::string path;
  if (n > 0) {
    self[n] = '\0';
    path = self;
  } else {
    path = argv0;
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  return dir + "/exsample_serve";
}

bool ParseEndpoints(const std::string& csv,
                    std::vector<dist::ClientShardBackend::Endpoint>* out) {
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(pos, comma - pos);
    const size_t colon = item.find_last_of(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) return false;
    const long port = std::strtol(item.c_str() + colon + 1, nullptr, 10);
    if (port < 1 || port > 65535) return false;
    dist::ClientShardBackend::Endpoint endpoint;
    endpoint.host = colon == 0 ? "127.0.0.1" : item.substr(0, colon);
    endpoint.port = static_cast<uint16_t>(port);
    out->push_back(std::move(endpoint));
    pos = comma + 1;
  }
  return !out->empty();
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string preset = flags.GetString("preset", "dashcam");
  const std::string class_name = flags.GetString("class", "");
  const std::string classes_csv = flags.GetString("classes", "");
  const std::string predicate_name = flags.GetString("predicate", "");
  const double within_flag = flags.GetDouble("within", 0.0);
  const double scale = flags.GetDouble("scale", 0.1);
  const int64_t limit = flags.GetInt("limit", 0);
  const int64_t num_shards = flags.GetInt("shards", 4);
  const std::string policy = flags.GetString("policy", "thompson");
  const std::string shard_policy =
      flags.GetString("shard-policy", "thompson");
  const bool cost_aware = flags.GetBool("cost-aware");
  const bool tracker = flags.GetBool("tracker");
  const int64_t gop_run = flags.GetInt("gop-run", 1);
  const int64_t group_size = flags.GetInt("group-size", 0);
  const int64_t max_samples = flags.GetInt("max-samples", 0);
  const int64_t frames_per_pick = flags.GetInt("frames-per-pick", 256);
  const int64_t picks_per_round = flags.GetInt("picks-per-round", 4);
  const int64_t max_rounds = flags.GetInt("max-rounds", 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool warm_start = flags.GetBool("warm-start");
  const double warm_weight = flags.GetDouble("warm-start-weight", 0.25);
  const double rpc_timeout = flags.GetDouble("rpc-timeout", 30.0);
  const double connect_timeout = flags.GetDouble("connect-timeout", 5.0);
  const int64_t spawn_workers = flags.GetInt("workers", 0);
  const std::string connect = flags.GetString("connect", "");
  const bool dump_results = flags.GetBool("dump-results");
  const std::string metrics_dump = flags.GetString("metrics-dump", "");
  flags.FailOnUnknown();

  // --- composite predicate flags, mirroring exsample_query: --classes a,b
  // --predicate and|seq|multi [--within S], exclusive with --class.
  const bool use_predicate =
      !predicate_name.empty() || !classes_csv.empty();
  core::PredicateRequest predicate_request;
  if (use_predicate) {
    if (!class_name.empty()) {
      std::fprintf(stderr,
                   "error: pass either --class or --classes/--predicate, "
                   "not both\n");
      return 2;
    }
    if (predicate_name.empty() || classes_csv.empty()) {
      std::fprintf(stderr,
                   "error: --classes and --predicate go together "
                   "(--predicate single|and|seq|multi)\n");
      return 2;
    }
    if (!core::ParsePredicateKindName(predicate_name,
                                      &predicate_request.kind)) {
      std::fprintf(stderr,
                   "error: unknown predicate '%s' (single|and|seq|multi)\n",
                   predicate_name.c_str());
      return 2;
    }
    predicate_request.class_names = SplitCommaList(classes_csv);
    if (flags.Has("within")) {
      if (predicate_request.kind != core::PredicateKind::kSequence) {
        std::fprintf(stderr, "error: --within applies to --predicate seq\n");
        return 2;
      }
      if (within_flag <= 0.0) {
        std::fprintf(stderr,
                     "error: --within must be > 0 seconds (omit it for an "
                     "unbounded window)\n");
        return 2;
      }
      predicate_request.within_seconds = within_flag;
    }
  } else if (class_name.empty()) {
    std::fprintf(stderr,
                 "error: --class (or --classes/--predicate) is required\n");
    return 2;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "error: --scale must be in (0, 1]\n");
    return 2;
  }
  if (num_shards < 1 || num_shards > 65536) {
    std::fprintf(stderr, "error: --shards must be in [1, 65536]\n");
    return 2;
  }
  if (limit < 0 || max_samples < 0 || max_rounds < 0) {
    std::fprintf(stderr,
                 "error: --limit/--max-samples/--max-rounds must be >= 0\n");
    return 2;
  }
  if (frames_per_pick < 1 || picks_per_round < 1) {
    std::fprintf(
        stderr,
        "error: --frames-per-pick and --picks-per-round must be >= 1\n");
    return 2;
  }
  if (warm_weight <= 0.0 || warm_weight > 1.0) {
    std::fprintf(stderr, "error: --warm-start-weight must be in (0, 1]\n");
    return 2;
  }
  if (spawn_workers < 0 || spawn_workers > 256) {
    std::fprintf(stderr, "error: --workers must be in [0, 256]\n");
    return 2;
  }
  if (spawn_workers > 0 && !connect.empty()) {
    std::fprintf(stderr, "error: --workers and --connect are exclusive\n");
    return 2;
  }

  dist::CoordinatorOptions options;
  options.shard.preset = preset;
  options.shard.class_name = class_name;
  if (use_predicate) options.shard.predicate = predicate_request;
  options.shard.scale = scale;
  options.shard.cost_aware = cost_aware;
  options.shard.tracker = tracker;
  options.shard.gop_run = static_cast<int32_t>(gop_run);
  options.shard.group_size = static_cast<int32_t>(group_size);
  options.shard.max_samples = max_samples;
  options.shard.warm_start = warm_start;
  options.shard.warm_weight = warm_weight;
  if (!core::ParsePolicyName(policy, &options.shard.policy)) {
    std::fprintf(stderr, "error: unknown --policy %s\n", policy.c_str());
    return 2;
  }
  if (!core::ParsePolicyName(shard_policy, &options.shard_policy)) {
    std::fprintf(stderr, "error: unknown --shard-policy %s\n",
                 shard_policy.c_str());
    return 2;
  }
  options.num_shards = static_cast<int32_t>(num_shards);
  options.seed = seed;
  options.cost_aware = cost_aware;
  options.result_limit = limit;
  options.frames_per_pick = frames_per_pick;
  options.picks_per_round = static_cast<int32_t>(picks_per_round);
  options.max_rounds = max_rounds;
  obs::Registry metrics;
  options.metrics = &metrics;

  // Pick the backend: spawned children / remote endpoints / in-process.
  std::vector<WorkerProcess> children;
  std::unique_ptr<dist::ShardBackend> backend;
  if (spawn_workers > 0) {
    const std::string serve_bin = SiblingServeBin(argv[0]);
    std::vector<dist::ClientShardBackend::Endpoint> endpoints;
    for (int64_t w = 0; w < spawn_workers; ++w) {
      WorkerProcess child = SpawnWorker(serve_bin, seed, scale);
      if (child.pid < 0) {
        std::fprintf(stderr, "error: could not spawn %s\n",
                     serve_bin.c_str());
        ReapWorkers(&children);
        return 1;
      }
      children.push_back(child);
      endpoints.push_back({"127.0.0.1", child.port});
    }
    dist::ClientShardBackend::Options client_options;
    client_options.connect_timeout_seconds = connect_timeout;
    client_options.rpc_timeout_seconds = rpc_timeout;
    backend = std::make_unique<dist::ClientShardBackend>(
        std::move(endpoints), client_options);
  } else if (!connect.empty()) {
    std::vector<dist::ClientShardBackend::Endpoint> endpoints;
    if (!ParseEndpoints(connect, &endpoints)) {
      std::fprintf(stderr,
                   "error: --connect expects host:port[,host:port...]\n");
      return 2;
    }
    dist::ClientShardBackend::Options client_options;
    client_options.connect_timeout_seconds = connect_timeout;
    client_options.rpc_timeout_seconds = rpc_timeout;
    backend = std::make_unique<dist::ClientShardBackend>(
        std::move(endpoints), client_options);
  } else {
    dist::LocalShardBackend::Options local_options;
    local_options.num_workers = 1;
    local_options.seed = seed;
    local_options.default_scale = scale;
    backend = std::make_unique<dist::LocalShardBackend>(local_options);
  }

  dist::Coordinator coordinator(backend.get(), options);
  const auto started = std::chrono::steady_clock::now();
  auto run = coordinator.Run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  ReapWorkers(&children);
  if (!run.ok()) {
    std::printf("%s\n", Json::Object()
                            .Set("ok", false)
                            .Set("error", run.status().ToString())
                            .Dump()
                            .c_str());
    return 1;
  }
  const dist::CoordinatorResult& result = run.value();

  Json shards = Json::Array();
  for (const dist::ShardOutcome& shard : result.shards) {
    shards.Append(Json::Object()
                      .Set("shard", static_cast<int64_t>(shard.shard))
                      .Set("worker", static_cast<int64_t>(shard.worker))
                      .Set("picks", shard.picks)
                      .Set("frames", shard.frames)
                      .Set("results", shard.results)
                      .Set("exhausted", shard.exhausted)
                      .Set("available", shard.available)
                      .Set("agg", dist::ToJson(shard.agg)));
  }
  Json output =
      Json::Object()
          .Set("ok", true)
          .Set("results", static_cast<int64_t>(result.results.size()))
          .Set("results_fingerprint", Hex(Fingerprint(result.results)))
          .Set("stop_reason", result.stop_reason)
          .Set("rounds", result.rounds)
          .Set("picks", result.picks)
          .Set("frames_processed", result.frames_processed)
          .Set("cost_seconds", result.cost_seconds)
          .Set("retries", result.retries)
          .Set("rpc_timeouts", result.rpc_timeouts)
          .Set("rpc_disconnects", result.rpc_disconnects)
          .Set("rejoins", result.rejoins)
          .Set("wall_seconds", wall_seconds)
          .Set("workers", static_cast<int64_t>(backend->num_workers()))
          .Set("shards", std::move(shards));
  if (dump_results) {
    Json detections = Json::Array();
    for (const detect::Detection& d : result.results) {
      detections.Append(Json::Object()
                            .Set("frame", d.frame)
                            .Set("score", d.score)
                            .Set("instance", d.instance));
    }
    output.Set("detections", std::move(detections));
  }
  std::printf("%s\n", output.Dump().c_str());
  std::fflush(stdout);

  if (!metrics_dump.empty()) {
    std::ofstream out(metrics_dump, std::ios::trunc);
    if (out) out << metrics.Snapshot().Dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write --metrics-dump %s\n",
                   metrics_dump.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
