// exsample_query: command-line distinct-object search over a dataset spec.
//
// Runs a query against a synthetic dataset described by a spec file (see
// src/data/spec_io.h for the format; --print-spec <preset> emits one), with
// selectable strategy, limits and budgets, and writes results as CSV.
//
// Examples:
//   # emit a paper preset's spec for editing
//   exsample_query --print-spec dashcam > dashcam.spec
//
//   # find 50 distinct bicycles with ExSample, write results
//   exsample_query --spec dashcam.spec --class bicycle --limit 50 --out results.csv
//
//   # random-sampling baseline under a 10-minute GPU budget
//   exsample_query --spec dashcam.spec --class bicycle --strategy random --budget-seconds 600
//
//   # 16 repeated trials scheduled across all cores (deterministic: trial
//   # seeds derive from trial ids, not thread scheduling)
//   exsample_query --preset dashcam --class bicycle --limit 50 --trials 16 --threads 0
//
//   # machine-readable output (spec, per-trial frames/seconds/trajectory)
//   exsample_query --preset dashcam --class bicycle --limit 50 --json
//
//   # composite predicates: car AND person in the same frame; car then
//   # person within 2 seconds; independent car+person result sets over one
//   # shared decode stream
//   exsample_query --preset paired_street --classes car,person --predicate and --limit 20
//   exsample_query --preset paired_street --classes car,person --predicate seq --within 2 --limit 20
//   exsample_query --preset paired_street --classes car,person --predicate multi --limit 20
//
//   # per-query trace: every pick/frame/hit event as JSON for offline
//   # bandit-trajectory analysis (single trial only; tracing never
//   # perturbs results — the traced run is bit-identical to an untraced one)
//   exsample_query --preset dashcam --class bicycle --limit 50 --trace trace.json

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/predicate.h"
#include "data/presets.h"
#include "data/spec_io.h"
#include "data/statistics.h"
#include "detect/cost_model.h"
#include "detect/simulated_detector.h"
#include "exec/multi_query_runner.h"
#include "exec/predicate_jobs.h"
#include "exec/query_job.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "track/discriminator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace exsample {
namespace {

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string print_spec = flags.GetString("print-spec", "");
  const std::string spec_path = flags.GetString("spec", "");
  const std::string preset = flags.GetString("preset", "");
  const double scale = flags.GetDouble("scale", 0.1);
  const std::string class_name = flags.GetString("class", "");
  const std::string classes_flag = flags.GetString("classes", "");
  const std::string predicate_name = flags.GetString("predicate", "");
  const double within_flag = flags.GetDouble("within", 0.0);
  const int64_t limit = flags.GetInt("limit", 0);
  // --cost-budget is the explicit "modeled GPU seconds" spelling of
  // --budget-seconds (both cap QuerySpec::max_seconds).
  const bool has_budget_flag =
      flags.Has("budget-seconds") || flags.Has("cost-budget");
  // Read both spellings unconditionally so each registers as a known flag.
  const double budget_seconds_flag = flags.GetDouble("budget-seconds", 0.0);
  const double cost_budget_flag = flags.GetDouble("cost-budget", 0.0);
  const double budget_seconds =
      flags.Has("cost-budget") ? cost_budget_flag : budget_seconds_flag;
  const bool both_budget_flags =
      flags.Has("budget-seconds") && flags.Has("cost-budget");
  const bool cost_aware = flags.GetBool("cost-aware");
  const int64_t gop_run = flags.GetInt("gop-run", 1);
  const int64_t batch = flags.GetInt("batch", 1);
  const int64_t pipeline_depth = flags.GetInt("pipeline-depth", 0);
  const int64_t detect_batch = flags.GetInt("detect-batch", 8);
  const std::string strategy_name = flags.GetString("strategy", "exsample");
  const std::string policy_name = flags.GetString("policy", "");
  const int64_t group_size = flags.GetInt("group-size", 0);
  const std::string out_path = flags.GetString("out", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool use_tracker = flags.GetBool("tracker");
  const bool json_output = flags.GetBool("json");
  const int64_t trials = flags.GetInt("trials", 1);
  const int64_t threads_flag = flags.GetInt("threads", 0);
  const std::string trace_path = flags.GetString("trace", "");
  flags.FailOnUnknown();
  if (trials < 1) {
    std::fprintf(stderr, "error: --trials must be >= 1\n");
    return 2;
  }
  if (!trace_path.empty() && trials != 1) {
    std::fprintf(stderr,
                 "error: --trace records one query; use --trials 1\n");
    return 2;
  }
  if (threads_flag < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  if (limit < 0 || (flags.Has("limit") && limit == 0)) {
    std::fprintf(stderr,
                 "error: --limit must be >= 1 (omit it for no limit)\n");
    return 2;
  }
  if (both_budget_flags) {
    std::fprintf(stderr,
                 "error: --budget-seconds and --cost-budget are aliases; "
                 "pass only one\n");
    return 2;
  }
  if (has_budget_flag && budget_seconds <= 0.0) {
    std::fprintf(stderr,
                 "error: --budget-seconds/--cost-budget must be > 0 "
                 "(omit it for an unlimited budget)\n");
    return 2;
  }
  if (gop_run < 1 || gop_run > std::numeric_limits<int32_t>::max()) {
    std::fprintf(stderr, "error: --gop-run must be in [1, 2^31)\n");
    return 2;
  }
  if (batch < 1 || batch > std::numeric_limits<int32_t>::max()) {
    std::fprintf(stderr, "error: --batch must be in [1, 2^31)\n");
    return 2;
  }
  if (pipeline_depth < 0 ||
      pipeline_depth > std::numeric_limits<int32_t>::max()) {
    std::fprintf(stderr,
                 "error: --pipeline-depth must be in [0, 2^31) "
                 "(0 = serial path)\n");
    return 2;
  }
  if (detect_batch < 1 || detect_batch > std::numeric_limits<int32_t>::max()) {
    std::fprintf(stderr, "error: --detect-batch must be in [1, 2^31)\n");
    return 2;
  }
  if (group_size < 0 || group_size > std::numeric_limits<int32_t>::max()) {
    std::fprintf(stderr,
                 "error: --group-size must be in [0, 2^31) (0 = auto)\n");
    return 2;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "error: --scale must be in (0, 1]\n");
    return 2;
  }
  // --- composite predicate flags: --classes a,b --predicate and|seq|multi
  // [--within S]. Mutually exclusive with the single-class --class spelling.
  const bool use_predicate = !predicate_name.empty() || !classes_flag.empty();
  core::PredicateRequest predicate_request;
  if (use_predicate) {
    if (!class_name.empty()) {
      std::fprintf(stderr,
                   "error: pass either --class or --classes/--predicate, "
                   "not both\n");
      return 2;
    }
    if (predicate_name.empty() || classes_flag.empty()) {
      std::fprintf(stderr,
                   "error: --classes and --predicate go together "
                   "(--predicate single|and|seq|multi)\n");
      return 2;
    }
    if (!core::ParsePredicateKindName(predicate_name,
                                      &predicate_request.kind)) {
      std::fprintf(stderr,
                   "error: unknown predicate '%s' (single|and|seq|multi)\n",
                   predicate_name.c_str());
      return 2;
    }
    predicate_request.class_names = SplitCommaList(classes_flag);
    if (flags.Has("within")) {
      if (predicate_request.kind != core::PredicateKind::kSequence) {
        std::fprintf(stderr, "error: --within applies to --predicate seq\n");
        return 2;
      }
      if (within_flag <= 0.0) {
        std::fprintf(stderr,
                     "error: --within must be > 0 seconds (omit it for an "
                     "unbounded window)\n");
        return 2;
      }
      predicate_request.within_seconds = within_flag;
    }
    if (!trace_path.empty() &&
        predicate_request.kind == core::PredicateKind::kMultiClass) {
      std::fprintf(stderr,
                   "error: --trace records one engine; multi predicates run "
                   "one engine per class\n");
      return 2;
    }
  }
  const size_t threads = static_cast<size_t>(threads_flag);

  if (!print_spec.empty()) {
    std::printf("%s", data::SpecToText(
                          data::MakePresetSpec(print_spec, scale)).c_str());
    return 0;
  }

  // --- dataset
  data::DatasetSpec spec;
  if (!spec_path.empty()) {
    auto loaded = data::LoadSpec(spec_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    spec = std::move(loaded).value();
  } else if (!preset.empty()) {
    spec = data::MakePresetSpec(preset, scale);
  } else {
    std::fprintf(stderr,
                 "usage: exsample_query (--spec FILE | --preset NAME) "
                 "--class NAME [--limit N] [--budget-seconds S]\n"
                 "       [--classes A,B --predicate single|and|seq|multi "
                 "[--within S]  (composite query instead of --class)]\n"
                 "       [--cost-budget S  (modeled GPU seconds; alias of "
                 "--budget-seconds)]\n"
                 "       [--strategy exsample|random|randomplus|sequential]"
                 " [--cost-aware] [--gop-run B]\n"
                 "       [--batch N  (picks per source batch)]\n"
                 "       [--pipeline-depth N  (decode-ahead queue; 0 = "
                 "serial path)] [--detect-batch N]\n"
                 "       [--policy thompson|bayes_ucb|greedy|uniform|"
                 "hier_thompson|hier_bayes_ucb]\n"
                 "       [--group-size G  (hier_* group fan-out; 0 = auto)]\n"
                 "       [--out results.csv] [--tracker] [--seed N]\n"
                 "       [--trials N] [--threads T  (0 = all cores)] "
                 "[--json]\n"
                 "       exsample_query --print-spec PRESET\n");
    return 2;
  }
  data::Dataset dataset = data::GenerateDataset(spec, seed);

  core::QueryPredicate predicate;
  const data::ClassSpec* cls = nullptr;
  if (use_predicate) {
    auto resolved = exec::ResolvePredicate(dataset, predicate_request);
    if (!resolved.ok()) {
      std::fprintf(stderr, "error: %s; available classes:",
                   resolved.status().ToString().c_str());
      for (const auto& c : dataset.classes) {
        std::fprintf(stderr, " %s", c.name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    predicate = resolved.value();
    // The result class's spec, for reporting.
    for (const auto& c : dataset.classes) {
      if (c.class_id == predicate.result_class()) cls = &c;
    }
  } else {
    cls = dataset.FindClass(class_name);
  }
  if (cls == nullptr) {
    std::fprintf(stderr, "error: class '%s' not in dataset; available:",
                 class_name.c_str());
    for (const auto& c : dataset.classes) {
      std::fprintf(stderr, " %s", c.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  // --- strategy
  core::EngineConfig config;
  if (!core::ApplyStrategyName(strategy_name, &config)) {
    std::fprintf(stderr, "error: unknown strategy '%s'\n",
                 strategy_name.c_str());
    return 1;
  }
  if (!policy_name.empty() &&
      !core::ParsePolicyName(policy_name, &config.policy)) {
    std::fprintf(stderr,
                 "error: unknown policy '%s' (thompson|bayes_ucb|greedy|"
                 "uniform|hier_thompson|hier_bayes_ucb)\n",
                 policy_name.c_str());
    return 1;
  }
  config.cost_aware = cost_aware;
  config.gop_run_frames = static_cast<int32_t>(gop_run);
  config.group_size = static_cast<int32_t>(group_size);
  config.batch_size = static_cast<int32_t>(batch);

  // --- run: every trial is one scheduled job; job seeds derive from trial
  // ids so any thread count reproduces the same results.
  core::QuerySpec query;
  query.class_id = cls->class_id;
  if (limit > 0) query.result_limit = limit;
  query.max_seconds = budget_seconds;

  obs::TraceRecorder trace;
  std::vector<exec::QueryJob> jobs;
  jobs.reserve(static_cast<size_t>(trials));
  for (int64_t t = 0; t < trials; ++t) {
    exec::QueryJob job;
    job.id = t;
    job.repo = &dataset.repo;
    job.chunks = &dataset.chunks;
    job.config = config;
    job.spec = query;
    job.pipeline_depth = static_cast<int32_t>(pipeline_depth);
    job.detect_batch = static_cast<int32_t>(detect_batch);
    if (use_predicate) {
      exec::ConfigurePredicateJob(&dataset, predicate, use_tracker,
                                  detect::DetectorConfig{}, &job);
    } else {
      job.make_detector = [&dataset, cls](uint64_t detector_seed) {
        return std::make_unique<detect::SimulatedDetector>(
            &dataset.ground_truth, cls->class_id, detect::DetectorConfig{},
            detector_seed);
      };
      job.make_discriminator =
          [use_tracker]() -> std::unique_ptr<track::Discriminator> {
        if (use_tracker) {
          return std::make_unique<track::TrackerDiscriminator>();
        }
        return std::make_unique<track::OracleDiscriminator>();
      };
    }
    if (!trace_path.empty()) job.trace = &trace;  // single trial (checked)
    jobs.push_back(std::move(job));
  }
  const bool multi_class =
      use_predicate && predicate.kind == core::PredicateKind::kMultiClass;
  std::vector<exec::JobResult> outcomes;
  if (multi_class) {
    // MultiQueryRunner schedules single-engine jobs; multi-class trials run
    // a per-class engine set over one shared decode cache, so each trial is
    // driven here through a QuerySession (same JobSeed stream — trial t's
    // results match a served multi-class session with id t bit for bit).
    outcomes.reserve(jobs.size());
    for (exec::QueryJob& job : jobs) {
      serve::QuerySession session(job, seed);
      while (session.RunSlice(4096)) {
      }
      exec::JobResult outcome;
      outcome.job_id = job.id;
      outcome.seed = session.seed();
      outcome.result = session.result();
      outcomes.push_back(std::move(outcome));
    }
  } else {
    exec::MultiQueryRunner::Options options;
    options.threads = trials == 1 ? 1 : threads;
    options.base_seed = seed;
    outcomes = exec::MultiQueryRunner(options).RunAll(jobs);
  }
  const core::QueryResult& result = outcomes.front().result;

  // --- optional trace dump: the run's pick/frame/hit event stream plus
  // enough query context to interpret it standalone.
  if (!trace_path.empty()) {
    Json doc = Json::Object();
    doc.Set("tool", "exsample_query")
        .Set("dataset", dataset.name)
        .Set("class", cls->name)
        .Set("strategy", strategy_name)
        .Set("policy", core::PolicyKindName(config.policy))
        .Set("seed", static_cast<int64_t>(outcomes.front().seed))
        .Set("results", static_cast<int64_t>(result.results.size()))
        .Set("frames", result.frames_processed)
        .Set("trace", trace.ToJson());
    std::ofstream trace_out(trace_path, std::ios::trunc);
    if (!trace_out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace_out << doc.Dump() << "\n";
    std::fprintf(json_output ? stderr : stdout,
                 "wrote %lld trace events to %s\n",
                 static_cast<long long>(trace.total_recorded()),
                 trace_path.c_str());
  }

  // --- optional CSV dump (trial 0's results), in either output mode
  if (!out_path.empty()) {
    // Multi-class result streams interleave classes, so their CSV carries a
    // class_id column; single-class output keeps the schema it always had.
    std::vector<std::string> columns = {"result_index", "frame", "x",
                                        "y",            "w",     "h",
                                        "score"};
    if (multi_class) columns.push_back("class_id");
    Table csv(columns);
    for (size_t i = 0; i < result.results.size(); ++i) {
      const auto& d = result.results[i];
      std::vector<std::string> row = {
          Table::Int(static_cast<int64_t>(i)), Table::Int(d.frame),
          Table::Num(d.box.x, 6),              Table::Num(d.box.y, 6),
          Table::Num(d.box.w, 6),              Table::Num(d.box.h, 6),
          Table::Num(d.score, 4)};
      if (multi_class) {
        row.push_back(Table::Int(static_cast<int64_t>(d.class_id)));
      }
      csv.AddRow(row);
    }
    std::ofstream out(out_path);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << csv.ToCsv();
    // In JSON mode stdout carries only the document; log to stderr.
    std::fprintf(json_output ? stderr : stdout, "wrote %zu results%s to %s\n",
                 result.results.size(), trials > 1 ? " (trial 0 only)" : "",
                 out_path.c_str());
  }

  // --- report
  if (json_output) {
    // Same JSON helpers as tools/exsample_serve, so downstream consumers
    // parse one format across the CLI and the serving protocol.
    Json doc = Json::Object();
    doc.Set("tool", "exsample_query");
    doc.Set("dataset", Json::Object()
                           .Set("name", dataset.name)
                           .Set("frames", dataset.repo.total_frames())
                           .Set("chunks",
                                static_cast<int64_t>(dataset.chunks.size())));
    Json query_obj = Json::Object();
    query_obj.Set("class", cls->name)
        .Set("class_id", static_cast<int64_t>(cls->class_id));
    if (use_predicate) {
      // Canonical predicate key plus the resolved constituents; "class" above
      // stays the result class (a composite's output stream class).
      query_obj.Set("predicate", core::PredicateKey(predicate));
      Json class_arr = Json::Array();
      for (detect::ClassId id : predicate.classes) {
        class_arr.Append(static_cast<int64_t>(id));
      }
      query_obj.Set("predicate_classes", std::move(class_arr));
    }
    query_obj.Set("strategy", strategy_name)
        .Set("policy", core::PolicyKindName(config.policy))
        .Set("group_size", group_size)
        .Set("cost_aware", cost_aware)
        .Set("gop_run", gop_run)
        .Set("batch", batch)
        .Set("pipeline_depth", pipeline_depth)
        .Set("detect_batch", detect_batch)
        .Set("limit", limit)
        .Set("budget_seconds", budget_seconds)
        .Set("tracker", use_tracker)
        .Set("seed", static_cast<int64_t>(seed))
        .Set("trials", trials);
    doc.Set("query", std::move(query_obj));
    Json trials_arr = Json::Array();
    for (const exec::JobResult& outcome : outcomes) {
      const core::QueryResult& r = outcome.result;
      Json t = Json::Object();
      t.Set("trial", outcome.job_id)
          .Set("seed", static_cast<int64_t>(outcome.seed))
          .Set("results", static_cast<int64_t>(r.results.size()))
          .Set("frames", r.frames_processed)
          .Set("decode_seconds", r.decode_seconds)
          .Set("inference_seconds", r.inference_seconds)
          .Set("total_seconds", r.total_seconds());
      Json points = Json::Array();
      for (const auto& p : r.reported.points()) {
        points.Append(
            Json::Object().Set("samples", p.samples).Set("count", p.count));
      }
      t.Set("trajectory", std::move(points));
      trials_arr.Append(std::move(t));
    }
    doc.Set("trials", std::move(trials_arr));
    std::printf("%s\n", doc.Dump().c_str());
    return 0;
  }
  detect::ThroughputModel throughput;
  if (use_predicate) {
    std::printf("dataset '%s': %lld frames, %zu chunks; predicate %s\n",
                dataset.name.c_str(),
                static_cast<long long>(dataset.repo.total_frames()),
                dataset.chunks.size(),
                core::PredicateKey(predicate).c_str());
  } else {
    std::printf("dataset '%s': %lld frames, %zu chunks; query class '%s'\n",
                dataset.name.c_str(),
                static_cast<long long>(dataset.repo.total_frames()),
                dataset.chunks.size(), cls->name.c_str());
  }
  for (const exec::JobResult& outcome : outcomes) {
    std::printf("strategy %s trial %lld: %zu distinct results in %lld frames "
                "(%s modeled GPU time)\n",
                strategy_name.c_str(), static_cast<long long>(outcome.job_id),
                outcome.result.results.size(),
                static_cast<long long>(outcome.result.frames_processed),
                Table::Duration(throughput.SampleSeconds(
                                    outcome.result.frames_processed))
                    .c_str());
  }
  if (trials > 1) {
    std::vector<double> frames;
    frames.reserve(outcomes.size());
    for (const exec::JobResult& outcome : outcomes) {
      frames.push_back(
          static_cast<double>(outcome.result.frames_processed));
    }
    std::printf("median over %lld trials: %lld frames\n",
                static_cast<long long>(trials),
                static_cast<long long>(Percentile(frames, 0.5)));
  }
  return 0;
}

}  // namespace
}  // namespace exsample

int main(int argc, char** argv) { return exsample::Main(argc, argv); }
