// End-to-end distributed search over real TCP: a coordinator with a
// ClientShardBackend against in-process net::Server workers (each with
// its own SessionManager, StatsCache, and DatasetPool — the full stack a
// worker process runs). Pins the two promises the dist subsystem makes:
//
//  1. Determinism matrix: a healthy run's results are bit-identical for
//     1, 2, and 4 TCP workers AND the in-process LocalShardBackend
//     reference — worker layout must never leak into the result stream.
//  2. Fault tolerance: a worker torn down mid-query (via FaultProxy, so
//     the failure is deterministic) does not lose the query. The failed
//     picks re-route to survivors, the worker's shard statistics persist
//     on teardown, and the rejoin path re-opens its shards through the
//     same endpoint — the query still runs every shard to completion.
//
// Runs under TSan via the `dist` label: the per-worker dispatch threads,
// the server event loops, and the proxy relay threads all race here.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../testing/fault_injection.h"
#include "../testing/fingerprint.h"
#include "dist/coordinator.h"
#include "net/server.h"
#include "serve/protocol_handler.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"

namespace exsample {
namespace dist {
namespace {

constexpr char kHost[] = "127.0.0.1";

/// One complete worker process, in-process: its own manager, cache,
/// datasets, and a net::Server on an ephemeral loopback port. Mirrors
/// what `exsample_serve --listen 0 --threads 1 --seed 7 --scale 0.02`
/// would spawn.
class WorkerStack {
 public:
  WorkerStack() : datasets_(7) {
    serve::SessionManager::Options manager_options;
    manager_options.threads = 1;
    manager_options.base_seed = 7;
    manager_ = std::make_unique<serve::SessionManager>(manager_options);

    net::ServerOptions options;
    options.host = kHost;
    options.port = 0;
    auto created = net::Server::Create(options, [this] {
      serve::ProtocolHandler::Options handler_options;
      handler_options.default_scale = 0.02;
      handler_options.close_sessions_on_destroy = true;
      return std::make_unique<serve::ProtocolHandler>(
          manager_.get(), &cache_, &datasets_, handler_options);
    });
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    server_ = std::move(created).value();
    loop_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  ~WorkerStack() {
    server_->RequestStop();
    loop_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  uint16_t port() const { return server_->port(); }
  serve::StatsCache* cache() { return &cache_; }

 private:
  // Destruction order: server (whose handlers reference the manager)
  // before manager, manager before datasets.
  serve::StatsCache cache_;
  serve::DatasetPool datasets_;
  std::unique_ptr<serve::SessionManager> manager_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  Status serve_status_;
};

/// The worker records shard statistics when its server notices the
/// connection died — asynchronously; cache checks poll for it.
bool WaitFor(const std::function<bool()>& predicate, double seconds = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

uint64_t Fingerprint(const std::vector<detect::Detection>& results) {
  uint64_t h = testing_util::kFnv1aOffsetBasis;
  h = testing_util::Fnv1a(h, results.size());
  for (const detect::Detection& d : results) {
    h = testing_util::Fnv1a(h, static_cast<uint64_t>(d.frame));
    h = testing_util::Fnv1a(h, static_cast<uint64_t>(d.instance));
  }
  return h;
}

CoordinatorOptions MatrixOptions() {
  CoordinatorOptions options;
  options.shard.preset = "dashcam";
  options.shard.class_name = "bicycle";
  options.shard.scale = 0.02;
  options.num_shards = 4;
  options.seed = 7;
  options.frames_per_pick = 64;
  options.picks_per_round = 4;
  options.result_limit = 8;
  return options;
}

/// Exhaustion-mode options: no result limit, a small per-shard sample
/// cap. The coordinator must then pick EVERY shard to completion, which
/// guarantees the faulted worker receives picks (so a scripted fault on
/// its first pick always fires) and makes per-shard outcomes comparable
/// across runs: an uninterrupted shard consumes the same deterministic
/// prefix of its sampling stream no matter how budgets partition it.
CoordinatorOptions ExhaustionOptions() {
  CoordinatorOptions options = MatrixOptions();
  options.result_limit = 0;
  options.shard.max_samples = 96;
  options.frames_per_pick = 48;
  options.retry_backoff_seconds = 0.01;
  options.rejoin_backoff_seconds = 0.1;
  return options;
}

ClientShardBackend::Options FastRpcOptions() {
  ClientShardBackend::Options options;
  options.connect_timeout_seconds = 5.0;
  options.rpc_timeout_seconds = 30.0;
  return options;
}

TEST(DistE2eTest, ResultsMatchLocalReferenceAcrossTcpWorkerCounts) {
  // The in-process reference result stream...
  uint64_t reference = 0;
  int64_t reference_frames = 0;
  {
    LocalShardBackend::Options local;
    local.seed = 7;
    local.default_scale = 0.02;
    LocalShardBackend backend(local);
    Coordinator coordinator(&backend, MatrixOptions());
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run.value().stop_reason, "limit");
    reference = Fingerprint(run.value().results);
    reference_frames = run.value().frames_processed;
  }

  // ...must be byte-identical over real sockets at every worker count.
  for (int num_workers : {1, 2, 4}) {
    std::vector<std::unique_ptr<WorkerStack>> workers;
    std::vector<ClientShardBackend::Endpoint> endpoints;
    for (int w = 0; w < num_workers; ++w) {
      workers.push_back(std::make_unique<WorkerStack>());
      endpoints.push_back({kHost, workers.back()->port()});
    }
    ClientShardBackend backend(endpoints, FastRpcOptions());
    ASSERT_TRUE(backend.ConnectAll().ok());
    Coordinator coordinator(&backend, MatrixOptions());
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const CoordinatorResult& result = run.value();
    EXPECT_EQ(result.stop_reason, "limit") << num_workers << " workers";
    EXPECT_EQ(Fingerprint(result.results), reference)
        << num_workers << " workers diverged from the local reference";
    EXPECT_EQ(result.frames_processed, reference_frames)
        << num_workers << " workers";
    EXPECT_EQ(result.rpc_disconnects, 0);
    EXPECT_EQ(result.rejoins, 0);
  }
}

TEST(DistE2eTest, WorkerTornDownMidQueryStillCompletesEveryShard) {
  // The acceptance scenario: one of two workers "crashes" mid-query.
  // FaultProxy drops worker 1's connection right after its FIRST pick
  // request is relayed upstream (the worker did the work; the reply is
  // lost), then keeps accepting so the rejoin reconnects through the
  // same port. Requests through the proxy: open shard 1, open shard 3,
  // then the fatal pick — trigger_request = 3 is deterministic.
  WorkerStack worker0;
  WorkerStack worker1;
  testing_util::FaultProxy::Options fault;
  fault.upstream_port = worker1.port();
  fault.fault = testing_util::FaultProxy::Fault::kDropAfterRequest;
  fault.trigger_request = 3;
  testing_util::FaultProxy proxy(fault);
  ASSERT_TRUE(proxy.Start());

  const CoordinatorOptions options = ExhaustionOptions();

  // Reference: the same exhaustion run with no faults. Shards 0 and 2
  // live on the unfaulted worker, so their per-shard result counts must
  // match this run exactly.
  std::vector<int64_t> reference_results;
  {
    LocalShardBackend::Options local;
    local.seed = 7;
    local.default_scale = 0.02;
    LocalShardBackend backend(local);
    Coordinator coordinator(&backend, options);
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run.value().stop_reason, "exhausted");
    for (const ShardOutcome& shard : run.value().shards) {
      reference_results.push_back(shard.results);
    }
  }

  ClientShardBackend backend(
      {{kHost, worker0.port()}, {kHost, proxy.port()}}, FastRpcOptions());
  ASSERT_TRUE(backend.ConnectAll().ok());
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();

  EXPECT_EQ(proxy.faults_fired(), 1);
  EXPECT_GE(result.rpc_disconnects, 1);
  EXPECT_GE(result.rejoins, 1) << "worker 1 never rejoined";
  // The query survived the crash and still ran every shard dry.
  EXPECT_EQ(result.stop_reason, "exhausted");
  for (const ShardOutcome& shard : result.shards) {
    EXPECT_TRUE(shard.exhausted) << "shard " << shard.shard;
  }
  // The unfaulted worker's shards were untouched by the failure: same
  // deterministic sampling prefix, same results as the clean reference.
  EXPECT_EQ(result.shards[0].results, reference_results[0]);
  EXPECT_EQ(result.shards[2].results, reference_results[2]);
  // The crashed worker persisted its shard statistics on teardown (the
  // evidence the warm-started reopen resumed from).
  EXPECT_TRUE(WaitFor([&worker1] { return worker1.cache()->size() >= 1u; }));
}

TEST(DistE2eTest, WedgedWorkerTimesOutAndQueryCompletes) {
  // A slow peer, not a dead one: the proxy holds worker 1's first pick
  // response past the RPC deadline. The client must time out (not hang),
  // close the connection so the late bytes cannot desync it, and finish
  // the query via retries and rejoin.
  WorkerStack worker0;
  WorkerStack worker1;
  testing_util::FaultProxy::Options fault;
  fault.upstream_port = worker1.port();
  fault.fault = testing_util::FaultProxy::Fault::kDelayResponse;
  fault.trigger_request = 3;
  fault.delay_seconds = 1.5;
  testing_util::FaultProxy proxy(fault);
  ASSERT_TRUE(proxy.Start());

  CoordinatorOptions options = ExhaustionOptions();
  ClientShardBackend::Options rpc = FastRpcOptions();
  rpc.rpc_timeout_seconds = 0.4;
  ClientShardBackend backend(
      {{kHost, worker0.port()}, {kHost, proxy.port()}}, rpc);
  ASSERT_TRUE(backend.ConnectAll().ok());
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();

  EXPECT_EQ(proxy.faults_fired(), 1);
  EXPECT_GE(result.rpc_timeouts, 1) << "deadline never tripped";
  EXPECT_GE(result.rejoins, 1);
  EXPECT_EQ(result.stop_reason, "exhausted");
  for (const ShardOutcome& shard : result.shards) {
    EXPECT_TRUE(shard.exhausted) << "shard " << shard.shard;
  }
}

TEST(DistE2eTest, AllWorkersGoneReportsUnavailable) {
  // Rejoin disabled and the only worker unreachable mid-query: the run
  // must end cleanly with stop_reason "unavailable", returning whatever
  // results it had — not hang, not crash.
  WorkerStack worker;
  testing_util::FaultProxy::Options fault;
  fault.upstream_port = worker.port();
  fault.fault = testing_util::FaultProxy::Fault::kDropAfterRequest;
  fault.trigger_request = 5;  // open x4, then the first pick
  testing_util::FaultProxy proxy(fault);
  ASSERT_TRUE(proxy.Start());

  CoordinatorOptions options = ExhaustionOptions();
  options.rejoin = false;
  ClientShardBackend backend({{kHost, proxy.port()}}, FastRpcOptions());
  ASSERT_TRUE(backend.ConnectAll().ok());
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().stop_reason, "unavailable");
  EXPECT_EQ(run.value().rejoins, 0);
  EXPECT_GE(run.value().rpc_disconnects, 1);
  // Teardown still persisted the picked shards' statistics.
  EXPECT_TRUE(WaitFor([&worker] { return worker.cache()->size() >= 1u; }));
}

}  // namespace
}  // namespace dist
}  // namespace exsample
