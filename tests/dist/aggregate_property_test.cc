// Property tests for the shard-aggregate sync. Two layers:
//
//  1. AggregateFromStats (the worker's incremental group-row sum) against
//     a brute-force per-chunk recompute, over arbitrary random
//     interleavings of Update / UpdateSplit / SeedPrior / RecordCost —
//     the exact mutation mix a live shard session performs.
//
//  2. The coordinator's synced rows against dist.stats recomputes DURING
//     a coordinated run, via a decorator backend that cross-checks every
//     pick reply — including runs where scripted failures knock a worker
//     out mid-stream and the rejoin path re-opens its shards. A lost
//     reply may leave a row stale, but every reply that does arrive must
//     carry an aggregate equal to the worker's per-chunk truth.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/chunk_stats.h"
#include "dist/coordinator.h"
#include "util/rng.h"

namespace exsample {
namespace dist {
namespace {

TEST(AggregatePropertyTest, GroupSumsMatchBruteForceUnderRandomMutation) {
  Rng rng(0xA66E6A7Eull);
  for (int trial = 0; trial < 40; ++trial) {
    const int32_t num_chunks =
        static_cast<int32_t>(1 + rng.NextBounded(97));
    const int32_t group_size =
        static_cast<int32_t>(1 + rng.NextBounded(16));
    core::ChunkStats stats(num_chunks, group_size);
    const int64_t ops = 50 + static_cast<int64_t>(rng.NextBounded(200));
    for (int64_t op = 0; op < ops; ++op) {
      const video::ChunkId j = static_cast<video::ChunkId>(
          rng.NextBounded(static_cast<uint64_t>(num_chunks)));
      switch (rng.NextBounded(4)) {
        case 0:
          stats.Update(j, static_cast<int64_t>(rng.NextBounded(3)),
                       static_cast<int64_t>(rng.NextBounded(3)));
          break;
        case 1: {
          // Cross-chunk decrements: d1 credits other chunks' N1, the
          // path that drives raw N1 negative (paper footnote 1).
          std::vector<video::ChunkId> d1_chunks;
          const uint64_t decrements = rng.NextBounded(3);
          for (uint64_t k = 0; k < decrements; ++k) {
            d1_chunks.push_back(static_cast<video::ChunkId>(
                rng.NextBounded(static_cast<uint64_t>(num_chunks))));
          }
          stats.UpdateSplit(j, static_cast<int64_t>(rng.NextBounded(3)),
                            d1_chunks);
          break;
        }
        case 2:
          stats.SeedPrior(j, static_cast<int64_t>(rng.NextBounded(8)),
                          static_cast<int64_t>(rng.NextBounded(32)));
          break;
        default:
          stats.RecordCost(j, 0.001 * static_cast<double>(
                                          1 + rng.NextBounded(1000)));
          break;
      }
    }
    const ShardAggregate agg = AggregateFromStats(stats);
    int64_t n1 = 0;
    int64_t n = 0;
    for (int32_t j = 0; j < num_chunks; ++j) {
      n1 += stats.ClampedN1(j);
      n += stats.n(j);
    }
    EXPECT_EQ(agg.n1, n1) << "trial " << trial << " chunks " << num_chunks
                          << " group " << group_size;
    EXPECT_EQ(agg.n, n) << "trial " << trial;
    // SeedPrior adds pseudo-counts to n without advancing the clock.
    EXPECT_GE(agg.n, stats.total_samples()) << "trial " << trial;
  }
}

/// Decorator backend: forwards to a LocalShardBackend, cross-checks every
/// pick reply's aggregate against a dist.stats recompute, and fails
/// scripted pick calls with Unavailable to script worker loss. Revive is
/// always accepted, so the coordinator's rejoin path re-opens the shards.
class CheckingFlakyBackend : public ShardBackend {
 public:
  CheckingFlakyBackend(LocalShardBackend* inner,
                       std::vector<int64_t> fail_on_picks)
      : inner_(inner), fail_on_picks_(std::move(fail_on_picks)) {}

  int num_workers() const override { return inner_->num_workers(); }
  int WorkerOf(int32_t shard) const override {
    return inner_->WorkerOf(shard);
  }

  Result<OpenReply> Open(int32_t shard, const ShardSpec& spec) override {
    return inner_->Open(shard, spec);
  }

  // Pick runs on the coordinator's per-worker dispatch threads, so the
  // call counter and tallies are atomic.
  Result<PickReply> Pick(int32_t shard, int64_t frames) override {
    const int64_t call = pick_calls_.fetch_add(1) + 1;
    if (std::find(fail_on_picks_.begin(), fail_on_picks_.end(), call) !=
        fail_on_picks_.end()) {
      ++injected_failures_;
      return Status::Unavailable("scripted failure on pick " +
                                 std::to_string(call));
    }
    auto reply = inner_->Pick(shard, frames);
    if (!reply.ok()) return reply;
    // The invariant under test: every reply's aggregate equals the
    // worker's per-chunk truth at that instant.
    auto stats = inner_->Stats(shard);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) {
      int64_t n1 = 0;
      int64_t n = 0;
      for (size_t j = 0; j < stats.value().n.size(); ++j) {
        n1 += stats.value().n1[j] > 0 ? stats.value().n1[j] : 0;
        n += stats.value().n[j];
      }
      EXPECT_EQ(reply.value().agg.n1, n1) << "shard " << shard;
      EXPECT_EQ(reply.value().agg.n, n) << "shard " << shard;
      EXPECT_EQ(stats.value().agg.n1, n1) << "shard " << shard;
      EXPECT_EQ(stats.value().agg.n, n) << "shard " << shard;
      ++checked_;
    }
    return reply;
  }

  Result<StatsReply> Stats(int32_t shard) override {
    return inner_->Stats(shard);
  }
  Result<ReportReply> Report(int32_t shard) override {
    return inner_->Report(shard);
  }
  Status Revive(int worker) override {
    ++revives_;
    return inner_->Revive(worker);
  }

  int64_t checked() const { return checked_; }
  int64_t injected_failures() const { return injected_failures_; }
  int64_t revives() const { return revives_; }

 private:
  LocalShardBackend* inner_;
  std::vector<int64_t> fail_on_picks_;
  std::atomic<int64_t> pick_calls_{0};
  std::atomic<int64_t> injected_failures_{0};
  std::atomic<int64_t> checked_{0};
  std::atomic<int64_t> revives_{0};
};

CoordinatorOptions PropertyRunOptions() {
  CoordinatorOptions options;
  options.shard.preset = "dashcam";
  options.shard.class_name = "bicycle";
  options.shard.scale = 0.02;
  options.num_shards = 4;
  options.seed = 7;
  options.frames_per_pick = 48;
  options.picks_per_round = 4;
  options.result_limit = 12;
  options.retry_backoff_seconds = 0.001;
  options.rejoin_backoff_seconds = 0.001;
  return options;
}

TEST(AggregatePropertyTest, CoordinatorRowsMatchWorkerTruthWhenHealthy) {
  LocalShardBackend inner({1, 7, 0.02});
  CheckingFlakyBackend backend(&inner, {});
  Coordinator coordinator(&backend, PropertyRunOptions());
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(backend.checked(), 0);
  EXPECT_EQ(run.value().retries, 0);
}

TEST(AggregatePropertyTest, AggregateSyncSurvivesShardLossAndRejoin) {
  // Picks 2 and 3 vanish (their replies are lost, the worker marked
  // down); the rejoin path must re-open the shards warm-started and the
  // sync invariant must hold for every reply that does arrive.
  LocalShardBackend inner({1, 7, 0.02});
  CheckingFlakyBackend backend(&inner, {2, 3});
  Coordinator coordinator(&backend, PropertyRunOptions());
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  EXPECT_EQ(result.stop_reason, "limit");
  EXPECT_EQ(result.results.size(), 12u);
  EXPECT_EQ(backend.injected_failures(), 2);
  EXPECT_GE(result.rpc_disconnects, 1);
  EXPECT_GE(backend.revives(), 1);
  EXPECT_GE(result.rejoins, 1);
  EXPECT_GT(backend.checked(), 0);
}

TEST(AggregatePropertyTest, MultiWorkerLossOnlyRetiresTheFailedShards) {
  // With 2 simulated workers, a scripted failure downs only the worker
  // hosting that pick's shard; the other worker keeps serving and the
  // query completes even before any rejoin.
  LocalShardBackend inner({2, 7, 0.02});
  CheckingFlakyBackend backend(&inner, {1});
  CoordinatorOptions options = PropertyRunOptions();
  options.rejoin = false;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  EXPECT_EQ(result.stop_reason, "limit");
  EXPECT_EQ(result.results.size(), 12u);
  EXPECT_GE(result.retries, 1);
  EXPECT_EQ(result.rejoins, 0);
  // The downed worker's shards ended unavailable; the survivor's did not.
  int unavailable = 0;
  for (const ShardOutcome& shard : result.shards) {
    if (!shard.available && !shard.exhausted) ++unavailable;
  }
  EXPECT_EQ(unavailable, 2) << "exactly the failed worker's two shards";
}

}  // namespace
}  // namespace dist
}  // namespace exsample
