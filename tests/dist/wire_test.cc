// dist wire types: the NDJSON documents the coordinator and the workers
// exchange. Round-trips every request/reply through Dump+Parse — the
// exact transformation the TCP transport (and LocalShardBackend, by
// design) applies — and pins the validation the worker relies on to
// reject malformed coordinator requests.

#include "dist/wire.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace exsample {
namespace dist {
namespace {

ShardSpec FullSpec() {
  ShardSpec spec;
  spec.preset = "dashcam";
  spec.class_name = "bicycle";
  spec.scale = 0.05;
  spec.shard_index = 3;
  spec.num_shards = 8;
  spec.seed_tag = 3;
  spec.policy = core::PolicyKind::kBayesUcb;
  spec.group_size = 32;
  spec.cost_aware = true;
  spec.gop_run = 4;
  spec.tracker = true;
  spec.warm_start = true;
  spec.warm_weight = 0.5;
  spec.max_samples = 1234;
  return spec;
}

/// Serializes and re-parses, as the transport would.
Json Reserialize(const Json& value) {
  auto parsed = Json::Parse(value.Dump());
  EXPECT_TRUE(parsed.ok()) << value.Dump();
  return parsed.ok() ? std::move(parsed).value() : Json();
}

TEST(DistWireTest, OpenRequestRoundTripsEveryField) {
  const ShardSpec spec = FullSpec();
  auto parsed = ParseOpenRequest(Reserialize(OpenRequest(spec)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ShardSpec& out = parsed.value();
  EXPECT_EQ(out.preset, spec.preset);
  EXPECT_EQ(out.class_name, spec.class_name);
  EXPECT_DOUBLE_EQ(out.scale, spec.scale);
  EXPECT_EQ(out.shard_index, spec.shard_index);
  EXPECT_EQ(out.num_shards, spec.num_shards);
  EXPECT_EQ(out.seed_tag, spec.seed_tag);
  EXPECT_EQ(out.policy, spec.policy);
  EXPECT_EQ(out.group_size, spec.group_size);
  EXPECT_EQ(out.cost_aware, spec.cost_aware);
  EXPECT_EQ(out.gop_run, spec.gop_run);
  EXPECT_EQ(out.tracker, spec.tracker);
  EXPECT_EQ(out.warm_start, spec.warm_start);
  EXPECT_DOUBLE_EQ(out.warm_weight, spec.warm_weight);
  EXPECT_EQ(out.max_samples, spec.max_samples);
}

TEST(DistWireTest, SeedTagDefaultsToShardIndex) {
  // The shard's JobSeed stream must depend only on the logical shard, so
  // an unset seed_tag falls back to the shard index — any worker that
  // hosts shard 5 samples shard 5's trajectory.
  Json cmd = Json::Object()
                 .Set("cmd", "dist.open")
                 .Set("preset", "dashcam")
                 .Set("class", "bicycle")
                 .Set("shard", static_cast<int64_t>(5))
                 .Set("num_shards", static_cast<int64_t>(8));
  auto parsed = ParseOpenRequest(cmd);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().seed_tag, 5);
}

TEST(DistWireTest, ParseOpenRequestRejectsMalformedFields) {
  const struct {
    const char* name;
    Json cmd;
  } kCases[] = {
      {"missing class", Json::Object().Set("preset", "dashcam")},
      {"bad scale", Json::Object()
                        .Set("preset", "dashcam")
                        .Set("class", "bicycle")
                        .Set("scale", 1.5)},
      {"shard out of range", Json::Object()
                                 .Set("preset", "dashcam")
                                 .Set("class", "bicycle")
                                 .Set("shard", static_cast<int64_t>(4))
                                 .Set("num_shards", static_cast<int64_t>(4))},
      {"negative shard", Json::Object()
                             .Set("preset", "dashcam")
                             .Set("class", "bicycle")
                             .Set("shard", static_cast<int64_t>(-1))
                             .Set("num_shards", static_cast<int64_t>(4))},
      {"zero shards", Json::Object()
                          .Set("preset", "dashcam")
                          .Set("class", "bicycle")
                          .Set("num_shards", static_cast<int64_t>(0))},
      {"unknown policy", Json::Object()
                             .Set("preset", "dashcam")
                             .Set("class", "bicycle")
                             .Set("policy", "nope")},
      {"bad warm weight", Json::Object()
                              .Set("preset", "dashcam")
                              .Set("class", "bicycle")
                              .Set("warm_weight", 0.0)},
      {"negative max_samples", Json::Object()
                                   .Set("preset", "dashcam")
                                   .Set("class", "bicycle")
                                   .Set("max_samples",
                                        static_cast<int64_t>(-1))},
      {"bad gop_run", Json::Object()
                          .Set("preset", "dashcam")
                          .Set("class", "bicycle")
                          .Set("gop_run", static_cast<int64_t>(0))},
  };
  for (const auto& test : kCases) {
    auto parsed = ParseOpenRequest(test.cmd);
    EXPECT_FALSE(parsed.ok()) << test.name;
  }
}

TEST(DistWireTest, AggregateJsonRoundTrip) {
  ShardAggregate agg;
  agg.n1 = 41;
  agg.n = 1337;
  agg.cost_seconds = 12.625;  // representable exactly; Dump must preserve
  const Json round_tripped = Reserialize(ToJson(agg));
  const ShardAggregate out = AggregateFromJson(&round_tripped);
  EXPECT_EQ(out.n1, agg.n1);
  EXPECT_EQ(out.n, agg.n);
  EXPECT_EQ(out.cost_seconds, agg.cost_seconds);
}

TEST(DistWireTest, AggregateFromMissingJsonIsZero) {
  const ShardAggregate out = AggregateFromJson(nullptr);
  EXPECT_EQ(out.n1, 0);
  EXPECT_EQ(out.n, 0);
  EXPECT_EQ(out.cost_seconds, 0.0);
}

TEST(DistWireTest, OpenReplyRoundTrip) {
  OpenReply reply;
  reply.dist_id = 7;
  reply.chunks = 12;
  reply.frames = 3456;
  reply.warm_started = true;
  reply.agg.n1 = 3;
  reply.agg.n = 90;
  auto parsed = ParseOpenReply(Reserialize(OpenReplyJson(reply)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().dist_id, 7);
  EXPECT_EQ(parsed.value().chunks, 12);
  EXPECT_EQ(parsed.value().frames, 3456);
  EXPECT_TRUE(parsed.value().warm_started);
  EXPECT_EQ(parsed.value().agg.n1, 3);
  EXPECT_EQ(parsed.value().agg.n, 90);
}

TEST(DistWireTest, PickReplyRoundTripsDetections) {
  PickReply reply;
  reply.running = true;
  reply.stop_reason = "none";
  reply.frames_processed = 512;
  reply.cost_seconds = 3.25;
  reply.agg.n1 = 5;
  reply.agg.n = 512;
  detect::Detection d;
  d.frame = 4242;
  d.score = 0.875;
  d.box = {10.5, 20.25, 30.0, 40.0};
  d.instance = 17;
  reply.new_results.push_back(d);
  auto parsed = ParsePickReply(Reserialize(PickReplyJson(reply, 2)), 2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const PickReply& out = parsed.value();
  EXPECT_TRUE(out.running);
  EXPECT_EQ(out.stop_reason, "none");
  EXPECT_EQ(out.frames_processed, 512);
  EXPECT_EQ(out.cost_seconds, 3.25);
  ASSERT_EQ(out.new_results.size(), 1u);
  EXPECT_EQ(out.new_results[0].frame, 4242);
  EXPECT_EQ(out.new_results[0].class_id, 2);
  EXPECT_EQ(out.new_results[0].score, 0.875);
  EXPECT_EQ(out.new_results[0].box.x, 10.5);
  EXPECT_EQ(out.new_results[0].instance, 17);
}

TEST(DistWireTest, StatsReplyRoundTripsRawArrays) {
  StatsReply reply;
  reply.n1 = {3, -1, 0};  // raw N1 may dip negative (paper footnote 1)
  reply.n = {10, 20, 30};
  reply.agg.n1 = 3;
  reply.agg.n = 60;
  auto parsed = ParseStatsReply(Reserialize(StatsReplyJson(reply)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().n1, reply.n1);
  EXPECT_EQ(parsed.value().n, reply.n);
  EXPECT_EQ(parsed.value().agg.n1, 3);
}

TEST(DistWireTest, MismatchedStatsArraysRejected) {
  Json reply = Json::Object().Set("ok", true);
  Json n1 = Json::Array();
  n1.Append(static_cast<int64_t>(1));
  Json n = Json::Array();
  reply.Set("n1", std::move(n1)).Set("n", std::move(n));
  EXPECT_FALSE(ParseStatsReply(reply).ok());
}

TEST(DistWireTest, WorkerErrorParsesToInvalidArgument) {
  // A transport-intact error reply is a protocol bug, not a worker
  // failure: it must NOT look like Unavailable, or the coordinator would
  // retry a request the worker will reject forever.
  const Json error =
      Json::Object().Set("ok", false).Set("error", "no dist session 9");
  auto open = ParseOpenReply(error);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(open.status().message().find("no dist session 9"),
            std::string::npos);
  EXPECT_FALSE(ParsePickReply(error, 0).ok());
  EXPECT_FALSE(ParseStatsReply(error).ok());
  EXPECT_FALSE(ParseReportReply(error).ok());
}

TEST(DistWireTest, AggregateFromStatsSumsGroupRows) {
  core::ChunkStats stats(10, 4);  // groups: [0,4) [4,8) [8,10)
  stats.Update(0, 3, 0);
  stats.Update(5, 2, 0);
  stats.Update(9, 0, 1);  // dips chunk 9's raw N1 to -1; clamps to 0
  stats.SeedPrior(2, 4, 16);
  const ShardAggregate agg = AggregateFromStats(stats);
  int64_t n1 = 0;
  int64_t n = 0;
  for (int32_t j = 0; j < stats.num_chunks(); ++j) {
    n1 += stats.ClampedN1(j);
    n += stats.n(j);
  }
  EXPECT_EQ(agg.n1, n1);
  EXPECT_EQ(agg.n, n);
  EXPECT_EQ(agg.n1, 3 + 2 + 0 + 4);  // chunk 9 clamps to zero
}

}  // namespace
}  // namespace dist
}  // namespace exsample
