// dist::Coordinator over LocalShardBackend: the full top-level bandit
// loop — open, sample shards, dispatch budgets, merge, stop — without a
// socket in sight. LocalShardBackend routes every call through the same
// WorkerState code and the same JSON documents as TCP workers, so these
// tests pin the coordinator semantics the e2e matrix then holds the
// network stack to.

#include "dist/coordinator.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace exsample {
namespace dist {
namespace {

CoordinatorOptions BaseOptions() {
  CoordinatorOptions options;
  options.shard.preset = "dashcam";
  options.shard.class_name = "bicycle";
  options.shard.scale = 0.02;
  options.num_shards = 4;
  options.seed = 7;
  options.frames_per_pick = 64;
  options.picks_per_round = 4;
  return options;
}

LocalShardBackend::Options LocalOptions(int workers) {
  LocalShardBackend::Options options;
  options.num_workers = workers;
  options.seed = 7;
  options.default_scale = 0.02;
  return options;
}

uint64_t Fingerprint(const std::vector<detect::Detection>& results) {
  uint64_t h = 1469598103934665603ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  fold(results.size());
  for (const detect::Detection& d : results) {
    fold(static_cast<uint64_t>(d.frame));
    fold(static_cast<uint64_t>(d.instance));
  }
  return h;
}

TEST(DistCoordinatorTest, ReachesTheResultLimit) {
  LocalShardBackend backend(LocalOptions(1));
  CoordinatorOptions options = BaseOptions();
  options.result_limit = 8;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  EXPECT_EQ(result.stop_reason, "limit");
  EXPECT_EQ(result.results.size(), 8u);
  EXPECT_GT(result.rounds, 0);
  EXPECT_GT(result.frames_processed, 0);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.rpc_disconnects, 0);
  EXPECT_EQ(result.rejoins, 0);
  // Every result is a real detection with a valid frame id (instance is
  // the oracle's label when it has one, kNoInstance otherwise).
  for (const detect::Detection& d : result.results) {
    EXPECT_GE(d.frame, 0);
    EXPECT_GE(d.instance, detect::kNoInstance);
  }
}

TEST(DistCoordinatorTest, ResultsAreIdenticalAcrossWorkerCounts) {
  // Shards are logical: the worker layout decides only where a shard's
  // session runs. Identical seeds must give identical result streams for
  // 1, 2, and 3 in-process workers.
  std::set<uint64_t> fingerprints;
  for (int workers : {1, 2, 3}) {
    LocalShardBackend backend(LocalOptions(workers));
    CoordinatorOptions options = BaseOptions();
    options.result_limit = 8;
    Coordinator coordinator(&backend, options);
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    fingerprints.insert(Fingerprint(run.value().results));
  }
  EXPECT_EQ(fingerprints.size(), 1u)
      << "worker layout leaked into the result stream";
}

TEST(DistCoordinatorTest, RepeatedRunsAreDeterministic) {
  uint64_t first = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    LocalShardBackend backend(LocalOptions(2));
    CoordinatorOptions options = BaseOptions();
    options.result_limit = 10;
    Coordinator coordinator(&backend, options);
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const uint64_t fp = Fingerprint(run.value().results);
    if (attempt == 0) {
      first = fp;
    } else {
      EXPECT_EQ(fp, first);
    }
  }
}

TEST(DistCoordinatorTest, ExhaustsShardsUnderSampleCaps) {
  // Per-shard max_samples stops each shard session; with no result limit
  // the coordinator must retire every shard and stop on exhaustion.
  LocalShardBackend backend(LocalOptions(1));
  CoordinatorOptions options = BaseOptions();
  options.shard.max_samples = 128;
  options.frames_per_pick = 64;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  EXPECT_EQ(result.stop_reason, "exhausted");
  for (const ShardOutcome& shard : result.shards) {
    EXPECT_TRUE(shard.exhausted) << "shard " << shard.shard;
    EXPECT_LE(shard.agg.n, 128 + options.frames_per_pick);
  }
}

TEST(DistCoordinatorTest, MaxRoundsIsASafetyValve) {
  LocalShardBackend backend(LocalOptions(1));
  CoordinatorOptions options = BaseOptions();
  options.max_rounds = 2;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().stop_reason, "max_rounds");
  EXPECT_EQ(run.value().rounds, 2);
}

TEST(DistCoordinatorTest, ShardPolicyVariantsAllComplete) {
  for (core::PolicyKind policy :
       {core::PolicyKind::kThompson, core::PolicyKind::kBayesUcb,
        core::PolicyKind::kUniform}) {
    LocalShardBackend backend(LocalOptions(2));
    CoordinatorOptions options = BaseOptions();
    options.shard_policy = policy;
    options.result_limit = 6;
    Coordinator coordinator(&backend, options);
    auto run = coordinator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().stop_reason, "limit");
    EXPECT_EQ(run.value().results.size(), 6u);
  }
}

TEST(DistCoordinatorTest, CostAwareScoringCompletes) {
  LocalShardBackend backend(LocalOptions(1));
  CoordinatorOptions options = BaseOptions();
  options.cost_aware = true;
  options.shard.cost_aware = true;
  options.result_limit = 6;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().results.size(), 6u);
  EXPECT_GT(run.value().cost_seconds, 0.0);
}

TEST(DistCoordinatorTest, InvalidSpecFailsOutright) {
  // A bad query is a caller bug, not a worker failure: no retries, no
  // availability bookkeeping, just the error.
  LocalShardBackend backend(LocalOptions(1));
  CoordinatorOptions options = BaseOptions();
  options.shard.class_name = "unicorn";
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), Status::Code::kInvalidArgument);
}

TEST(DistCoordinatorTest, MetricsObserveTheRun) {
  obs::Registry metrics;
  LocalShardBackend backend(LocalOptions(2));
  CoordinatorOptions options = BaseOptions();
  options.result_limit = 8;
  options.metrics = &metrics;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  // Healthy run: every issued pick merged, so the counter matches.
  EXPECT_EQ(metrics.GetCounter("dist.picks")->Total(), result.picks);
  EXPECT_GE(metrics.GetCounter("dist.results")->Total(),
            static_cast<int64_t>(result.results.size()));
  EXPECT_EQ(metrics.GetCounter("dist.retries")->Total(), 0);
  EXPECT_EQ(metrics.GetCounter("dist.rpc_disconnects")->Total(), 0);
  EXPECT_EQ(metrics.GetGauge("dist.shards_unavailable")->Total(), 0);
  // A round folds same-shard picks into one RPC, so the RPC count is
  // positive but bounded by the pick count.
  EXPECT_GT(metrics.GetHistogram("dist.rpc_seconds")->TotalCount(), 0);
  EXPECT_LE(metrics.GetHistogram("dist.rpc_seconds")->TotalCount(),
            result.picks);
}

TEST(DistCoordinatorTest, AggregatesMatchPerShardTallies) {
  LocalShardBackend backend(LocalOptions(2));
  CoordinatorOptions options = BaseOptions();
  options.result_limit = 10;
  Coordinator coordinator(&backend, options);
  auto run = coordinator.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CoordinatorResult& result = run.value();
  int64_t frames = 0;
  int64_t picks = 0;
  for (const ShardOutcome& shard : result.shards) {
    frames += shard.frames;
    picks += shard.picks;
    // A shard that was picked sampled frames; an untouched shard is
    // pristine.
    if (shard.picks > 0) {
      EXPECT_GT(shard.agg.n, 0) << "shard " << shard.shard;
      EXPECT_EQ(shard.agg.n, shard.frames) << "shard " << shard.shard;
    } else {
      EXPECT_EQ(shard.agg.n, 0) << "shard " << shard.shard;
    }
  }
  EXPECT_EQ(frames, result.frames_processed);
  EXPECT_EQ(picks, result.picks);
}

}  // namespace
}  // namespace dist
}  // namespace exsample
