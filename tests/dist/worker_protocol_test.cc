// dist.* verbs through serve::ProtocolHandler — the exact path a remote
// coordinator's requests take on a worker. Covers shard-session
// lifecycle (open/pick/stats/report), the chunk-range partition
// invariants, request validation, per-shard warm-start recording, and
// the teardown path that persists statistics when a coordinator's
// connection vanishes mid-query.

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "dist/wire.h"
#include "dist/worker.h"
#include "serve/protocol_handler.h"
#include "serve/session_manager.h"
#include "serve/stats_cache.h"
#include "util/json.h"

namespace exsample {
namespace dist {
namespace {

class DistWorkerProtocolTest : public ::testing::Test {
 protected:
  DistWorkerProtocolTest() : datasets_(7) {
    serve::SessionManager::Options options;
    options.threads = 1;
    options.base_seed = 7;
    manager_ = std::make_unique<serve::SessionManager>(options);
  }

  std::unique_ptr<serve::ProtocolHandler> MakeHandler() {
    serve::ProtocolHandler::Options options;
    options.default_scale = 0.02;
    return std::make_unique<serve::ProtocolHandler>(manager_.get(), &cache_,
                                                    &datasets_, options);
  }

  Json Respond(serve::ProtocolHandler* handler, const Json& cmd) {
    serve::ProtocolHandler::Outcome outcome =
        handler->HandleLine(cmd.Dump());
    EXPECT_FALSE(outcome.response.empty());
    auto parsed = Json::Parse(outcome.response);
    EXPECT_TRUE(parsed.ok()) << outcome.response;
    return parsed.ok() ? std::move(parsed).value() : Json();
  }

  static Json OpenCmd(int32_t shard, int32_t num_shards) {
    ShardSpec spec;
    spec.preset = "dashcam";
    spec.class_name = "bicycle";
    spec.scale = 0.02;
    spec.shard_index = shard;
    spec.num_shards = num_shards;
    return OpenRequest(spec);
  }

  serve::StatsCache cache_;
  serve::DatasetPool datasets_;
  std::unique_ptr<serve::SessionManager> manager_;
};

TEST_F(DistWorkerProtocolTest, ShardPartitionCoversTheRepository) {
  // Opening every shard of an L-way split must partition the preset's
  // chunks: per-shard counts sum to the 1-way totals, every shard
  // non-empty.
  auto handler = MakeHandler();
  Json whole = Respond(handler.get(), OpenCmd(0, 1));
  ASSERT_TRUE(whole.GetBool("ok", false)) << whole.Dump();
  const int64_t total_chunks = whole.GetInt("chunks", -1);
  const int64_t total_frames = whole.GetInt("frames", -1);
  ASSERT_GT(total_chunks, 0);
  ASSERT_GT(total_frames, 0);

  const int32_t kShards = 4;
  int64_t chunks = 0;
  int64_t frames = 0;
  for (int32_t s = 0; s < kShards; ++s) {
    Json reply = Respond(handler.get(), OpenCmd(s, kShards));
    ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
    EXPECT_GT(reply.GetInt("chunks", 0), 0) << "empty shard " << s;
    chunks += reply.GetInt("chunks", 0);
    frames += reply.GetInt("frames", 0);
  }
  EXPECT_EQ(chunks, total_chunks);
  EXPECT_EQ(frames, total_frames);
}

TEST_F(DistWorkerProtocolTest, PickAdvancesAndSyncsAggregates) {
  auto handler = MakeHandler();
  Json opened = Respond(handler.get(), OpenCmd(0, 2));
  ASSERT_TRUE(opened.GetBool("ok", false)) << opened.Dump();
  const int64_t dist_id = opened.GetInt("dist", -1);
  ASSERT_GE(dist_id, 1);
  // A fresh shard has no evidence.
  EXPECT_EQ(AggregateFromJson(opened.Find("agg")).n, 0);

  Json pick = Respond(handler.get(), PickRequest(dist_id, 64));
  ASSERT_TRUE(pick.GetBool("ok", false)) << pick.Dump();
  EXPECT_TRUE(pick.GetBool("running", false));
  const ShardAggregate after_pick = AggregateFromJson(pick.Find("agg"));
  EXPECT_EQ(after_pick.n, 64);  // every budgeted frame was sampled
  EXPECT_EQ(pick.GetInt("frames_processed", -1), 64);

  // dist.stats recomputes the same aggregate from the per-chunk arrays.
  Json stats = Respond(handler.get(), StatsRequest(dist_id));
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  auto parsed = ParseStatsReply(stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  int64_t n1 = 0;
  int64_t n = 0;
  for (size_t j = 0; j < parsed.value().n.size(); ++j) {
    n1 += parsed.value().n1[j] > 0 ? parsed.value().n1[j] : 0;
    n += parsed.value().n[j];
  }
  EXPECT_EQ(parsed.value().agg.n1, n1);
  EXPECT_EQ(parsed.value().agg.n, n);
  EXPECT_EQ(parsed.value().agg.n1, after_pick.n1);
  EXPECT_EQ(parsed.value().agg.n, after_pick.n);
}

TEST_F(DistWorkerProtocolTest, PicksAreDeterministicAcrossWorkers) {
  // Two independent worker stacks with the same base seed must produce
  // byte-identical pick replies for the same shard: the shard's sampling
  // stream depends only on (base_seed, seed_tag), never on which worker
  // process hosts it.
  auto worker_a = MakeHandler();
  serve::StatsCache cache_b;
  serve::DatasetPool datasets_b(7);
  serve::SessionManager::Options manager_options;
  manager_options.threads = 1;
  manager_options.base_seed = 7;
  serve::SessionManager manager_b(manager_options);
  serve::ProtocolHandler::Options handler_options;
  handler_options.default_scale = 0.02;
  serve::ProtocolHandler worker_b(&manager_b, &cache_b, &datasets_b,
                                  handler_options);

  Json open_a = Respond(worker_a.get(), OpenCmd(1, 3));
  Json open_b = Respond(&worker_b, OpenCmd(1, 3));
  EXPECT_EQ(open_a.Dump(), open_b.Dump());
  for (int round = 0; round < 4; ++round) {
    Json pick_a =
        Respond(worker_a.get(), PickRequest(open_a.GetInt("dist", -1), 96));
    Json pick_b =
        Respond(&worker_b, PickRequest(open_b.GetInt("dist", -1), 96));
    EXPECT_EQ(pick_a.Dump(), pick_b.Dump()) << "round " << round;
  }
}

TEST_F(DistWorkerProtocolTest, ReportPersistsShardScopedStatistics) {
  auto handler = MakeHandler();
  Json opened = Respond(handler.get(), OpenCmd(1, 2));
  const int64_t dist_id = opened.GetInt("dist", -1);
  Respond(handler.get(), PickRequest(dist_id, 128));
  ASSERT_EQ(cache_.size(), 0u);

  Json report = Respond(handler.get(), ReportRequest(dist_id));
  ASSERT_TRUE(report.GetBool("ok", false)) << report.Dump();
  EXPECT_TRUE(report.GetBool("recorded", false));
  EXPECT_EQ(cache_.size(), 1u);
  EXPECT_EQ(cache_.queries_recorded(), 1);

  // The cache key is shard-scoped, so a later open of the SAME shard
  // warm-starts while a different shard stays cold.
  Json same_shard = OpenCmd(1, 2);
  same_shard.Set("warm_start", true);
  Json reopened = Respond(handler.get(), same_shard);
  ASSERT_TRUE(reopened.GetBool("ok", false)) << reopened.Dump();
  EXPECT_TRUE(reopened.GetBool("warm_started", false));
  EXPECT_GT(AggregateFromJson(reopened.Find("agg")).n, 0);
  Json other_shard = OpenCmd(0, 2);
  other_shard.Set("warm_start", true);
  Json cold = Respond(handler.get(), other_shard);
  ASSERT_TRUE(cold.GetBool("ok", false)) << cold.Dump();
  EXPECT_FALSE(cold.GetBool("warm_started", false));

  // The reported session is gone.
  Json missing = Respond(handler.get(), PickRequest(dist_id, 1));
  EXPECT_FALSE(missing.GetBool("ok", true));
}

TEST_F(DistWorkerProtocolTest, TeardownRecordsOpenShards) {
  // A coordinator that disconnects mid-query must still leave warm-start
  // evidence behind: handler teardown (the disconnect path) records every
  // open shard session.
  {
    auto handler = MakeHandler();
    Json opened = Respond(handler.get(), OpenCmd(0, 2));
    Respond(handler.get(), PickRequest(opened.GetInt("dist", -1), 128));
    handler->CloseAllSessions();
    EXPECT_EQ(cache_.size(), 1u);
    // Teardown claimed the recording; a dangling report cannot
    // double-record because the handler's worker state is gone.
  }
  EXPECT_EQ(cache_.queries_recorded(), 1);
}

TEST_F(DistWorkerProtocolTest, StatsCommandCountsDistShards) {
  auto handler = MakeHandler();
  Json before = Respond(handler.get(), Json::Object().Set("cmd", "stats"));
  EXPECT_EQ(before.GetInt("dist_shards", -1), 0);
  Respond(handler.get(), OpenCmd(0, 2));
  Respond(handler.get(), OpenCmd(1, 2));
  Json after = Respond(handler.get(), Json::Object().Set("cmd", "stats"));
  EXPECT_EQ(after.GetInt("dist_shards", -1), 2);
}

TEST_F(DistWorkerProtocolTest, RejectsMalformedRequests) {
  auto handler = MakeHandler();
  // Dataset-dependent validation: more shards than chunks.
  Json too_many = OpenCmd(0, 1 << 20);
  Json reply = Respond(handler.get(), too_many);
  EXPECT_FALSE(reply.GetBool("ok", true)) << reply.Dump();
  // Unknown preset.
  Json bad_preset = OpenCmd(0, 2);
  bad_preset.Set("preset", "nope");
  EXPECT_FALSE(Respond(handler.get(), bad_preset).GetBool("ok", true));
  // Unknown class.
  Json bad_class = OpenCmd(0, 2);
  bad_class.Set("class", "unicorn");
  EXPECT_FALSE(Respond(handler.get(), bad_class).GetBool("ok", true));
  // Pick of a session that does not exist.
  EXPECT_FALSE(
      Respond(handler.get(), PickRequest(99, 16)).GetBool("ok", true));
  // Pick with a degenerate budget.
  Json opened = Respond(handler.get(), OpenCmd(0, 2));
  EXPECT_FALSE(
      Respond(handler.get(), PickRequest(opened.GetInt("dist", -1), 0))
          .GetBool("ok", true));
  // Unknown dist verb.
  EXPECT_FALSE(Respond(handler.get(),
                       Json::Object().Set("cmd", "dist.nope"))
                   .GetBool("ok", true));
}

}  // namespace
}  // namespace dist
}  // namespace exsample
