#include "detect/bbox.h"

#include <gtest/gtest.h>

namespace exsample {
namespace detect {
namespace {

TEST(BBoxTest, AreaAndCenter) {
  BBox b{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(b.area(), 1200.0);
  EXPECT_DOUBLE_EQ(b.cx(), 25.0);
  EXPECT_DOUBLE_EQ(b.cy(), 40.0);
}

TEST(BBoxTest, DegenerateArea) {
  EXPECT_EQ((BBox{0, 0, 0, 10}.area()), 0.0);
  EXPECT_EQ((BBox{0, 0, -5, 10}.area()), 0.0);
}

TEST(IoUTest, IdenticalBoxes) {
  BBox b{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(IoU(b, b), 1.0);
}

TEST(IoUTest, DisjointBoxes) {
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 10, 10}, BBox{20, 20, 10, 10}), 0.0);
  // Touching edges share no area.
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 10, 10}, BBox{10, 0, 10, 10}), 0.0);
}

TEST(IoUTest, HalfOverlap) {
  // Two 10x10 boxes overlapping in a 5x10 strip: IoU = 50 / 150.
  EXPECT_NEAR(IoU(BBox{0, 0, 10, 10}, BBox{5, 0, 10, 10}), 50.0 / 150.0,
              1e-12);
}

TEST(IoUTest, ContainedBox) {
  // 5x5 inside 10x10: IoU = 25/100.
  EXPECT_NEAR(IoU(BBox{0, 0, 10, 10}, BBox{2, 2, 5, 5}), 0.25, 1e-12);
}

TEST(IoUTest, Symmetric) {
  BBox a{1, 2, 7, 4}, b{3, 3, 5, 9};
  EXPECT_DOUBLE_EQ(IoU(a, b), IoU(b, a));
}

TEST(IoUTest, DegenerateBoxesGiveZero) {
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 0, 0}, BBox{0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 0, 0}, BBox{0, 0, 10, 10}), 0.0);
}

TEST(InterpolateTest, EndpointsAndMidpoint) {
  BBox a{0, 0, 10, 10}, b{10, 20, 20, 40};
  EXPECT_EQ(Interpolate(a, b, 0.0), a);
  EXPECT_EQ(Interpolate(a, b, 1.0), b);
  BBox mid = Interpolate(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
  EXPECT_DOUBLE_EQ(mid.w, 15.0);
  EXPECT_DOUBLE_EQ(mid.h, 25.0);
}

TEST(InterpolateTest, Extrapolation) {
  BBox a{0, 0, 10, 10}, b{10, 0, 10, 10};
  BBox beyond = Interpolate(a, b, 2.0);
  EXPECT_DOUBLE_EQ(beyond.x, 20.0);
  BBox before = Interpolate(a, b, -1.0);
  EXPECT_DOUBLE_EQ(before.x, -10.0);
}

}  // namespace
}  // namespace detect
}  // namespace exsample
